// Unit tests for the synthetic Table IV dataset generators.
#include <gtest/gtest.h>

#include <string>

#include "datasets/datasets.h"

namespace cuckoograph::datasets {
namespace {

constexpr double kTinyScale = 0.0005;

TEST(DatasetsTest, RosterMatchesTableFour) {
  const auto& names = AllDatasetNames();
  ASSERT_EQ(names.size(), 7u);
  EXPECT_EQ(names.front(), "CAIDA");
  for (const std::string& name : names) {
    const Dataset dataset = MakeByName(name, kTinyScale);
    EXPECT_EQ(dataset.name, name);
    EXPECT_FALSE(dataset.stream.empty()) << name;
  }
}

TEST(DatasetsTest, SameSeedSameStream) {
  for (const std::string& name : AllDatasetNames()) {
    const Dataset a = MakeByName(name, kTinyScale);
    const Dataset b = MakeByName(name, kTinyScale);
    ASSERT_EQ(a.stream.size(), b.stream.size()) << name;
    EXPECT_EQ(a.stream, b.stream) << name;
  }
}

TEST(DatasetsTest, ScaleMultipliesStreamLength) {
  for (const std::string& name : AllDatasetNames()) {
    const Dataset small = MakeByName(name, kTinyScale);
    const Dataset large = MakeByName(name, 2 * kTinyScale);
    EXPECT_EQ(large.stream.size(), 2 * small.stream.size()) << name;
  }
}

TEST(DatasetsTest, UnknownNameYieldsEmptyStream) {
  const Dataset dataset = MakeByName("NoSuchDataset", 1.0);
  EXPECT_TRUE(dataset.stream.empty());
}

TEST(DatasetsTest, DedupPreservesFirstOccurrenceOrder) {
  const std::vector<Edge> stream = {{1, 2}, {3, 4}, {1, 2}, {5, 6}, {3, 4}};
  const std::vector<Edge> distinct = DedupEdges(stream);
  const std::vector<Edge> expected = {{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(distinct, expected);
}

TEST(DatasetsTest, CaidaStreamIsDuplicateHeavy) {
  const Dataset caida = MakeByName("CAIDA", kTinyScale);
  const DatasetStats stats = ComputeStats(caida);
  EXPECT_TRUE(caida.weighted);
  // The CAIDA-like trace repeats each flow ~32x on average.
  EXPECT_GT(stats.stream_edges, 10 * stats.distinct_edges);
}

TEST(DatasetsTest, DenseGraphIsDense) {
  const DatasetStats stats = ComputeStats(MakeByName("DenseGraph", 0.002));
  EXPECT_GT(stats.density, 0.5);
  EXPECT_LT(stats.nodes, 1000u);
}

TEST(DatasetsTest, ComputeStatsIsConsistent) {
  for (const std::string& name : AllDatasetNames()) {
    const Dataset dataset = MakeByName(name, kTinyScale);
    const DatasetStats stats = ComputeStats(dataset);
    EXPECT_EQ(stats.stream_edges, dataset.stream.size()) << name;
    EXPECT_LE(stats.distinct_edges, stats.stream_edges) << name;
    EXPECT_EQ(stats.distinct_edges, DedupEdges(dataset.stream).size())
        << name;
    EXPECT_GT(stats.nodes, 0u) << name;
    EXPECT_GE(static_cast<double>(stats.max_total_degree),
              stats.avg_degree)
        << name;
  }
}

}  // namespace
}  // namespace cuckoograph::datasets
