// Shared GraphStore v2 conformance suite, instantiated through the store
// factory for CuckooGraph and every baseline scheme. Each behaviour is
// checked against a reference std::map adjacency model so all schemes are
// held to the same contract: idempotent insert/delete, exact NumEdges /
// NumNodes, cursor iteration agreement, and batch-op equivalence.
#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/store_factory.h"
#include "common/rng.h"
#include "common/types.h"
#include "core/graph_store.h"
#include "gtest/gtest.h"

namespace cuckoograph {
namespace {

using ReferenceModel = std::map<NodeId, std::set<NodeId>>;

std::vector<NodeId> SortedNeighbors(const GraphStore& store, NodeId u) {
  std::vector<NodeId> out;
  store.ForEachNeighbor(u, [&out](NodeId v) { out.push_back(v); });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> SortedNodes(const GraphStore& store) {
  std::vector<NodeId> out;
  store.ForEachNode([&out](NodeId u) { out.push_back(u); });
  std::sort(out.begin(), out.end());
  return out;
}

size_t ModelEdges(const ReferenceModel& model) {
  size_t edges = 0;
  for (const auto& [u, vs] : model) edges += vs.size();
  return edges;
}

class GraphStoreConformanceTest
    : public ::testing::TestWithParam<std::string> {
 protected:
  GraphStoreConformanceTest() : store_(MakeStoreByName(GetParam())) {}

  std::unique_ptr<GraphStore> store_;
};

TEST_P(GraphStoreConformanceTest, NameMatchesFactoryKey) {
  EXPECT_EQ(std::string(store_->name()), GetParam());
}

TEST_P(GraphStoreConformanceTest, InsertIsIdempotent) {
  EXPECT_TRUE(store_->InsertEdge(1, 2));
  EXPECT_FALSE(store_->InsertEdge(1, 2));
  EXPECT_EQ(store_->NumEdges(), 1u);
  EXPECT_TRUE(store_->QueryEdge(1, 2));
  EXPECT_FALSE(store_->QueryEdge(2, 1));  // directed
}

TEST_P(GraphStoreConformanceTest, DeleteIsIdempotent) {
  if (!store_->Capabilities().deletions) GTEST_SKIP();
  store_->InsertEdge(1, 2);
  EXPECT_TRUE(store_->DeleteEdge(1, 2));
  EXPECT_FALSE(store_->DeleteEdge(1, 2));
  EXPECT_FALSE(store_->QueryEdge(1, 2));
  EXPECT_EQ(store_->NumEdges(), 0u);
  EXPECT_EQ(store_->NumNodes(), 0u);
}

TEST_P(GraphStoreConformanceTest, ExtremeNodeIdsAreOrdinaryKeys) {
  const NodeId lo = 0;
  const NodeId hi = ~NodeId{0};
  EXPECT_TRUE(store_->InsertEdge(lo, hi));
  EXPECT_TRUE(store_->InsertEdge(hi, lo));
  EXPECT_TRUE(store_->QueryEdge(lo, hi));
  EXPECT_TRUE(store_->QueryEdge(hi, lo));
  EXPECT_EQ(SortedNeighbors(*store_, lo), std::vector<NodeId>{hi});
}

TEST_P(GraphStoreConformanceTest, ChurnAgreesWithReferenceModel) {
  const bool deletions = store_->Capabilities().deletions;
  ReferenceModel model;
  SplitMix64 rng(2024);
  for (int i = 0; i < 30'000; ++i) {
    const NodeId u = rng.NextBelow(48);
    const NodeId v = rng.NextBelow(400);
    if (deletions && rng.NextBelow(3) == 0) {
      EXPECT_EQ(store_->DeleteEdge(u, v), model[u].erase(v) > 0);
      if (model[u].empty()) model.erase(u);
    } else {
      EXPECT_EQ(store_->InsertEdge(u, v), model[u].insert(v).second);
    }
  }
  if (model.empty()) return;
  EXPECT_EQ(store_->NumEdges(), ModelEdges(model));
  EXPECT_EQ(store_->NumNodes(), model.size());
  for (const auto& [u, vs] : model) {
    for (const NodeId v : vs) {
      ASSERT_TRUE(store_->QueryEdge(u, v)) << u << "->" << v;
    }
  }
}

TEST_P(GraphStoreConformanceTest, IterationAgreesWithReferenceModel) {
  ReferenceModel model;
  SplitMix64 rng(7);
  for (int i = 0; i < 5'000; ++i) {
    const NodeId u = rng.NextBelow(16);
    const NodeId v = rng.NextBelow(2'000);
    store_->InsertEdge(u, v);
    model[u].insert(v);
  }
  // Nodes() agrees.
  std::vector<NodeId> expected_nodes;
  for (const auto& [u, vs] : model) expected_nodes.push_back(u);
  EXPECT_EQ(SortedNodes(*store_), expected_nodes);
  // Neighbors(u) agrees for every vertex, plus an absent one.
  for (const auto& [u, vs] : model) {
    const std::vector<NodeId> expected(vs.begin(), vs.end());
    EXPECT_EQ(SortedNeighbors(*store_, u), expected) << "u=" << u;
    EXPECT_EQ(store_->OutDegree(u), vs.size());
  }
  EXPECT_TRUE(SortedNeighbors(*store_, 999'999).empty());
  EXPECT_EQ(store_->OutDegree(999'999), 0u);
}

TEST_P(GraphStoreConformanceTest, CursorBlockSizesAreEquivalent) {
  for (NodeId v = 0; v < 500; ++v) store_->InsertEdge(5, v * 7);
  // Draining one id at a time matches draining by large blocks.
  std::vector<NodeId> one_by_one;
  auto cursor = store_->Neighbors(5);
  NodeId id;
  while (cursor->Next(&id, 1) == 1) one_by_one.push_back(id);
  std::vector<NodeId> blocks = SortedNeighbors(*store_, 5);
  std::sort(one_by_one.begin(), one_by_one.end());
  EXPECT_EQ(one_by_one, blocks);
  EXPECT_EQ(one_by_one.size(), 500u);
  // An exhausted cursor stays exhausted.
  EXPECT_EQ(cursor->Next(&id, 1), 0u);
}

TEST_P(GraphStoreConformanceTest, StableIterationIsSortedWhenPromised) {
  if (!store_->Capabilities().stable_iteration) GTEST_SKIP();
  SplitMix64 rng(99);
  for (int i = 0; i < 1'000; ++i) {
    store_->InsertEdge(3, rng.NextBelow(100'000));
  }
  std::vector<NodeId> seen;
  store_->ForEachNeighbor(3, [&seen](NodeId v) { seen.push_back(v); });
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST_P(GraphStoreConformanceTest, BatchOpsAgreeWithSingleOps) {
  SplitMix64 rng(31);
  std::vector<Edge> batch;
  for (int i = 0; i < 4'000; ++i) {
    batch.push_back(Edge{rng.NextBelow(32), rng.NextBelow(300)});
  }
  // A scalar-op twin store is the ground truth for the batch entry points.
  auto twin = MakeStoreByName(GetParam());
  size_t twin_fresh = 0;
  for (const Edge& e : batch) twin_fresh += twin->InsertEdge(e.u, e.v);

  EXPECT_EQ(store_->InsertEdges(batch), twin_fresh);
  EXPECT_EQ(store_->NumEdges(), twin->NumEdges());
  EXPECT_EQ(store_->NumNodes(), twin->NumNodes());
  for (NodeId u = 0; u < 32; ++u) {
    ASSERT_EQ(SortedNeighbors(*store_, u), SortedNeighbors(*twin, u));
  }

  EXPECT_EQ(store_->QueryEdges(batch), batch.size());
  std::vector<Edge> misses{{1'000'000, 1}, {1, 1'000'000}};
  EXPECT_EQ(store_->QueryEdges(misses), 0u);

  if (store_->Capabilities().deletions) {
    const size_t distinct = store_->NumEdges();
    EXPECT_EQ(store_->DeleteEdges(batch), distinct);  // dups already gone
    EXPECT_EQ(store_->NumEdges(), 0u);
    EXPECT_EQ(store_->NumNodes(), 0u);
  }
}

TEST_P(GraphStoreConformanceTest, EdgeWeightHonorsWeightedCapability) {
  EXPECT_EQ(store_->EdgeWeight(1, 2), 0u);  // absent edge
  store_->InsertEdge(1, 2);
  EXPECT_EQ(store_->EdgeWeight(1, 2), 1u);
  store_->InsertEdge(1, 2);  // duplicate arrival
  const uint64_t expected = store_->Capabilities().weighted ? 2 : 1;
  EXPECT_EQ(store_->EdgeWeight(1, 2), expected);
  EXPECT_EQ(store_->NumEdges(), 1u);
}

TEST_P(GraphStoreConformanceTest, EmptyBatchesAreNoOps) {
  EXPECT_EQ(store_->InsertEdges(Span<const Edge>()), 0u);
  EXPECT_EQ(store_->QueryEdges(Span<const Edge>()), 0u);
  if (store_->Capabilities().deletions) {
    EXPECT_EQ(store_->DeleteEdges(Span<const Edge>()), 0u);
  }
  EXPECT_EQ(store_->NumEdges(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, GraphStoreConformanceTest,
    ::testing::ValuesIn(AllSchemeNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      // Scheme names may contain '-', which gtest test names cannot.
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// ---- Factory contract ------------------------------------------------------

TEST(StoreFactoryTest, MakesEveryRegisteredScheme) {
  for (const std::string& name : AllSchemeNames()) {
    auto store = MakeStoreByName(name);
    ASSERT_NE(store, nullptr) << name;
    EXPECT_EQ(std::string(store->name()), name);
  }
}

TEST(StoreFactoryTest, SchemeOrderIsThePapersColumnOrder) {
  // The paper's comparison columns first, then the extended stores
  // (weighted, the concurrent sharded front-end, the durable
  // decorators).
  const std::vector<std::string> expected{
      "CuckooGraph",     "AdjacencyList", "HashMap",
      "SortedVector",    "cuckoo-weighted", "cuckoo-sharded",
      "cuckoo-durable",  "cuckoo-sharded-durable"};
  EXPECT_EQ(AllSchemeNames(), expected);
}

TEST(StoreFactoryTest, ShardedSchemeAdvertisesConcurrency) {
  EXPECT_TRUE(
      MakeStoreByName("cuckoo-sharded")->Capabilities().concurrent_mutations);
  // Only the sharded front-end and its durable decorator (which
  // inherits the wrapped store's capabilities) advertise it.
  for (const std::string& name : AllSchemeNames()) {
    if (name == "cuckoo-sharded" || name == "cuckoo-sharded-durable") {
      EXPECT_TRUE(MakeStoreByName(name)->Capabilities().concurrent_mutations)
          << name;
    } else {
      EXPECT_FALSE(MakeStoreByName(name)->Capabilities().concurrent_mutations)
          << name;
    }
  }
}

TEST(StoreFactoryTest, DurableSchemesAdvertiseDurability) {
  for (const std::string& name : AllSchemeNames()) {
    const bool expect_durable =
        name == "cuckoo-durable" || name == "cuckoo-sharded-durable";
    EXPECT_EQ(MakeStoreByName(name)->Capabilities().durable, expect_durable)
        << name;
  }
}

TEST(StoreFactoryTest, WeightedSchemeAdvertisesWeights) {
  const auto store = MakeStoreByName("cuckoo-weighted");
  EXPECT_TRUE(store->Capabilities().weighted);
  // It is the only built-in that does.
  for (const std::string& name : AllSchemeNames()) {
    if (name == "cuckoo-weighted") continue;
    EXPECT_FALSE(MakeStoreByName(name)->Capabilities().weighted) << name;
  }
}

TEST(StoreFactoryTest, UnknownNameFailsListingValidSchemes) {
  try {
    MakeStoreByName("NoSuchScheme");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("NoSuchScheme"), std::string::npos);
    for (const std::string& name : AllSchemeNames()) {
      EXPECT_NE(message.find(name), std::string::npos) << name;
    }
  }
}

TEST(StoreFactoryTest, ParseSchemesFlagSelectsAndValidates) {
  EXPECT_EQ(ParseSchemesFlag(""), AllSchemeNames());
  const std::vector<std::string> two{"HashMap", "CuckooGraph"};
  EXPECT_EQ(ParseSchemesFlag("HashMap,CuckooGraph"), two);
  EXPECT_THROW(ParseSchemesFlag("CuckooGraph,Bogus"), std::invalid_argument);
}

TEST(StoreFactoryTest, DuplicateRegistrationIsRejected) {
  EXPECT_FALSE(RegisterStore("CuckooGraph", nullptr));
}

TEST(StoreFactoryTest, MakeDurableStoreRejectsNonDurableNames) {
  persist::DurableOptions opts;
  opts.dir = "/tmp/never-created";
  EXPECT_THROW(MakeDurableStoreByName("CuckooGraph", opts),
               std::invalid_argument);
  EXPECT_THROW(MakeDurableStoreByName("NoSuchScheme", opts),
               std::invalid_argument);
}

TEST(StoreFactoryTest, MakeDurableOptionsHonorsTheConfigKnobs) {
  Config config;
  config.wal_sync_mode = WalSyncMode::kAlways;
  config.wal_checkpoint_records = 123;
  const persist::DurableOptions opts =
      persist::MakeDurableOptions(config, "/some/dir");
  EXPECT_EQ(opts.dir, "/some/dir");
  EXPECT_EQ(opts.sync_mode, WalSyncMode::kAlways);
  EXPECT_EQ(opts.checkpoint_every_records, 123u);
  EXPECT_FALSE(opts.owns_dir);
}

// ---- Durability conformance ------------------------------------------------
// The durable schemes additionally promise that a store reopened over
// the same directory equals the store at close: write -> close ->
// recover -> verify, through both the WAL-replay and the snapshot
// recovery paths.

class DurableConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    std::string error;
    dir_ = persist::MakeTempDir("conformance-durable-", &error);
    ASSERT_FALSE(dir_.empty()) << error;
  }
  void TearDown() override { persist::RemoveDirTree(dir_); }

  // Opens (or reopens, recovering) the scheme under test over dir_.
  std::unique_ptr<persist::DurableStore> Open(
      WalSyncMode mode = WalSyncMode::kNone, size_t checkpoint_every = 0) {
    persist::DurableOptions opts;
    opts.dir = dir_;
    opts.sync_mode = mode;
    opts.checkpoint_every_records = checkpoint_every;
    return MakeDurableStoreByName(GetParam(), opts);
  }

  std::string dir_;
};

TEST_P(DurableConformanceTest, EmptyStoreRecoversEmpty) {
  Open().reset();  // open, log nothing, close
  auto reopened = Open();
  EXPECT_EQ(reopened->NumEdges(), 0u);
  EXPECT_EQ(reopened->NumNodes(), 0u);
  EXPECT_FALSE(reopened->recovery().snapshot_loaded);
  EXPECT_EQ(reopened->recovery().replayed_records, 0u);
}

TEST_P(DurableConformanceTest, WriteCloseRecoverVerify) {
  ReferenceModel model;
  {
    auto store = Open();
    SplitMix64 rng(512);
    std::vector<Edge> batch;
    for (int i = 0; i < 3'000; ++i) {
      batch.push_back(Edge{rng.NextBelow(40), rng.NextBelow(300)});
    }
    store->InsertEdges(batch);
    for (const Edge& e : batch) model[e.u].insert(e.v);
    for (int i = 0; i < 2'000; ++i) {  // scalar churn on top of the batch
      const NodeId u = rng.NextBelow(40);
      const NodeId v = rng.NextBelow(300);
      if (rng.NextBelow(4) == 0) {
        store->DeleteEdge(u, v);
        model[u].erase(v);
        if (model[u].empty()) model.erase(u);
      } else {
        store->InsertEdge(u, v);
        model[u].insert(v);
      }
    }
  }
  auto reopened = Open();
  EXPECT_FALSE(reopened->recovery().snapshot_loaded);
  EXPECT_GT(reopened->recovery().replayed_records, 0u);
  ASSERT_EQ(reopened->NumEdges(), ModelEdges(model));
  ASSERT_EQ(reopened->NumNodes(), model.size());
  for (const auto& [u, vs] : model) {
    EXPECT_EQ(SortedNeighbors(*reopened, u),
              std::vector<NodeId>(vs.begin(), vs.end()))
        << "u=" << u;
  }
}

TEST_P(DurableConformanceTest, DeleteThenRecoverStaysDeleted) {
  {
    auto store = Open();
    store->InsertEdge(1, 2);
    store->InsertEdge(1, 3);
    store->DeleteEdge(1, 2);
  }
  auto reopened = Open();
  EXPECT_FALSE(reopened->QueryEdge(1, 2));
  EXPECT_TRUE(reopened->QueryEdge(1, 3));
  EXPECT_EQ(reopened->NumEdges(), 1u);
}

TEST_P(DurableConformanceTest, CheckpointThenRecoverUsesSnapshot) {
  ReferenceModel model;
  {
    auto store = Open();
    SplitMix64 rng(77);
    for (int i = 0; i < 2'000; ++i) {
      const NodeId u = rng.NextBelow(30);
      const NodeId v = rng.NextBelow(500);
      store->InsertEdge(u, v);
      model[u].insert(v);
    }
    std::string error;
    ASSERT_TRUE(store->Checkpoint(&error)) << error;
    // Post-checkpoint tail lands in the truncated WAL.
    store->InsertEdge(7, 100'001);
    model[7].insert(100'001);
    store->DeleteEdge(7, 100'001);
    model[7].erase(100'001);
  }
  auto reopened = Open();
  EXPECT_TRUE(reopened->recovery().snapshot_loaded);
  EXPECT_EQ(reopened->recovery().replayed_records, 2u);
  ASSERT_EQ(reopened->NumEdges(), ModelEdges(model));
  for (const auto& [u, vs] : model) {
    EXPECT_EQ(SortedNeighbors(*reopened, u),
              std::vector<NodeId>(vs.begin(), vs.end()))
        << "u=" << u;
  }
}

TEST_P(DurableConformanceTest, AutoCheckpointTruncatesTheWal) {
  auto store = Open(WalSyncMode::kNone, /*checkpoint_every=*/64);
  for (NodeId v = 0; v < 200; ++v) store->InsertEdge(1, v);
  const auto stats = store->durable_stats();
  EXPECT_GE(stats.checkpoints, 1u) << stats.last_checkpoint_error;
  EXPECT_GE(stats.wal.truncations, 1u);
  store.reset();
  auto reopened = Open();
  EXPECT_TRUE(reopened->recovery().snapshot_loaded);
  EXPECT_EQ(reopened->NumEdges(), 200u);
}

TEST_P(DurableConformanceTest, SyncModesAllRecover) {
  for (const WalSyncMode mode :
       {WalSyncMode::kAlways, WalSyncMode::kGroup, WalSyncMode::kNone}) {
    const NodeId u = static_cast<NodeId>(1000 + static_cast<int>(mode));
    {
      auto store = Open(mode);
      store->InsertEdge(u, 1);
    }
    auto reopened = Open();
    EXPECT_TRUE(reopened->QueryEdge(u, 1))
        << "mode=" << static_cast<int>(mode);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DurableSchemes, DurableConformanceTest,
    ::testing::Values("cuckoo-durable", "cuckoo-sharded-durable"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace cuckoograph
