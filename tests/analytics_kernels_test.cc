// Kernel correctness: each of the seven analytics kernels checked against
// a naive reference implementation on small deterministic graphs (path,
// star, clique, two components, diamond), parameterized over every factory
// scheme — every store feeds the kernels through the same CsrSnapshot
// layer, so agreement here certifies store, snapshot, and kernel together.
#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "analytics/betweenness.h"
#include "analytics/bfs.h"
#include "analytics/common.h"
#include "analytics/connected_components.h"
#include "analytics/csr_snapshot.h"
#include "analytics/lcc.h"
#include "analytics/pagerank.h"
#include "analytics/sssp.h"
#include "analytics/triangle_count.h"
#include "baselines/store_factory.h"
#include "common/types.h"
#include "gtest/gtest.h"

namespace cuckoograph {
namespace {

using analytics::CsrSnapshot;
using analytics::DenseId;
using analytics::KernelResult;
using analytics::kUnreached;

// ---- Naive reference model ------------------------------------------------

struct RefGraph {
  std::vector<NodeId> nodes;                 // sorted unique endpoints
  std::map<NodeId, std::vector<NodeId>> adj; // distinct successors, sorted
  std::set<uint64_t> edges;                  // EdgeKey set
  std::map<uint64_t, uint64_t> weight;       // EdgeKey -> expected weight
};

RefGraph BuildRef(const std::vector<Edge>& stream, bool weighted) {
  RefGraph ref;
  for (const Edge& e : stream) {
    ref.nodes.push_back(e.u);
    ref.nodes.push_back(e.v);
    if (ref.edges.insert(EdgeKey(e)).second) {
      ref.adj[e.u].push_back(e.v);
      ref.weight[EdgeKey(e)] = 1;
    } else if (weighted) {
      ++ref.weight[EdgeKey(e)];  // duplicate arrival accumulates
    }
  }
  std::sort(ref.nodes.begin(), ref.nodes.end());
  ref.nodes.erase(std::unique(ref.nodes.begin(), ref.nodes.end()),
                  ref.nodes.end());
  for (auto& [u, vs] : ref.adj) std::sort(vs.begin(), vs.end());
  return ref;
}

std::vector<NodeId> SuccessorsOf(const RefGraph& ref, NodeId u) {
  const auto it = ref.adj.find(u);
  return it == ref.adj.end() ? std::vector<NodeId>() : it->second;
}

std::map<NodeId, double> NaiveBfs(const RefGraph& ref,
                                  const std::vector<NodeId>& sources) {
  std::map<NodeId, double> dist;
  for (const NodeId n : ref.nodes) dist[n] = kUnreached;
  std::queue<NodeId> queue;
  for (const NodeId s : sources) {
    if (dist.count(s) == 0 || dist[s] == 0.0) continue;
    dist[s] = 0.0;
    queue.push(s);
  }
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (const NodeId v : SuccessorsOf(ref, u)) {
      if (dist[v] != kUnreached) continue;
      dist[v] = dist[u] + 1.0;
      queue.push(v);
    }
  }
  return dist;
}

std::map<NodeId, double> NaiveSssp(const RefGraph& ref,
                                   const std::vector<NodeId>& sources) {
  std::map<NodeId, double> dist;
  for (const NodeId n : ref.nodes) dist[n] = kUnreached;
  for (const NodeId s : sources) {
    if (dist.count(s) != 0) dist[s] = 0.0;
  }
  // O(V^2) Dijkstra: repeatedly settle the nearest unsettled vertex.
  std::set<NodeId> settled;
  while (true) {
    NodeId best = 0;
    double best_dist = kUnreached;
    for (const auto& [n, d] : dist) {
      if (settled.count(n) == 0 && d < best_dist) {
        best = n;
        best_dist = d;
      }
    }
    if (best_dist == kUnreached) break;
    settled.insert(best);
    for (const NodeId v : SuccessorsOf(ref, best)) {
      const double w =
          static_cast<double>(ref.weight.at(EdgeKey(Edge{best, v})));
      dist[v] = std::min(dist[v], best_dist + w);
    }
  }
  return dist;
}

uint64_t NaiveTriangles(const RefGraph& ref, NodeId s) {
  uint64_t count = 0;
  for (const NodeId v : SuccessorsOf(ref, s)) {
    if (v == s) continue;
    for (const NodeId w : SuccessorsOf(ref, v)) {
      if (w == s || w == v) continue;
      if (ref.edges.count(EdgeKey(Edge{w, s})) != 0) ++count;
    }
  }
  return count;
}

// Mutual-reachability partition via per-node DFS closures.
std::map<NodeId, std::set<NodeId>> NaiveReachability(const RefGraph& ref) {
  std::map<NodeId, std::set<NodeId>> reach;
  for (const NodeId s : ref.nodes) {
    std::set<NodeId>& seen = reach[s];
    std::vector<NodeId> stack{s};
    seen.insert(s);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const NodeId v : SuccessorsOf(ref, u)) {
        if (seen.insert(v).second) stack.push_back(v);
      }
    }
  }
  return reach;
}

std::map<NodeId, double> NaivePageRank(const RefGraph& ref, size_t iters,
                                       double d) {
  const size_t n = ref.nodes.size();
  std::map<NodeId, double> rank;
  for (const NodeId v : ref.nodes) rank[v] = 1.0 / static_cast<double>(n);
  for (size_t it = 0; it < iters; ++it) {
    double dangling = 0.0;
    for (const NodeId u : ref.nodes) {
      if (SuccessorsOf(ref, u).empty()) dangling += rank[u];
    }
    std::map<NodeId, double> next;
    const double base = (1.0 - d + d * dangling) / static_cast<double>(n);
    for (const NodeId v : ref.nodes) next[v] = base;
    for (const NodeId u : ref.nodes) {
      const std::vector<NodeId> succ = SuccessorsOf(ref, u);
      if (succ.empty()) continue;
      const double share = d * rank[u] / static_cast<double>(succ.size());
      for (const NodeId v : succ) next[v] += share;
    }
    rank = next;
  }
  return rank;
}

// All-pairs hop distances and shortest-path counts, by BFS from each node.
void NaivePaths(const RefGraph& ref,
                std::map<NodeId, std::map<NodeId, double>>& dist,
                std::map<NodeId, std::map<NodeId, double>>& sigma) {
  for (const NodeId s : ref.nodes) {
    std::map<NodeId, double>& d = dist[s];
    std::map<NodeId, double>& sg = sigma[s];
    for (const NodeId n : ref.nodes) {
      d[n] = kUnreached;
      sg[n] = 0.0;
    }
    d[s] = 0.0;
    sg[s] = 1.0;
    std::queue<NodeId> queue;
    queue.push(s);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop();
      for (const NodeId v : SuccessorsOf(ref, u)) {
        if (d[v] == kUnreached) {
          d[v] = d[u] + 1.0;
          queue.push(v);
        }
        if (d[v] == d[u] + 1.0) sg[v] += sg[u];
      }
    }
  }
}

// Betweenness by the pair-dependency definition, no Brandes accumulation:
// bc[v] = sum over s != v != t of sigma_st(v) / sigma_st.
std::map<NodeId, double> NaiveBetweenness(const RefGraph& ref) {
  std::map<NodeId, std::map<NodeId, double>> dist, sigma;
  NaivePaths(ref, dist, sigma);
  std::map<NodeId, double> bc;
  for (const NodeId v : ref.nodes) bc[v] = 0.0;
  for (const NodeId s : ref.nodes) {
    for (const NodeId t : ref.nodes) {
      if (t == s || sigma[s][t] == 0.0) continue;
      for (const NodeId v : ref.nodes) {
        if (v == s || v == t) continue;
        if (dist[s][v] + dist[v][t] == dist[s][t]) {
          bc[v] += sigma[s][v] * sigma[v][t] / sigma[s][t];
        }
      }
    }
  }
  return bc;
}

double NaiveLcc(const RefGraph& ref, NodeId u) {
  const std::vector<NodeId> succ = SuccessorsOf(ref, u);
  if (succ.size() < 2) return 0.0;
  uint64_t links = 0;
  for (const NodeId v : succ) {
    for (const NodeId w : succ) {
      if (v != w && ref.edges.count(EdgeKey(Edge{v, w})) != 0) ++links;
    }
  }
  return static_cast<double>(links) /
         (static_cast<double>(succ.size()) *
          static_cast<double>(succ.size() - 1));
}

// ---- Fixtures -------------------------------------------------------------

struct TestCase {
  std::string name;
  std::vector<Edge> stream;  // may contain duplicate arrivals
  std::vector<NodeId> sources;
};

// Non-contiguous ids throughout, so the dense remap is exercised. The
// first stream edge repeats once: weighted schemes must see weight 2 on
// it, everyone else weight 1.
std::vector<TestCase> AllCases() {
  std::vector<TestCase> cases;
  // Path 5 -> 15 -> 25 -> 35 -> 45.
  cases.push_back(
      {"path", {{5, 15}, {15, 25}, {25, 35}, {35, 45}}, {5, 25}});
  // Star: hub 70 <-> leaves.
  cases.push_back({"star",
                   {{70, 11}, {70, 22}, {70, 33}, {11, 70}, {22, 70},
                    {33, 70}},
                   {70, 11}});
  // Clique K4 on {10, 20, 30, 40}, both directions.
  {
    TestCase clique{"clique", {}, {10, 30}};
    const std::vector<NodeId> members{10, 20, 30, 40};
    for (const NodeId u : members) {
      for (const NodeId v : members) {
        if (u != v) clique.stream.push_back(Edge{u, v});
      }
    }
    cases.push_back(clique);
  }
  // Two components: a 3-cycle and a disjoint 2-cycle.
  cases.push_back(
      {"two_components", {{100, 110}, {110, 120}, {120, 100}, {7, 9}, {9, 7}},
       {100, 7}});
  // Diamond with two equal shortest paths (exercises sigma counting).
  cases.push_back(
      {"diamond", {{1, 2}, {1, 3}, {2, 4}, {3, 4}, {4, 5}}, {1}});
  for (auto& c : cases) c.stream.push_back(c.stream.front());  // duplicate
  return cases;
}

class AnalyticsKernelsTest : public ::testing::TestWithParam<std::string> {
 protected:
  // Loads the case's stream into this scheme's store, snapshots it with
  // weights, and builds the matching reference model.
  void Load(const TestCase& c) {
    store_ = MakeStoreByName(GetParam());
    store_->InsertEdges(c.stream);
    CsrSnapshot::Options opts;
    opts.with_weights = true;
    snapshot_ = CsrSnapshot::FromStore(*store_, opts);
    ref_ = BuildRef(c.stream, store_->Capabilities().weighted);
    ASSERT_EQ(snapshot_.num_nodes(), ref_.nodes.size());
    ASSERT_EQ(snapshot_.num_edges(), ref_.edges.size());
  }

  double ValueAt(const KernelResult& result, NodeId id) const {
    const DenseId dense = snapshot_.ToDense(id);
    EXPECT_NE(dense, CsrSnapshot::kAbsent) << id;
    return result.per_node[dense];
  }

  std::unique_ptr<GraphStore> store_;
  CsrSnapshot snapshot_;
  RefGraph ref_;
};

TEST_P(AnalyticsKernelsTest, BfsMatchesNaiveReference) {
  for (const TestCase& c : AllCases()) {
    SCOPED_TRACE(c.name);
    Load(c);
    // Duplicate and absent source ids must be ignored.
    std::vector<NodeId> sources = c.sources;
    sources.push_back(c.sources.front());
    sources.push_back(424242);
    const KernelResult result =
        analytics::bfs::Run(snapshot_, Span<const NodeId>(sources));
    const auto expected = NaiveBfs(ref_, c.sources);
    uint64_t reached = 0;
    for (const NodeId n : ref_.nodes) {
      EXPECT_EQ(ValueAt(result, n), expected.at(n)) << n;
      if (expected.at(n) != kUnreached) ++reached;
    }
    EXPECT_EQ(result.aggregate, reached);
  }
}

TEST_P(AnalyticsKernelsTest, SsspMatchesNaiveDijkstra) {
  for (const TestCase& c : AllCases()) {
    SCOPED_TRACE(c.name);
    Load(c);
    const KernelResult result =
        analytics::sssp::Run(snapshot_, Span<const NodeId>(c.sources));
    const auto expected = NaiveSssp(ref_, c.sources);
    for (const NodeId n : ref_.nodes) {
      EXPECT_EQ(ValueAt(result, n), expected.at(n)) << n;
    }
    // The delta-stepping variant settles the same distances, at any width.
    for (const uint64_t delta : {1, 2, 16}) {
      const KernelResult stepped = analytics::sssp::RunDeltaStepping(
          snapshot_, Span<const NodeId>(c.sources), delta);
      EXPECT_EQ(stepped.per_node, result.per_node) << "delta=" << delta;
      EXPECT_EQ(stepped.aggregate, result.aggregate);
    }
  }
}

TEST_P(AnalyticsKernelsTest, TriangleCountMatchesNaiveReference) {
  for (const TestCase& c : AllCases()) {
    SCOPED_TRACE(c.name);
    Load(c);
    // Per-source counts against the reference...
    const KernelResult result = analytics::triangle_count::Run(
        snapshot_, Span<const NodeId>(c.sources));
    uint64_t sum = 0;
    for (const NodeId s : c.sources) {
      const uint64_t expected = NaiveTriangles(ref_, s);
      EXPECT_EQ(ValueAt(result, s), static_cast<double>(expected)) << s;
      sum += expected;
    }
    EXPECT_EQ(result.aggregate, sum);
    // ... and the whole-snapshot sweep equals summing every vertex.
    const KernelResult swept =
        analytics::triangle_count::Run(snapshot_, Span<const NodeId>());
    uint64_t total = 0;
    for (const NodeId n : ref_.nodes) total += NaiveTriangles(ref_, n);
    EXPECT_EQ(swept.aggregate, total);
  }
}

TEST_P(AnalyticsKernelsTest, SccPartitionMatchesMutualReachability) {
  for (const TestCase& c : AllCases()) {
    SCOPED_TRACE(c.name);
    Load(c);
    const KernelResult result =
        analytics::connected_components::Run(snapshot_, Span<const NodeId>());
    const auto reach = NaiveReachability(ref_);
    std::set<double> component_ids;
    for (const NodeId a : ref_.nodes) {
      component_ids.insert(ValueAt(result, a));
      for (const NodeId b : ref_.nodes) {
        const bool mutual =
            reach.at(a).count(b) != 0 && reach.at(b).count(a) != 0;
        EXPECT_EQ(ValueAt(result, a) == ValueAt(result, b), mutual)
            << a << " vs " << b;
      }
    }
    EXPECT_EQ(result.aggregate, component_ids.size());
  }
}

TEST_P(AnalyticsKernelsTest, PageRankMatchesNaivePowerIteration) {
  for (const TestCase& c : AllCases()) {
    SCOPED_TRACE(c.name);
    Load(c);
    const KernelResult result =
        analytics::pagerank::RunIterations(snapshot_, 10);
    EXPECT_EQ(result.aggregate, 10u);
    const auto expected = NaivePageRank(ref_, 10, 0.85);
    double sum = 0.0;
    for (const NodeId n : ref_.nodes) {
      EXPECT_NEAR(ValueAt(result, n), expected.at(n), 1e-12) << n;
      sum += ValueAt(result, n);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST_P(AnalyticsKernelsTest, BetweennessMatchesPairDependencies) {
  for (const TestCase& c : AllCases()) {
    SCOPED_TRACE(c.name);
    Load(c);
    // Empty sources = every pivot = the exact scores.
    const KernelResult result =
        analytics::betweenness::Run(snapshot_, Span<const NodeId>());
    EXPECT_EQ(result.aggregate, ref_.nodes.size());
    const auto expected = NaiveBetweenness(ref_);
    for (const NodeId n : ref_.nodes) {
      EXPECT_NEAR(ValueAt(result, n), expected.at(n), 1e-9) << n;
    }
  }
}

TEST_P(AnalyticsKernelsTest, LccMatchesNaiveReference) {
  for (const TestCase& c : AllCases()) {
    SCOPED_TRACE(c.name);
    Load(c);
    const KernelResult result =
        analytics::lcc::Run(snapshot_, Span<const NodeId>());
    EXPECT_EQ(result.aggregate, ref_.nodes.size());
    for (const NodeId n : ref_.nodes) {
      EXPECT_NEAR(ValueAt(result, n), NaiveLcc(ref_, n), 1e-12) << n;
    }
  }
}

TEST_P(AnalyticsKernelsTest, EmptySnapshotRunsEveryKernel) {
  store_ = MakeStoreByName(GetParam());
  snapshot_ = CsrSnapshot::FromStore(*store_);
  const Span<const NodeId> none;
  EXPECT_EQ(analytics::bfs::Run(snapshot_, none).aggregate, 0u);
  EXPECT_EQ(analytics::sssp::Run(snapshot_, none).aggregate, 0u);
  EXPECT_EQ(analytics::triangle_count::Run(snapshot_, none).aggregate, 0u);
  EXPECT_EQ(analytics::connected_components::Run(snapshot_, none).aggregate,
            0u);
  EXPECT_TRUE(analytics::pagerank::Run(snapshot_, none).per_node.empty());
  EXPECT_EQ(analytics::betweenness::Run(snapshot_, none).aggregate, 0u);
  EXPECT_EQ(analytics::lcc::Run(snapshot_, none).aggregate, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, AnalyticsKernelsTest,
    ::testing::ValuesIn(AllSchemeNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace cuckoograph
