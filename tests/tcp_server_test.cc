// Loopback tests for the epoll TCP RESP server: single round trips,
// pipelining, torn-frame (1-byte-at-a-time) slow clients, protocol-error
// disconnects, and the concurrency smoke the sim cannot provide — four
// client threads driving pipelined CG.INSERT/CG.QUERY against a sharded
// store, every reply checked against a single-threaded oracle. These
// suites run under the CI TSan job (see the -R filter in ci.yml).
#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "core/sharded_cuckoo_graph.h"
#include "redis_sim/command_table.h"
#include "redis_sim/cuckoograph_module.h"
#include "server/resp_client.h"
#include "server/tcp_server.h"

namespace cuckoograph::server {
namespace {

using redis_sim::CommandTable;
using redis_sim::RespType;
using redis_sim::RespValue;

class TcpRespServerTest : public ::testing::Test {
 protected:
  // Every test serves the CG.* family over a sharded (thread-safe) store
  // from two worker loops, on an ephemeral loopback port.
  void StartServer(int num_workers = 2) {
    redis_sim::RegisterGraphCommands(&table_, &store_);
    ServerConfig config;
    config.num_workers = num_workers;
    server_ = std::make_unique<TcpRespServer>(config, &table_);
    std::string error;
    ASSERT_TRUE(server_->Start(&error)) << error;
    ASSERT_NE(server_->port(), 0);
  }

  RespClient Connect() {
    RespClient client;
    std::string error;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port(), &error))
        << error;
    return client;
  }

  ShardedCuckooGraph store_;
  CommandTable table_;
  std::unique_ptr<TcpRespServer> server_;
};

TEST_F(TcpRespServerTest, SingleRoundTripOverLoopback) {
  StartServer();
  RespClient client = Connect();
  EXPECT_EQ(client.Execute({"CG.INSERT", "1", "2"}).integer, 1);
  EXPECT_EQ(client.Execute({"CG.INSERT", "1", "2"}).integer, 0);
  EXPECT_EQ(client.Execute({"CG.QUERY", "1", "2"}).integer, 1);
  EXPECT_EQ(client.Execute({"CG.DEL", "1", "2"}).integer, 1);
  EXPECT_EQ(client.Execute({"CG.QUERY", "1", "2"}).integer, 0);
  EXPECT_EQ(store_.NumEdges(), 0u);
}

TEST_F(TcpRespServerTest, ServerSideErrorsComeBackAsErrorReplies) {
  StartServer();
  RespClient client = Connect();
  EXPECT_TRUE(client.Execute({"CG.NOPE"}).IsError());
  EXPECT_TRUE(client.Execute({"CG.INSERT", "1"}).IsError());
  EXPECT_TRUE(client.Execute({"CG.INSERT", "abc", "2"}).IsError());
  // The connection survives command-level errors.
  EXPECT_EQ(client.Execute({"CG.INSERT", "1", "2"}).integer, 1);
}

TEST_F(TcpRespServerTest, PipelinedBurstAnswersInOrder) {
  StartServer();
  RespClient client = Connect();
  for (int i = 0; i < 100; ++i) {
    client.Pipeline({"CG.INSERT", "7", std::to_string(i)});
  }
  client.Pipeline({"CG.DEGREE", "7"});
  const std::vector<RespValue> replies = client.Flush();
  ASSERT_EQ(replies.size(), 101u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(replies[static_cast<size_t>(i)].integer, 1) << i;
  }
  EXPECT_EQ(replies[100].integer, 100);

  // A burst several read-chunks (16 KiB) deep: the server parses it as
  // multiple recv chunks, each queuing its own reply buffer, and the
  // flush path must gather them into ordered scatter/gather writes.
  // Every reply is position-checked, so a dropped, duplicated or
  // reordered iovec segment cannot pass.
  constexpr int kDeepBurst = 4000;  // ~80 KiB of request wire
  for (int i = 0; i < kDeepBurst; ++i) {
    client.Pipeline({"CG.QUERY", "7", std::to_string(i % 200)});
  }
  const std::vector<RespValue> deep = client.Flush();
  ASSERT_EQ(deep.size(), static_cast<size_t>(kDeepBurst));
  for (int i = 0; i < kDeepBurst; ++i) {
    EXPECT_EQ(deep[static_cast<size_t>(i)].integer, i % 200 < 100 ? 1 : 0)
        << i;
  }
  // The byte counters see the gathered writes, not the syscall shape:
  // every reply byte must still be accounted for. The worker bumps the
  // counter after sendmsg returns, so on a loaded single-core box the
  // client can finish reading before the worker is rescheduled to
  // account the bytes — poll briefly instead of racing it.
  const uint64_t min_bytes = static_cast<uint64_t>(kDeepBurst) * 4;  // ":0\r\n"
  uint64_t bytes_out = 0;
  for (int spin = 0; spin < 2000; ++spin) {
    bytes_out = server_->stats().bytes_out;
    if (bytes_out >= min_bytes) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(bytes_out, min_bytes);
  EXPECT_EQ(server_->stats().protocol_errors, 0u);
}

TEST_F(TcpRespServerTest, TornFramesFromASlowClientReassemble) {
  StartServer();
  RespClient client = Connect();
  // Three pipelined requests written one byte at a time: the server must
  // reassemble frames across arbitrarily small reads and answer all
  // three, in order.
  const std::string wire = redis_sim::EncodeCommand({"CG.INSERT", "3", "4"}) +
                           redis_sim::EncodeCommand({"CG.QUERY", "3", "4"}) +
                           redis_sim::EncodeCommand({"CG.QUERY", "9", "9"});
  for (const char c : wire) {
    ASSERT_TRUE(client.SendRaw(std::string_view(&c, 1)));
  }
  EXPECT_EQ(client.ReadReply().integer, 1);
  EXPECT_EQ(client.ReadReply().integer, 1);
  EXPECT_EQ(client.ReadReply().integer, 0);

  // A longer unread pipeline, still one byte per write: frames complete
  // on different recv chunks, so replies land on the outbound queue as
  // many small buffers that the coalesced flush must emit in order
  // (the client reads nothing until every byte is on the wire).
  std::string burst;
  for (int i = 0; i < 64; ++i) {
    burst += redis_sim::EncodeCommand({"CG.QUERY", "3", std::to_string(i)});
  }
  for (const char c : burst) {
    ASSERT_TRUE(client.SendRaw(std::string_view(&c, 1)));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(client.ReadReply().integer, i == 4 ? 1 : 0) << i;
  }
  EXPECT_EQ(server_->stats().protocol_errors, 0u);
}

TEST_F(TcpRespServerTest, InlineCommandsWorkOverTheSocket) {
  StartServer();
  RespClient client = Connect();
  ASSERT_TRUE(client.SendRaw("CG.INSERT 5 6\r\n"));
  EXPECT_EQ(client.ReadReply().integer, 1);
  ASSERT_TRUE(client.SendRaw("CG.QUERY 5 6\r\n"));
  EXPECT_EQ(client.ReadReply().integer, 1);
}

TEST_F(TcpRespServerTest, ProtocolErrorRepliesThenClosesTheConnection) {
  StartServer();
  RespClient bad = Connect();
  ASSERT_TRUE(bad.SendRaw("*1\r\n:5\r\n"));
  const RespValue reply = bad.ReadReply();
  ASSERT_TRUE(reply.IsError());
  EXPECT_NE(reply.text.find("Protocol error"), std::string::npos);
  // Unlike the in-process sim, the server then drops the client.
  EXPECT_THROW(bad.ReadReply(), std::runtime_error);

  // Other connections are unaffected.
  RespClient good = Connect();
  EXPECT_EQ(good.Execute({"CG.INSERT", "1", "2"}).integer, 1);
}

TEST_F(TcpRespServerTest, FourThreadedPipelinedClientsMatchOracle) {
  StartServer(/*num_workers=*/2);
  constexpr int kClients = 4;
  constexpr size_t kOpsPerClient = 2000;
  constexpr size_t kPipelineDepth = 32;
  constexpr NodeId kRange = 64;  // small: plenty of duplicate traffic

  // Each client owns a private source range, so a sequential replay of
  // its op stream is an exact oracle for every reply it receives, no
  // matter how the other clients' commands interleave server-side.
  std::vector<int> failures(kClients, 0);
  std::vector<std::unordered_set<uint64_t>> oracles(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c, &failures, &oracles] {
      RespClient client = Connect();
      SplitMix64 rng(77 + static_cast<uint64_t>(c));
      std::unordered_set<uint64_t>& oracle = oracles[static_cast<size_t>(c)];
      std::vector<long long> expected;
      size_t in_flight = 0;
      const auto check_flush = [&] {
        const std::vector<RespValue> replies = client.Flush();
        for (size_t i = 0; i < replies.size(); ++i) {
          if (replies[i].type != RespType::kInteger ||
              replies[i].integer != expected[i]) {
            ++failures[static_cast<size_t>(c)];
          }
        }
        expected.clear();
        in_flight = 0;
      };
      for (size_t i = 0; i < kOpsPerClient; ++i) {
        const NodeId u = static_cast<NodeId>(1000 + c) * 1000 +
                         rng.NextBelow(kRange);
        const NodeId v = rng.NextBelow(kRange);
        const uint64_t kind = rng.NextBelow64(3);
        const uint64_t key = EdgeKey(Edge{u, v});
        if (kind == 0) {
          client.Pipeline({"CG.QUERY", std::to_string(u), std::to_string(v)});
          expected.push_back(oracle.count(key) != 0 ? 1 : 0);
        } else if (kind == 1) {
          client.Pipeline({"CG.DEL", std::to_string(u), std::to_string(v)});
          expected.push_back(oracle.erase(key) != 0 ? 1 : 0);
        } else {
          client.Pipeline(
              {"CG.INSERT", std::to_string(u), std::to_string(v)});
          expected.push_back(oracle.insert(key).second ? 1 : 0);
        }
        if (++in_flight == kPipelineDepth) check_flush();
      }
      if (in_flight > 0) check_flush();
    });
  }
  for (std::thread& t : threads) t.join();

  size_t expected_edges = 0;
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[static_cast<size_t>(c)], 0)
        << "client " << c << " saw replies diverge from its oracle";
    expected_edges += oracles[static_cast<size_t>(c)].size();
  }
  EXPECT_EQ(store_.NumEdges(), expected_edges);
  EXPECT_GE(server_->stats().connections_accepted, 4u);
}

TEST_F(TcpRespServerTest, BindFailureReportsAReadableErrnoMessage) {
  StartServer();
  // A second server on the same port must fail to bind, and the error
  // must carry the failing syscall plus a real message (the thread-safe
  // ErrnoString path — e.g. "bind: Address already in use"), not an
  // empty or garbage string.
  ServerConfig config;
  config.port = server_->port();
  TcpRespServer second(config, &table_);
  std::string error;
  EXPECT_FALSE(second.Start(&error));
  EXPECT_NE(error.find("bind: "), std::string::npos) << error;
  EXPECT_GT(error.size(), std::string("bind: ").size()) << error;
}

TEST_F(TcpRespServerTest, StopWhileClientsAreConnectedShutsDownCleanly) {
  StartServer();
  RespClient client = Connect();
  EXPECT_EQ(client.Execute({"CG.INSERT", "1", "2"}).integer, 1);
  server_->Stop();
  EXPECT_FALSE(server_->running());
  // The dropped client notices on its next read.
  EXPECT_THROW(client.Execute({"CG.QUERY", "1", "2"}), std::runtime_error);
}

TEST_F(TcpRespServerTest, SignalStormDoesNotDisruptService) {
  // A no-op SIGUSR1 handler installed WITHOUT SA_RESTART makes every
  // interrupted syscall return EINTR instead of transparently resuming
  // — the regression proof for the retry loops around the server's
  // eventfd ring/drain, epoll_wait, and the client's socket I/O. A
  // missing retry shows up as a lost wakeup (hang), a short frame, or a
  // spurious disconnect.
  struct sigaction noop {};
  struct sigaction previous {};
  noop.sa_handler = [](int) {};
  sigemptyset(&noop.sa_mask);
  noop.sa_flags = 0;  // deliberately no SA_RESTART
  ASSERT_EQ(sigaction(SIGUSR1, &noop, &previous), 0);

  StartServer();
  std::atomic<bool> storming{true};
  std::thread storm([&storming] {
    while (storming.load(std::memory_order_relaxed)) {
      ::kill(::getpid(), SIGUSR1);  // lands on an arbitrary thread
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  RespClient client = Connect();
  for (uint32_t v = 0; v < 400; ++v) {
    ASSERT_EQ(client.Execute({"CG.INSERT", "9", std::to_string(v)}).integer,
              1)
        << v;
  }
  for (uint32_t v = 0; v < 400; ++v) {
    ASSERT_EQ(client.Execute({"CG.QUERY", "9", std::to_string(v)}).integer, 1)
        << v;
  }
  // Shut down while signals still fly: Stop()'s eventfd ring is in the
  // blast radius too.
  server_->Stop();
  EXPECT_FALSE(server_->running());

  storming.store(false, std::memory_order_relaxed);
  storm.join();
  ASSERT_EQ(sigaction(SIGUSR1, &previous, nullptr), 0);
  EXPECT_EQ(store_.NumEdges(), 400u);
}

}  // namespace
}  // namespace cuckoograph::server
