// ThreadPool contract tests: ParallelFor covers every index exactly once
// (any lane count, any grain), exceptions propagate out of chunk bodies,
// a pool is reusable across submissions, destruction runs queued work,
// and the 0/1-thread degenerate cases run inline. The suite name is wired
// into the TSan CI regex, so the coverage claims here are also raced.
#include "common/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace cuckoograph {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  for (const size_t n : {0u, 1u, 63u, 64u, 1000u, 4097u}) {
    for (const size_t grain : {1u, 7u, 64u, 5000u}) {
      for (const size_t parallelism : {1u, 2u, 4u, 9u}) {
        std::vector<std::atomic<uint32_t>> hits(n);
        for (auto& h : hits) h.store(0);
        pool.ParallelFor(0, n, grain, parallelism,
                         [&hits](size_t begin, size_t end) {
                           for (size_t i = begin; i < end; ++i) {
                             hits[i].fetch_add(1);
                           }
                         });
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(hits[i].load(), 1u)
              << "n=" << n << " grain=" << grain
              << " parallelism=" << parallelism << " i=" << i;
        }
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForHonorsOffsetRanges) {
  ThreadPool pool(2);
  std::vector<std::atomic<uint32_t>> hits(100);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(37, 93, 4, 4, [&hits](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), i >= 37 && i < 93 ? 1u : 0u) << i;
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesOutOfChunkBody) {
  ThreadPool pool(3);
  std::atomic<size_t> processed{0};
  try {
    pool.ParallelFor(0, 10'000, 1, 4,
                     [&processed](size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) {
                         if (i == 5'000) {
                           throw std::runtime_error("chunk failed");
                         }
                         processed.fetch_add(1);
                       }
                     });
    FAIL() << "expected the chunk exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk failed");
  }
  // The throwing chunk abandons the remaining ones, so not every index
  // ran — but the pool must stay usable afterwards.
  EXPECT_LT(processed.load(), 10'000u);
  std::atomic<size_t> after{0};
  pool.ParallelFor(0, 100, 1, 4,
                   [&after](size_t begin, size_t end) {
                     after.fetch_add(end - begin);
                   });
  EXPECT_EQ(after.load(), 100u);
}

TEST(ThreadPoolTest, ReusableAcrossManySubmissions) {
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(0, 97, 3, 3, [&total](size_t begin, size_t end) {
      total.fetch_add(end - begin);
    });
  }
  EXPECT_EQ(total.load(), 50u * 97u);
}

TEST(ThreadPoolTest, DestructionRunsQueuedWork) {
  std::atomic<int> ran{0};
  // Gate state outlives the pool (tasks reference it during teardown).
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool open = false;
  {
    // Park the single worker so the remaining submissions stay queued
    // when the destructor begins.
    ThreadPool pool(1);
    pool.Submit([&] {
      std::unique_lock<std::mutex> lock(gate_mu);
      gate_cv.wait(lock, [&open] { return open; });
      ran.fetch_add(1);
    });
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    {
      std::lock_guard<std::mutex> lock(gate_mu);
      open = true;
    }
    gate_cv.notify_all();
  }  // ~ThreadPool drains the queue before joining
  EXPECT_EQ(ran.load(), 17);
}

TEST(ThreadPoolTest, ZeroAndOneWorkerDegenerateCases) {
  // 0 workers: everything runs inline on the caller.
  ThreadPool inline_pool(0);
  EXPECT_EQ(inline_pool.num_workers(), 0u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen;
  inline_pool.ParallelFor(0, 10, 1, 8,
                          [&seen](size_t begin, size_t end) {
                            (void)begin;
                            (void)end;
                            seen.push_back(std::this_thread::get_id());
                          });
  ASSERT_EQ(seen.size(), 1u);  // one inline chunk, no splitting
  EXPECT_EQ(seen[0], caller);

  // 1 worker, parallelism 1: still inline (the caller is the one lane).
  ThreadPool pool(1);
  seen.clear();
  pool.ParallelFor(0, 10, 1, 1, [&seen](size_t begin, size_t end) {
    (void)begin;
    (void)end;
    seen.push_back(std::this_thread::get_id());
  });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], caller);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineOnTheWorkerLane) {
  ThreadPool pool(2);
  std::atomic<size_t> inner_total{0};
  pool.ParallelFor(0, 8, 1, 3, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      // A nested call must not wait on pool capacity (deadlock risk when
      // every worker is already inside the outer loop).
      pool.ParallelFor(0, 100, 1, 4,
                       [&inner_total](size_t b, size_t e) {
                         inner_total.fetch_add(e - b);
                       });
    }
  });
  EXPECT_EQ(inner_total.load(), 8u * 100u);
}

TEST(ThreadPoolTest, EnsureWorkersGrowsButNeverShrinks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_workers(), 1u);
  pool.EnsureWorkers(3);
  EXPECT_EQ(pool.num_workers(), 3u);
  pool.EnsureWorkers(2);  // no-op
  EXPECT_EQ(pool.num_workers(), 3u);
  std::atomic<size_t> total{0};
  pool.ParallelFor(0, 1000, 1, 4, [&total](size_t begin, size_t end) {
    total.fetch_add(end - begin);
  });
  EXPECT_EQ(total.load(), 1000u);
}

TEST(ThreadPoolTest, SharedPoolIsAProcessSingleton) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  a.EnsureWorkers(2);
  EXPECT_GE(ThreadPool::Shared().num_workers(), 2u);
}

}  // namespace
}  // namespace cuckoograph
