// Unit tests for the weighted (extended) CuckooGraph variant.
#include <gtest/gtest.h>

#include "core/weighted_cuckoo_graph.h"

namespace cuckoograph {
namespace {

TEST(WeightedCuckooGraphTest, AddEdgeAccumulatesWeight) {
  WeightedCuckooGraph graph;
  EXPECT_EQ(graph.AddEdge(1, 2), 1u);
  EXPECT_EQ(graph.AddEdge(1, 2), 2u);
  EXPECT_EQ(graph.AddEdge(1, 2), 3u);
  EXPECT_EQ(graph.QueryWeight(1, 2), 3u);
  EXPECT_EQ(graph.NumEdges(), 1u);  // still one distinct edge
}

TEST(WeightedCuckooGraphTest, MissingEdgeHasZeroWeight) {
  WeightedCuckooGraph graph;
  graph.AddEdge(1, 2);
  EXPECT_EQ(graph.QueryWeight(1, 3), 0u);
  EXPECT_EQ(graph.QueryWeight(2, 1), 0u);
}

TEST(WeightedCuckooGraphTest, DeleteClearsWeight) {
  WeightedCuckooGraph graph;
  graph.AddEdge(1, 2);
  graph.AddEdge(1, 2);
  EXPECT_TRUE(graph.DeleteEdge(1, 2));
  EXPECT_EQ(graph.QueryWeight(1, 2), 0u);
  // Re-adding starts counting from scratch.
  EXPECT_EQ(graph.AddEdge(1, 2), 1u);
}

TEST(WeightedCuckooGraphTest, InsertEdgeCountsArrivals) {
  WeightedCuckooGraph graph;
  // The edge-set view stays idempotent (a duplicate returns false and the
  // edge count stays 1) while every arrival accumulates as weight.
  EXPECT_TRUE(graph.InsertEdge(4, 5));
  EXPECT_FALSE(graph.InsertEdge(4, 5));
  EXPECT_EQ(graph.NumEdges(), 1u);
  EXPECT_EQ(graph.QueryWeight(4, 5), 2u);
  graph.AddEdge(4, 5);
  EXPECT_EQ(graph.QueryWeight(4, 5), 3u);
}

TEST(WeightedCuckooGraphTest, EdgeWeightHookReportsAccumulation) {
  WeightedCuckooGraph graph;
  const GraphStore& store = graph;
  EXPECT_EQ(store.EdgeWeight(7, 8), 0u);
  graph.AddEdge(7, 8);
  graph.AddEdge(7, 8);
  EXPECT_EQ(store.EdgeWeight(7, 8), 2u);
}

TEST(WeightedCuckooGraphTest, WeightsSurviveTransformation) {
  WeightedCuckooGraph graph;
  // Push vertex 1 past the inline threshold while keeping weights.
  for (NodeId v = 0; v < 100; ++v) {
    graph.AddEdge(1, v + 10);
    graph.AddEdge(1, v + 10);
  }
  for (NodeId v = 0; v < 100; ++v) {
    EXPECT_EQ(graph.QueryWeight(1, v + 10), 2u) << v;
  }
}

TEST(WeightedCuckooGraphTest, ReportsItsFactorySchemeName) {
  WeightedCuckooGraph graph;
  EXPECT_EQ(graph.name(), "cuckoo-weighted");
  const GraphStore& store = graph;
  EXPECT_EQ(store.name(), "cuckoo-weighted");
}

}  // namespace
}  // namespace cuckoograph
