// Unit tests for the weighted (extended) CuckooGraph variant.
#include <gtest/gtest.h>

#include "core/weighted_cuckoo_graph.h"

namespace cuckoograph {
namespace {

TEST(WeightedCuckooGraphTest, AddEdgeAccumulatesWeight) {
  WeightedCuckooGraph graph;
  EXPECT_EQ(graph.AddEdge(1, 2), 1u);
  EXPECT_EQ(graph.AddEdge(1, 2), 2u);
  EXPECT_EQ(graph.AddEdge(1, 2), 3u);
  EXPECT_EQ(graph.QueryWeight(1, 2), 3u);
  EXPECT_EQ(graph.NumEdges(), 1u);  // still one distinct edge
}

TEST(WeightedCuckooGraphTest, MissingEdgeHasZeroWeight) {
  WeightedCuckooGraph graph;
  graph.AddEdge(1, 2);
  EXPECT_EQ(graph.QueryWeight(1, 3), 0u);
  EXPECT_EQ(graph.QueryWeight(2, 1), 0u);
}

TEST(WeightedCuckooGraphTest, DeleteClearsWeight) {
  WeightedCuckooGraph graph;
  graph.AddEdge(1, 2);
  graph.AddEdge(1, 2);
  EXPECT_TRUE(graph.DeleteEdge(1, 2));
  EXPECT_EQ(graph.QueryWeight(1, 2), 0u);
  // Re-adding starts counting from scratch.
  EXPECT_EQ(graph.AddEdge(1, 2), 1u);
}

TEST(WeightedCuckooGraphTest, InsertEdgeStaysIdempotent) {
  WeightedCuckooGraph graph;
  EXPECT_TRUE(graph.InsertEdge(4, 5));
  EXPECT_FALSE(graph.InsertEdge(4, 5));
  EXPECT_EQ(graph.QueryWeight(4, 5), 1u);
  graph.AddEdge(4, 5);
  EXPECT_EQ(graph.QueryWeight(4, 5), 2u);
}

TEST(WeightedCuckooGraphTest, WeightsSurviveTransformation) {
  WeightedCuckooGraph graph;
  // Push vertex 1 past the inline threshold while keeping weights.
  for (NodeId v = 0; v < 100; ++v) {
    graph.AddEdge(1, v + 10);
    graph.AddEdge(1, v + 10);
  }
  for (NodeId v = 0; v < 100; ++v) {
    EXPECT_EQ(graph.QueryWeight(1, v + 10), 2u) << v;
  }
}

TEST(WeightedCuckooGraphTest, ReportsItsOwnName) {
  WeightedCuckooGraph graph;
  EXPECT_EQ(graph.name(), "WeightedCuckooGraph");
  const GraphStore& store = graph;
  EXPECT_EQ(store.name(), "WeightedCuckooGraph");
}

}  // namespace
}  // namespace cuckoograph
