// Crash-point fault injection for the durability subsystem: a forked
// child is SIGKILLed at injected crash points (mid-TRANSFORMATION,
// post-append-pre-sync, mid-group-commit, around the snapshot rename)
// and the parent recovers the directory against a prefix-consistency
// oracle — the recovered store must equal the deterministic workload
// after exactly k ops, for some k at or past the acknowledged count.
// No acknowledged (synced) write may ever be missing.
//
// The FaultFile sections cover what SIGKILL cannot: short writes,
// ENOSPC mid-frame, bit rot, and tails chopped at every byte offset.
//
// Suite naming is deliberate: the fork-based suites are named *Crash*
// (the TSan CI job must not pick them up — fork and TSan do not mix),
// while the thread-stress suite is named Durable* so the widened TSan
// regex races it.
#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/store_factory.h"
#include "core/graph_store.h"
#include "crash_point_harness.h"
#include "gtest/gtest.h"
#include "persist/durable_store.h"
#include "persist/file_io.h"
#include "persist/wal.h"

namespace cuckoograph {
namespace {

using persist::DurableOptions;
using persist::DurableStore;

using EdgeSet = std::set<std::pair<NodeId, NodeId>>;

// ---- Deterministic workload ------------------------------------------------
// Op i is a pure function of i, so the parent can re-derive the exact
// store state after any prefix length. Every 3rd op feeds hub vertex 1
// a fresh neighbor (driving it through TRANSFORMATION at 7 neighbors),
// every 5th op deletes the edge inserted two ops earlier, the rest are
// scattered inserts.

Edge WorkloadEdge(uint64_t i) {
  if (i % 3 == 0) return Edge{1, static_cast<NodeId>(i / 3 + 2)};
  uint64_t h = (i + 1) * 0x9E3779B97F4A7C15ull;
  h ^= h >> 29;
  return Edge{static_cast<NodeId>(h % 64 + 2),
              static_cast<NodeId>((h >> 16) % 512)};
}

bool IsDeleteOp(uint64_t i) { return i % 5 == 4 && i % 3 != 0; }

void ApplyToStore(GraphStore* store, uint64_t i) {
  if (IsDeleteOp(i)) {
    const Edge e = WorkloadEdge(i - 2);
    store->DeleteEdge(e.u, e.v);
  } else {
    const Edge e = WorkloadEdge(i);
    store->InsertEdge(e.u, e.v);
  }
}

void ApplyToModel(EdgeSet* model, uint64_t i) {
  if (IsDeleteOp(i)) {
    const Edge e = WorkloadEdge(i - 2);
    model->erase({e.u, e.v});
  } else {
    const Edge e = WorkloadEdge(i);
    model->insert({e.u, e.v});
  }
}

EdgeSet ModelAfter(uint64_t ops) {
  EdgeSet model;
  for (uint64_t i = 0; i < ops; ++i) ApplyToModel(&model, i);
  return model;
}

EdgeSet StoreEdges(const GraphStore& store) {
  EdgeSet edges;
  store.ForEachNode([&](NodeId u) {
    store.ForEachNeighbor(u, [&](NodeId v) { edges.insert({u, v}); });
  });
  return edges;
}

// The oracle: `recovered` must equal the workload model after exactly k
// ops for some k in [acked, acked + slack]. k may exceed acked because
// an op can be logged (hence replayed) without its ack having landed —
// what recovery must never do is come back BEFORE an acknowledged op.
::testing::AssertionResult PrefixConsistent(const EdgeSet& recovered,
                                            uint64_t acked, uint64_t slack) {
  EdgeSet model = ModelAfter(acked);
  for (uint64_t k = acked; k <= acked + slack; ++k) {
    if (model == recovered) {
      return ::testing::AssertionSuccess() << "matched prefix k=" << k;
    }
    ApplyToModel(&model, k);
  }
  return ::testing::AssertionFailure()
         << "recovered state (" << recovered.size()
         << " edges) matches no workload prefix in [" << acked << ", "
         << acked + slack << "]";
}

// ---- Fork/kill/recover matrix ----------------------------------------------

class CrashPointRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string error;
    dir_ = persist::MakeTempDir("crash-recovery-", &error);
    ASSERT_FALSE(dir_.empty()) << error;
  }
  void TearDown() override { persist::RemoveDirTree(dir_); }

  std::unique_ptr<DurableStore> OpenStore(const std::string& scheme,
                                          WalSyncMode mode,
                                          size_t checkpoint_every) {
    DurableOptions opts;
    opts.dir = dir_;
    opts.sync_mode = mode;
    opts.checkpoint_every_records = checkpoint_every;
    return MakeDurableStoreByName(scheme, opts);
  }

  // Forks the workload under the armed crash point, asserts the child
  // actually died there, recovers in the parent, and runs the oracle.
  // Returns the recovered store for extra per-point assertions.
  std::unique_ptr<DurableStore> CrashAndRecover(const char* point,
                                                uint64_t kill_on_hit,
                                                const std::string& scheme,
                                                WalSyncMode mode,
                                                size_t checkpoint_every) {
    const auto result = testing::RunToCrash(
        point, kill_on_hit, [&](testing::CrashSharedState* shared) {
          auto store = OpenStore(scheme, mode, checkpoint_every);
          for (uint64_t i = 0; i < 200'000; ++i) {
            ApplyToStore(store.get(), i);
            shared->acked.store(i + 1, std::memory_order_release);
          }
        });
    EXPECT_TRUE(result.forked);
    EXPECT_TRUE(result.killed)
        << point << " never fired (exit=" << result.exit_status
        << ", hits=" << result.hits << ")";
    if (!result.killed) return nullptr;

    auto recovered = OpenStore(scheme, WalSyncMode::kNone, 0);
    EXPECT_TRUE(
        PrefixConsistent(StoreEdges(*recovered), result.acked, 4096))
        << "point=" << point << " hit=" << kill_on_hit
        << " acked=" << result.acked
        << " recovery=" << recovered->recovery().detail;
    return recovered;
  }

  std::string dir_;
};

TEST_F(CrashPointRecoveryTest, KillMidTransformation) {
  // The in-memory structure dies half-transformed; recovery rebuilds
  // purely from the log, so the wreckage is irrelevant.
  CrashAndRecover("core:mid_transformation", 1, "cuckoo-durable",
                  WalSyncMode::kAlways, 0);
}

TEST_F(CrashPointRecoveryTest, KillMidTransformationDeep) {
  CrashAndRecover("core:mid_transformation", 3, "cuckoo-durable",
                  WalSyncMode::kAlways, 0);
}

TEST_F(CrashPointRecoveryTest, KillPostAppendPreSyncFirstRecord) {
  CrashAndRecover("wal:post_append_pre_sync", 1, "cuckoo-durable",
                  WalSyncMode::kAlways, 0);
}

TEST_F(CrashPointRecoveryTest, KillPostAppendPreSyncDeep) {
  CrashAndRecover("wal:post_append_pre_sync", 700, "cuckoo-durable",
                  WalSyncMode::kAlways, 0);
}

TEST_F(CrashPointRecoveryTest, KillMidGroupCommit) {
  CrashAndRecover("wal:mid_group_commit", 1, "cuckoo-durable",
                  WalSyncMode::kGroup, 0);
}

TEST_F(CrashPointRecoveryTest, KillMidGroupCommitDeep) {
  CrashAndRecover("wal:mid_group_commit", 200, "cuckoo-durable",
                  WalSyncMode::kGroup, 0);
}

TEST_F(CrashPointRecoveryTest, KillBeforeSnapshotRename) {
  // Checkpoint died after writing snapshot.tmp but before the rename:
  // no published snapshot exists, recovery replays the intact WAL.
  auto recovered = CrashAndRecover("snapshot:pre_rename", 1,
                                   "cuckoo-durable", WalSyncMode::kAlways,
                                   /*checkpoint_every=*/64);
  ASSERT_NE(recovered, nullptr);
  EXPECT_FALSE(recovered->recovery().snapshot_loaded);
  EXPECT_GT(recovered->recovery().replayed_records, 0u);
}

TEST_F(CrashPointRecoveryTest, KillAfterSnapshotRename) {
  // Checkpoint died between publishing the snapshot and truncating the
  // WAL: recovery loads the snapshot and must skip the already-covered
  // WAL records by their LSN instead of double-applying them.
  auto recovered = CrashAndRecover("snapshot:post_rename", 1,
                                   "cuckoo-durable", WalSyncMode::kAlways,
                                   /*checkpoint_every=*/64);
  ASSERT_NE(recovered, nullptr);
  EXPECT_TRUE(recovered->recovery().snapshot_loaded);
}

TEST_F(CrashPointRecoveryTest, KillSecondCheckpointKeepsNewestSnapshot) {
  auto recovered = CrashAndRecover("snapshot:post_rename", 2,
                                   "cuckoo-durable", WalSyncMode::kAlways,
                                   /*checkpoint_every=*/64);
  ASSERT_NE(recovered, nullptr);
  EXPECT_TRUE(recovered->recovery().snapshot_loaded);
  // The second checkpoint's snapshot covers more of the log.
  EXPECT_GT(recovered->recovery().snapshot_lsn, 64u);
}

TEST_F(CrashPointRecoveryTest, ShardedSchemeSurvivesTheSameKills) {
  CrashAndRecover("wal:post_append_pre_sync", 300, "cuckoo-sharded-durable",
                  WalSyncMode::kAlways, 0);
}

// ---- FaultFile: the failures SIGKILL cannot produce ------------------------

// A WritableFile shim over the real file that can chop every write into
// tiny chunks (short writes) and run out of space at a byte budget.
class FaultFile final : public persist::WritableFile {
 public:
  FaultFile(std::unique_ptr<persist::WritableFile> base, size_t chunk,
            size_t byte_budget)
      : base_(std::move(base)), chunk_(chunk), budget_(byte_budget) {}

  ssize_t Write(const void* data, size_t n) override {
    if (written_ >= budget_) {
      errno = ENOSPC;
      return -1;
    }
    size_t take = n;
    if (chunk_ > 0) take = std::min(take, chunk_);
    take = std::min(take, budget_ - written_);
    const ssize_t accepted = base_->Write(data, take);
    if (accepted > 0) written_ += static_cast<size_t>(accepted);
    return accepted;
  }

  bool Sync() override { return base_->Sync(); }
  bool Truncate(uint64_t size) override { return base_->Truncate(size); }
  bool Close() override { return base_->Close(); }

 private:
  std::unique_ptr<persist::WritableFile> base_;
  const size_t chunk_;
  const size_t budget_;
  size_t written_ = 0;
};

persist::WritableFileFactory FaultFactory(size_t chunk, size_t byte_budget) {
  return [chunk, byte_budget](const std::string& path, bool truncate,
                              std::string* error)
             -> std::unique_ptr<persist::WritableFile> {
    auto base = persist::OpenWritableFile(path, truncate, error);
    if (base == nullptr) return nullptr;
    return std::make_unique<FaultFile>(std::move(base), chunk, byte_budget);
  };
}

class WalFaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string error;
    dir_ = persist::MakeTempDir("wal-fault-", &error);
    ASSERT_FALSE(dir_.empty()) << error;
  }
  void TearDown() override { persist::RemoveDirTree(dir_); }

  std::string WalPath() const { return dir_ + "/wal.log"; }

  std::string dir_;
};

TEST_F(WalFaultInjectionTest, ShortWritesStillProduceAValidLog) {
  // 3 bytes per write() splits every frame across many calls;
  // WriteFully must reassemble them losslessly.
  persist::WalWriter writer;
  std::string error;
  ASSERT_TRUE(writer.Open(WalPath(), WalSyncMode::kNone, 1,
                          FaultFactory(/*chunk=*/3, /*budget=*/SIZE_MAX),
                          &error))
      << error;
  for (uint64_t i = 0; i < 100; ++i) {
    const Edge e{static_cast<NodeId>(i), static_cast<NodeId>(i + 1)};
    ASSERT_NE(writer.Append(persist::WalOp::kInsertEdges,
                            Span<const Edge>(&e, 1)),
              0u);
  }
  writer.Close();
  persist::WalReadResult contents;
  ASSERT_TRUE(persist::ReadWalFile(WalPath(), &contents, &error)) << error;
  EXPECT_TRUE(contents.clean) << contents.detail;
  ASSERT_EQ(contents.records.size(), 100u);
  EXPECT_EQ(contents.records[41].edges[0].u, 41u);
}

TEST_F(WalFaultInjectionTest, EnospcFailsStickyAndLeavesRecoverablePrefix) {
  DurableOptions opts;
  opts.dir = dir_;
  opts.sync_mode = WalSyncMode::kNone;
  opts.checkpoint_every_records = 0;
  opts.file_factory = FaultFactory(/*chunk=*/0, /*budget=*/777);
  std::string error;
  auto store = DurableStore::Open(MakeStoreByName("CuckooGraph"),
                                  "cuckoo-durable", opts, &error);
  ASSERT_NE(store, nullptr) << error;

  size_t accepted = 0;
  bool threw = false;
  for (NodeId v = 0; v < 1'000; ++v) {
    try {
      store->InsertEdge(1, v);
      ++accepted;
    } catch (const std::runtime_error&) {
      threw = true;
      break;
    }
  }
  ASSERT_TRUE(threw) << "budget never exhausted";
  // Sticky: the store keeps refusing instead of silently dropping
  // durability.
  EXPECT_THROW(store->InsertEdge(2, 2), std::runtime_error);
  store.reset();

  // The torn frame at the budget boundary must be truncated away and
  // every acknowledged edge must survive.
  DurableOptions clean_opts;
  clean_opts.dir = dir_;
  clean_opts.sync_mode = WalSyncMode::kNone;
  auto recovered = DurableStore::Open(MakeStoreByName("CuckooGraph"),
                                      "cuckoo-durable", clean_opts, &error);
  ASSERT_NE(recovered, nullptr) << error;
  EXPECT_TRUE(recovered->recovery().wal_tail_truncated);
  ASSERT_EQ(recovered->NumEdges(), accepted);
  for (NodeId v = 0; v < accepted; ++v) {
    EXPECT_TRUE(recovered->QueryEdge(1, v)) << v;
  }
}

TEST_F(WalFaultInjectionTest, BitFlipTruncatesFromTheFlippedRecord) {
  persist::WalWriter writer;
  std::string error;
  ASSERT_TRUE(
      writer.Open(WalPath(), WalSyncMode::kNone, 1, nullptr, &error))
      << error;
  for (uint64_t i = 0; i < 50; ++i) {
    const Edge e{static_cast<NodeId>(i), 7};
    ASSERT_NE(writer.Append(persist::WalOp::kInsertEdges,
                            Span<const Edge>(&e, 1)),
              0u);
  }
  writer.Close();

  std::string bytes;
  ASSERT_TRUE(persist::ReadFileBytes(WalPath(), &bytes, &error)) << error;
  const size_t frame = bytes.size() / 50;
  const size_t flip_at = frame * 25 + frame / 2;  // inside record 25
  bytes[flip_at] = static_cast<char>(bytes[flip_at] ^ 0x40);
  auto rewrite = persist::OpenWritableFile(WalPath(), true, &error);
  ASSERT_NE(rewrite, nullptr) << error;
  ASSERT_TRUE(persist::WriteFully(rewrite.get(), bytes.data(), bytes.size()));
  rewrite->Close();

  persist::WalReadResult contents;
  ASSERT_TRUE(persist::ReadWalFile(WalPath(), &contents, &error)) << error;
  EXPECT_FALSE(contents.clean);
  ASSERT_EQ(contents.records.size(), 25u);  // exactly the pre-flip prefix
  EXPECT_EQ(contents.valid_bytes, frame * 25);
  for (uint64_t i = 0; i < 25; ++i) {
    EXPECT_EQ(contents.records[i].edges[0].u, i);
  }
}

TEST_F(WalFaultInjectionTest, EveryTruncationPointRecoversThePrefix) {
  // A power cut can chop the unsynced tail at ANY byte. Sweep them all.
  persist::WalWriter writer;
  std::string error;
  ASSERT_TRUE(
      writer.Open(WalPath(), WalSyncMode::kNone, 1, nullptr, &error))
      << error;
  for (uint64_t i = 0; i < 8; ++i) {
    const Edge e{static_cast<NodeId>(i), static_cast<NodeId>(100 + i)};
    ASSERT_NE(writer.Append(persist::WalOp::kInsertEdges,
                            Span<const Edge>(&e, 1)),
              0u);
  }
  writer.Close();
  std::string full;
  ASSERT_TRUE(persist::ReadFileBytes(WalPath(), &full, &error)) << error;
  const size_t frame = full.size() / 8;

  for (size_t cut = 0; cut < full.size(); ++cut) {
    auto rewrite = persist::OpenWritableFile(WalPath(), true, &error);
    ASSERT_NE(rewrite, nullptr) << error;
    ASSERT_TRUE(persist::WriteFully(rewrite.get(), full.data(), cut));
    rewrite->Close();
    persist::WalReadResult contents;
    ASSERT_TRUE(persist::ReadWalFile(WalPath(), &contents, &error))
        << "cut=" << cut << ": " << error;
    const size_t whole_records = cut / frame;
    ASSERT_EQ(contents.records.size(), whole_records) << "cut=" << cut;
    EXPECT_EQ(contents.valid_bytes, whole_records * frame) << "cut=" << cut;
    EXPECT_EQ(contents.clean, cut % frame == 0) << "cut=" << cut;
  }
}

// ---- Group-commit thread stress (the TSan job's target) --------------------

TEST(DurableGroupCommitStressTest, ConcurrentWritersShareSyncsAndRecover) {
  std::string error;
  const std::string dir = persist::MakeTempDir("durable-stress-", &error);
  ASSERT_FALSE(dir.empty()) << error;

  constexpr int kThreads = 4;
  constexpr NodeId kPerThread = 256;
  {
    DurableOptions opts;
    opts.dir = dir;
    opts.sync_mode = WalSyncMode::kGroup;
    auto store = MakeDurableStoreByName("cuckoo-sharded-durable", opts);
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&store, t] {
        for (NodeId v = 0; v < kPerThread; ++v) {
          store->InsertEdge(static_cast<NodeId>(1'000 + t), v);
        }
      });
    }
    for (std::thread& w : writers) w.join();
    const auto stats = store->durable_stats();
    EXPECT_EQ(stats.wal.records_appended,
              static_cast<uint64_t>(kThreads) * kPerThread);
    // Coalescing is load-dependent, but 1024 blocking appends from 4
    // threads cannot all have paid a private fdatasync.
    EXPECT_LT(stats.wal.syncs, stats.wal.records_appended);
    EXPECT_GT(stats.wal.group_commits, 0u);
  }

  DurableOptions reopen;
  reopen.dir = dir;
  reopen.sync_mode = WalSyncMode::kNone;
  auto recovered = MakeDurableStoreByName("cuckoo-sharded-durable", reopen);
  EXPECT_EQ(recovered->NumEdges(),
            static_cast<size_t>(kThreads) * kPerThread);
  recovered.reset();
  persist::RemoveDirTree(dir);
}

}  // namespace
}  // namespace cuckoograph
