// Fork/kill/recover harness for the durability crash tests. A test
// arms one named crash point (common/crash_point.h), forks a child
// that runs the write workload with a handler installed, and the
// handler SIGKILLs the child at the N-th hit of the armed point. The
// parent waits, then recovers the store directory and checks the
// prefix-consistency oracle.
//
// Why SIGKILL and not a simulated crash: SIGKILL is the real thing —
// no destructors, no stdio flush, no WAL Close() — while the page
// cache (shared with the parent) survives, so recovery sees exactly
// the bytes the child's write() calls had issued, torn mid-frame
// wherever the kill landed. What SIGKILL cannot simulate is losing the
// page cache itself (a power cut); the FaultFile/truncation tests
// cover that by chopping and corrupting WAL bytes directly.
//
// The child reports progress through a MAP_SHARED page: `acked` counts
// workload ops whose mutation call returned (so, per the sync mode,
// durably acknowledged), `hits` counts firings of the armed point.
#ifndef CUCKOOGRAPH_TESTS_CRASH_POINT_HARNESS_H_
#define CUCKOOGRAPH_TESTS_CRASH_POINT_HARNESS_H_

#include <signal.h>
#include <sys/mman.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <new>

#include "common/crash_point.h"

namespace cuckoograph::testing {

struct CrashSharedState {
  std::atomic<uint64_t> acked;
  std::atomic<uint64_t> hits;
};

namespace internal {

// Handler state; set in the forked child before any store activity, so
// plain globals are safe (the child is single-threaded at install time
// and the handler only reads them).
inline const char* g_armed_point = nullptr;
inline uint64_t g_kill_on_hit = 0;
inline CrashSharedState* g_shared = nullptr;

inline void KillAtArmedPoint(const char* point) {
  if (std::strcmp(point, g_armed_point) != 0) return;
  const uint64_t hit = g_shared->hits.fetch_add(1) + 1;
  if (hit < g_kill_on_hit) return;
  ::kill(::getpid(), SIGKILL);
  // SIGKILL delivery can land on another thread first; never run past
  // the crash point.
  for (;;) ::pause();
}

}  // namespace internal

struct CrashRunResult {
  bool forked = false;        // fork itself succeeded
  bool killed = false;        // child died of SIGKILL (the armed point fired)
  int exit_status = -1;       // exit code when the child exited normally
  uint64_t acked = 0;         // workload ops acknowledged before death
  uint64_t hits = 0;          // firings of the armed point
};

// Forks a child that installs the kill handler and runs `child_body`.
// The child is expected to die at the armed point; a child that
// finishes `child_body` exits 0 instead (result.killed == false), which
// tests treat as "workload too short to reach the point" and fail on.
inline CrashRunResult RunToCrash(
    const char* point, uint64_t kill_on_hit,
    const std::function<void(CrashSharedState*)>& child_body) {
  CrashRunResult result;
  void* page = ::mmap(nullptr, sizeof(CrashSharedState),
                      PROT_READ | PROT_WRITE, MAP_SHARED | MAP_ANONYMOUS,
                      -1, 0);
  if (page == MAP_FAILED) return result;
  auto* shared = new (page) CrashSharedState{};

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::munmap(page, sizeof(CrashSharedState));
    return result;
  }
  if (pid == 0) {
    internal::g_armed_point = point;
    internal::g_kill_on_hit = kill_on_hit;
    internal::g_shared = shared;
    SetCrashPointHandler(&internal::KillAtArmedPoint);
    child_body(shared);
    ::_exit(0);  // point never fired — no gtest teardown in the child
  }

  result.forked = true;
  int status = 0;
  pid_t waited;
  do {
    waited = ::waitpid(pid, &status, 0);
  } while (waited < 0 && errno == EINTR);
  result.killed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
  if (WIFEXITED(status)) result.exit_status = WEXITSTATUS(status);
  result.acked = shared->acked.load();
  result.hits = shared->hits.load();
  ::munmap(page, sizeof(CrashSharedState));
  return result;
}

}  // namespace cuckoograph::testing

#endif  // CUCKOOGRAPH_TESTS_CRASH_POINT_HARNESS_H_
