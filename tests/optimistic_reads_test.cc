// The optimistic (seqlock + epoch) read path of ShardedCuckooGraph:
// readers race writers that force every structural mutation the
// protocol must survive — TRANSFORMATION (inline slots promoted to an
// S-CHT chain), chain growth and merge rebuilds, L-CHT doubling and
// shrinking, and reverse-TRANSFORMATION (chains collapsing back to
// inline slots under deletions). Each stress test keeps a set of
// sentinel edges that are never mutated, so a racing reader has an
// exact oracle for every probe no matter how the writer interleaves.
// CI runs this binary under ThreadSanitizer as well (the seqlock probe
// functions are excluded from instrumentation; the protocol around them
// is not — see common/thread_annotations.h).
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/span.h"
#include "common/types.h"
#include "core/config.h"
#include "core/sharded_cuckoo_graph.h"
#include "gtest/gtest.h"

namespace cuckoograph {
namespace {

// Small tables + few shards: structural churn (rebuilds, growth) happens
// constantly and per-shard writer/reader collisions are frequent, which
// is exactly what the validation protocol has to absorb.
Config StressConfig(bool optimistic) {
  Config config;
  config.num_shards = 2;
  config.l_initial_buckets = 1;
  config.s_initial_buckets = 1;
  config.optimistic_reads = optimistic;
  return config;
}

constexpr NodeId kHubs = 8;        // sentinel sources 0..kHubs-1
constexpr NodeId kSentinelV = 0;   // (h, 0) is inserted once, never touched
constexpr NodeId kAbsentV = 1u << 20;  // never inserted anywhere

void InsertSentinels(ShardedCuckooGraph* graph) {
  for (NodeId h = 0; h < kHubs; ++h) {
    ASSERT_TRUE(graph->InsertEdge(h, kSentinelV));
  }
}

// A reader thread: probes sentinel-present and known-absent edges (plus
// degree and weight) until told to stop, checking every answer against
// the invariants the writer preserves. Always runs at least one full
// pass (a fast writer may finish before this thread is scheduled).
// Returns how many probes ran.
size_t ReaderLoop(const ShardedCuckooGraph& graph,
                  const std::atomic<bool>& stop) {
  size_t probes = 0;
  std::vector<Edge> batch;
  do {
    for (NodeId h = 0; h < kHubs; ++h) {
      EXPECT_TRUE(graph.QueryEdge(h, kSentinelV));
      EXPECT_FALSE(graph.QueryEdge(h, kAbsentV));
      EXPECT_EQ(graph.EdgeWeight(h, kSentinelV), 1u);
      EXPECT_GE(graph.OutDegree(h), 1u);  // the sentinel never leaves
      probes += 4;
    }
    // Batch path: kHubs pinned-present + kHubs never-present edges must
    // count exactly kHubs regardless of writer interleaving.
    batch.clear();
    for (NodeId h = 0; h < kHubs; ++h) {
      batch.push_back(Edge{h, kSentinelV});
      batch.push_back(Edge{h, kAbsentV});
    }
    EXPECT_EQ(graph.QueryEdges(Span<const Edge>(batch.data(),
                                                batch.size())),
              static_cast<size_t>(kHubs));
    probes += batch.size();
  } while (!stop.load(std::memory_order_acquire));
  return probes;
}

// Writer A: drives each hub's degree up past the inline threshold and
// far enough to append and merge chain tables (TRANSFORMATION + Table II
// growth), then back down to the sentinel alone (reverse-TRANSFORMATION
// and chain shrink), over and over.
void TransformChurnWriter(ShardedCuckooGraph* graph, int rounds,
                          NodeId fan) {
  for (int r = 0; r < rounds; ++r) {
    for (NodeId h = 0; h < kHubs; ++h) {
      for (NodeId v = 1; v <= fan; ++v) graph->InsertEdge(h, v);
    }
    for (NodeId h = 0; h < kHubs; ++h) {
      for (NodeId v = 1; v <= fan; ++v) graph->DeleteEdge(h, v);
    }
  }
}

// Writer B: floods fresh source vertices to force L-CHT doubling
// rebuilds, then removes them all so the shrink path rebuilds smaller —
// both ends retire the old bucket block through the epoch limbo.
void LTableChurnWriter(ShardedCuckooGraph* graph, int rounds,
                       NodeId vertices) {
  const NodeId base = 1u << 16;  // disjoint from hub sources
  for (int r = 0; r < rounds; ++r) {
    for (NodeId u = 0; u < vertices; ++u) {
      graph->InsertEdge(base + u, 1);
    }
    for (NodeId u = 0; u < vertices; ++u) {
      graph->DeleteEdge(base + u, 1);
    }
  }
}

TEST(OptimisticReadsTest, ReadersRaceTransformationStorm) {
  ShardedCuckooGraph graph(StressConfig(/*optimistic=*/true));
  InsertSentinels(&graph);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  std::vector<size_t> probes(4, 0);
  for (size_t t = 0; t < probes.size(); ++t) {
    readers.emplace_back([&graph, &stop, &probes, t] {
      probes[t] = ReaderLoop(graph, stop);
    });
  }
  // Fan of 64 per hub: crosses the inline threshold (TRANSFORMATION),
  // appends chain tables, and triggers merge-and-double rebuilds.
  TransformChurnWriter(&graph, /*rounds=*/40, /*fan=*/64);
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  for (size_t p : probes) EXPECT_GT(p, 0u);
  // Quiesced end state: only the sentinels remain.
  EXPECT_EQ(graph.NumEdges(), static_cast<size_t>(kHubs));
  for (NodeId h = 0; h < kHubs; ++h) {
    EXPECT_EQ(graph.OutDegree(h), 1u);
  }
  const auto rp = graph.read_path_stats();
  EXPECT_GT(rp.optimistic + rp.locked, 0u);
}

TEST(OptimisticReadsTest, ReadersRaceReverseTransformationDeletes) {
  ShardedCuckooGraph graph(StressConfig(/*optimistic=*/true));
  InsertSentinels(&graph);
  // Start every hub above the inline threshold so the writer's first
  // act is deletion pressure that collapses chains back to inline.
  for (NodeId h = 0; h < kHubs; ++h) {
    for (NodeId v = 1; v <= 32; ++v) ASSERT_TRUE(graph.InsertEdge(h, v));
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  std::vector<size_t> probes(4, 0);
  for (size_t t = 0; t < probes.size(); ++t) {
    readers.emplace_back([&graph, &stop, &probes, t] {
      probes[t] = ReaderLoop(graph, stop);
    });
  }
  for (int r = 0; r < 60; ++r) {
    for (NodeId h = 0; h < kHubs; ++h) {
      for (NodeId v = 1; v <= 32; ++v) graph.DeleteEdge(h, v);
    }
    for (NodeId h = 0; h < kHubs; ++h) {
      for (NodeId v = 1; v <= 32; ++v) graph.InsertEdge(h, v);
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  for (size_t p : probes) EXPECT_GT(p, 0u);
  EXPECT_EQ(graph.NumEdges(), static_cast<size_t>(kHubs) * 33);
}

TEST(OptimisticReadsTest, ReadersRaceLTableRebuilds) {
  ShardedCuckooGraph graph(StressConfig(/*optimistic=*/true));
  InsertSentinels(&graph);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  std::vector<size_t> probes(4, 0);
  for (size_t t = 0; t < probes.size(); ++t) {
    readers.emplace_back([&graph, &stop, &probes, t] {
      probes[t] = ReaderLoop(graph, stop);
    });
  }
  LTableChurnWriter(&graph, /*rounds=*/30, /*vertices=*/512);
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  for (size_t p : probes) EXPECT_GT(p, 0u);
  EXPECT_EQ(graph.NumEdges(), static_cast<size_t>(kHubs));
}

// With no concurrent writer, every optimistic probe validates on the
// first try: the lock-free path must serve ALL reads and the locked
// fallback none. This is the test that proves the fast path actually
// runs (a broken seqlock that always failed validation would still pass
// the stress tests above — via the fallback).
TEST(OptimisticReadsTest, QuiescedReadsAreServedLockFree) {
  ShardedCuckooGraph graph(StressConfig(/*optimistic=*/true));
  InsertSentinels(&graph);

  const auto before = graph.read_path_stats();
  size_t reads = 0;
  for (NodeId h = 0; h < kHubs; ++h) {
    EXPECT_TRUE(graph.QueryEdge(h, kSentinelV));
    EXPECT_FALSE(graph.QueryEdge(h, kAbsentV));
    EXPECT_EQ(graph.OutDegree(h), 1u);
    EXPECT_EQ(graph.EdgeWeight(h, kSentinelV), 1u);
    reads += 4;
  }
  std::vector<Edge> batch;
  for (NodeId h = 0; h < kHubs; ++h) batch.push_back(Edge{h, kSentinelV});
  EXPECT_EQ(graph.QueryEdges(Span<const Edge>(batch.data(), batch.size())),
            batch.size());
  reads += batch.size();

  const auto after = graph.read_path_stats();
  EXPECT_EQ(after.optimistic - before.optimistic, reads);
  EXPECT_EQ(after.locked, before.locked);
}

// Config::optimistic_reads = false must force every read through the
// stripe lock — same answers, zero lock-free probes.
TEST(OptimisticReadsTest, DisabledKnobFallsBackToLockedReads) {
  ShardedCuckooGraph graph(StressConfig(/*optimistic=*/false));
  EXPECT_FALSE(graph.optimistic_reads());
  InsertSentinels(&graph);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  std::vector<size_t> probes(2, 0);
  for (size_t t = 0; t < probes.size(); ++t) {
    readers.emplace_back([&graph, &stop, &probes, t] {
      probes[t] = ReaderLoop(graph, stop);
    });
  }
  TransformChurnWriter(&graph, /*rounds=*/10, /*fan=*/32);
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  for (size_t p : probes) EXPECT_GT(p, 0u);
  const auto rp = graph.read_path_stats();
  EXPECT_EQ(rp.optimistic, 0u);
  EXPECT_GT(rp.locked, 0u);
  EXPECT_EQ(graph.NumEdges(), static_cast<size_t>(kHubs));
}

}  // namespace
}  // namespace cuckoograph
