// Unit tests for the Neo4j-style property graph simulation: record-store
// semantics (auto-created nodes, parallel relationships, property maps,
// adjacency-scan accounting) and the CuckooGraph-indexed variant's
// agreement with the pure store on randomized streams.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "neo4j_sim/indexed_property_graph.h"
#include "neo4j_sim/property_graph.h"

namespace cuckoograph::neo4j_sim {
namespace {

TEST(PropertyGraphStoreTest, CreateRelationshipAutoCreatesNodes) {
  PropertyGraphStore store;
  EXPECT_FALSE(store.HasNode(1));
  const RelId rel = store.CreateRelationship(1, 2, "KNOWS");
  EXPECT_TRUE(store.HasNode(1));
  EXPECT_TRUE(store.HasNode(2));
  EXPECT_EQ(store.NumNodes(), 2u);
  EXPECT_EQ(store.NumRelationships(), 1u);
  EXPECT_EQ(store.relationship(rel).start, 1u);
  EXPECT_EQ(store.relationship(rel).end, 2u);
  EXPECT_EQ(store.relationship(rel).type, "KNOWS");
}

TEST(PropertyGraphStoreTest, ParallelRelationshipsAreDistinctRecords) {
  PropertyGraphStore store;
  const RelId first = store.CreateRelationship(1, 2);
  const RelId second = store.CreateRelationship(1, 2);
  EXPECT_NE(first, second);
  EXPECT_EQ(store.NumRelationships(), 2u);
  EXPECT_EQ(store.OutDegree(1), 2u);
  const std::vector<RelId> found = store.FindRelationships(1, 2);
  EXPECT_EQ(found, (std::vector<RelId>{second, first}));  // newest first
}

TEST(PropertyGraphStoreTest, FindScansTheWholeOutChain) {
  PropertyGraphStore store;
  for (NodeId v = 10; v < 20; ++v) store.CreateRelationship(1, v);
  const size_t before = store.scan_steps();
  EXPECT_EQ(store.FindRelationships(1, 10).size(), 1u);
  // Node 1 has ten out-relationships; the match (its oldest) is found
  // only after walking every chain record.
  EXPECT_EQ(store.scan_steps() - before, 10u);
  EXPECT_TRUE(store.FindRelationships(1, 999).empty());
  EXPECT_TRUE(store.FindRelationships(999, 1).empty());  // absent start
}

TEST(PropertyGraphStoreTest, DirectedSemantics) {
  PropertyGraphStore store;
  store.CreateRelationship(1, 2);
  EXPECT_EQ(store.FindRelationships(1, 2).size(), 1u);
  EXPECT_TRUE(store.FindRelationships(2, 1).empty());
  EXPECT_EQ(store.OutDegree(2), 0u);
}

TEST(PropertyGraphStoreTest, NodeAndRelationshipProperties) {
  PropertyGraphStore store;
  const RelId rel = store.CreateRelationship(1, 2, "KNOWS");
  store.SetRelationshipProperty(rel, "since", "2021");
  store.SetNodeProperty(1, "name", "alice");
  store.SetNodeProperty(7, "name", "ghost");  // auto-creates node 7

  ASSERT_NE(store.GetRelationshipProperty(rel, "since"), nullptr);
  EXPECT_EQ(*store.GetRelationshipProperty(rel, "since"), "2021");
  EXPECT_EQ(store.GetRelationshipProperty(rel, "absent"), nullptr);
  ASSERT_NE(store.GetNodeProperty(1, "name"), nullptr);
  EXPECT_EQ(*store.GetNodeProperty(1, "name"), "alice");
  EXPECT_EQ(store.GetNodeProperty(2, "name"), nullptr);
  EXPECT_TRUE(store.HasNode(7));
  EXPECT_EQ(store.OutDegree(7), 0u);

  store.SetNodeProperty(1, "name", "alicia");  // overwrite
  EXPECT_EQ(*store.GetNodeProperty(1, "name"), "alicia");
}

TEST(PropertyGraphStoreTest, MemoryGrowsWithRecords) {
  PropertyGraphStore store;
  const size_t empty = store.MemoryBytes();
  for (NodeId v = 0; v < 100; ++v) store.CreateRelationship(0, v);
  EXPECT_GT(store.MemoryBytes(), empty);
}

TEST(IndexedPropertyGraphTest, FindMatchesPureStoreOnParallelEdges) {
  IndexedPropertyGraph indexed;
  const RelId a = indexed.CreateRelationship(1, 2);
  indexed.CreateRelationship(1, 3);
  const RelId b = indexed.CreateRelationship(1, 2);

  std::vector<RelId> found;
  for (auto it = indexed.FindRelationships(1, 2); it.Valid(); it.Next()) {
    found.push_back(it.Id());
  }
  EXPECT_EQ(found, (std::vector<RelId>{b, a}));  // newest first
  EXPECT_EQ(indexed.CountRelationships(1, 2), 2u);
  EXPECT_EQ(indexed.CountRelationships(1, 3), 1u);
}

TEST(IndexedPropertyGraphTest, NegativeLookupsNeverTouchTheRecordStore) {
  IndexedPropertyGraph indexed;
  indexed.CreateRelationship(1, 2);
  const size_t scans_before = indexed.store().scan_steps();
  EXPECT_FALSE(indexed.FindRelationships(1, 99).Valid());
  EXPECT_FALSE(indexed.FindRelationships(42, 2).Valid());
  EXPECT_FALSE(indexed.HasRelationship(2, 1));
  EXPECT_EQ(indexed.index_rejects(), 2u);  // HasRelationship not counted
  EXPECT_EQ(indexed.store().scan_steps(), scans_before);
}

TEST(IndexedPropertyGraphTest, IteratorExposesRecords) {
  IndexedPropertyGraph indexed;
  const RelId rel = indexed.CreateRelationship(5, 6, "LIKES");
  indexed.SetRelationshipProperty(rel, "weight", "3");
  auto it = indexed.FindRelationships(5, 6);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.record().type, "LIKES");
  EXPECT_EQ(*indexed.store().GetRelationshipProperty(it.Id(), "weight"),
            "3");
  it.Next();
  EXPECT_FALSE(it.Valid());
}

TEST(IndexedPropertyGraphTest, IndexTracksEveryDistinctPairExactlyOnce) {
  IndexedPropertyGraph indexed;
  indexed.CreateRelationship(1, 2);
  indexed.CreateRelationship(1, 2);  // parallel: same index edge
  indexed.CreateRelationship(2, 1);
  EXPECT_EQ(indexed.index().NumEdges(), 2u);
  EXPECT_EQ(indexed.store().NumRelationships(), 3u);
}

TEST(IndexedPropertyGraphTest, AgreesWithPureStoreOnRandomStream) {
  // The Figure 18 equivalence, shrunk: same random multigraph into both
  // stores, then every queried pair must return the same relationship
  // multiset (compared as counts; ids are creation-ordered in both).
  PropertyGraphStore pure;
  IndexedPropertyGraph indexed;
  SplitMix64 rng(12345);
  for (int i = 0; i < 2000; ++i) {
    const NodeId u = rng.NextBelow(64);
    const NodeId v = rng.NextBelow(64);
    pure.CreateRelationship(u, v);
    indexed.CreateRelationship(u, v);
  }
  for (NodeId u = 0; u < 64; ++u) {
    for (NodeId v = 0; v < 64; ++v) {
      const std::vector<RelId> expected = pure.FindRelationships(u, v);
      std::vector<RelId> actual;
      for (auto it = indexed.FindRelationships(u, v); it.Valid();
           it.Next()) {
        actual.push_back(it.Id());
      }
      ASSERT_EQ(actual, expected) << u << "->" << v;
    }
  }
  // Maintaining the index costs memory the pure store does not pay.
  EXPECT_GT(indexed.MemoryBytes(), pure.MemoryBytes());
}

}  // namespace
}  // namespace cuckoograph::neo4j_sim
