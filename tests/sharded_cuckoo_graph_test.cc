// ShardedCuckooGraph: shard routing/normalization checks plus the
// multi-threaded stress suite — concurrent insert/query/delete on
// disjoint and overlapping key ranges, with the final state checked
// against a single-threaded oracle. (The full GraphStore v2 contract is
// covered scheme-parameterized in graph_store_conformance_test.cc; this
// file covers what a single-threaded harness cannot.) CI additionally
// runs this binary under ThreadSanitizer.
#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "core/sharded_cuckoo_graph.h"
#include "gtest/gtest.h"

namespace cuckoograph {
namespace {

constexpr int kThreads = 4;

using ReferenceModel = std::map<NodeId, std::set<NodeId>>;

size_t ModelEdges(const ReferenceModel& model) {
  size_t edges = 0;
  for (const auto& [u, vs] : model) edges += vs.size();
  return edges;
}

// One deterministic insert/delete churn op stream over a source range.
// Replaying it single-threaded into a ReferenceModel is the oracle for a
// thread that ran it against the shared store.
struct ChurnOp {
  Edge edge;
  bool is_delete;
};

std::vector<ChurnOp> MakeChurn(uint64_t seed, NodeId src_base,
                               NodeId src_range, size_t ops) {
  SplitMix64 rng(seed);
  std::vector<ChurnOp> churn;
  churn.reserve(ops);
  for (size_t i = 0; i < ops; ++i) {
    ChurnOp op;
    op.edge.u = src_base + rng.NextBelow(src_range);
    op.edge.v = rng.NextBelow(200);
    op.is_delete = rng.NextBelow(3) == 0;
    churn.push_back(op);
  }
  return churn;
}

void ApplyToModel(const std::vector<ChurnOp>& churn, ReferenceModel* model) {
  for (const ChurnOp& op : churn) {
    if (op.is_delete) {
      (*model)[op.edge.u].erase(op.edge.v);
      if ((*model)[op.edge.u].empty()) model->erase(op.edge.u);
    } else {
      (*model)[op.edge.u].insert(op.edge.v);
    }
  }
}

TEST(ShardedCuckooGraphTest, ShardCountIsClampedAndReported) {
  Config config;
  config.num_shards = 0;
  EXPECT_EQ(ShardedCuckooGraph(config).num_shards(), 1u);
  config.num_shards = 5;
  EXPECT_EQ(ShardedCuckooGraph(config).num_shards(), 5u);
  EXPECT_EQ(ShardedCuckooGraph().num_shards(), Config().num_shards);
}

TEST(ShardedCuckooGraphTest, RoutingSpreadsSourcesAcrossShards) {
  Config config;
  config.num_shards = 8;
  ShardedCuckooGraph store(config);
  std::vector<size_t> hits(store.num_shards(), 0);
  for (NodeId u = 0; u < 4'000; ++u) {
    const size_t shard = store.ShardOf(u);
    ASSERT_LT(shard, store.num_shards());
    ++hits[shard];
  }
  for (size_t s = 0; s < hits.size(); ++s) {
    // A uniform split would be 500 per shard; demand no shard starves.
    EXPECT_GT(hits[s], 200u) << "shard " << s;
  }
}

TEST(ShardedCuckooGraphTest, SingleThreadedChurnAgreesWithOracle) {
  Config config;
  config.num_shards = 3;  // odd count, exercises the modulo reduction
  ShardedCuckooGraph store(config);
  const auto churn = MakeChurn(11, 0, 64, 20'000);
  ReferenceModel model;
  for (const ChurnOp& op : churn) {
    if (op.is_delete) {
      const bool erased = model[op.edge.u].erase(op.edge.v) > 0;
      if (model[op.edge.u].empty()) model.erase(op.edge.u);
      EXPECT_EQ(store.DeleteEdge(op.edge.u, op.edge.v), erased);
    } else {
      EXPECT_EQ(store.InsertEdge(op.edge.u, op.edge.v),
                model[op.edge.u].insert(op.edge.v).second);
    }
  }
  EXPECT_EQ(store.NumEdges(), ModelEdges(model));
  EXPECT_EQ(store.NumNodes(), model.size());
}

// Disjoint source ranges: each thread churns its own range, so every
// thread's op stream is serialized relative to itself and the oracle is
// its single-threaded replay.
TEST(ShardedCuckooGraphTest, ConcurrentDisjointRangesMatchOracle) {
  ShardedCuckooGraph store;
  std::vector<std::vector<ChurnOp>> churns;
  for (int t = 0; t < kThreads; ++t) {
    churns.push_back(MakeChurn(100 + static_cast<uint64_t>(t),
                               static_cast<NodeId>(t) * 10'000, 96,
                               30'000));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &churns, t] {
      for (const ChurnOp& op : churns[t]) {
        if (op.is_delete) {
          store.DeleteEdge(op.edge.u, op.edge.v);
        } else {
          store.InsertEdge(op.edge.u, op.edge.v);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  ReferenceModel model;
  for (const auto& churn : churns) ApplyToModel(churn, &model);
  EXPECT_EQ(store.NumEdges(), ModelEdges(model));
  EXPECT_EQ(store.NumNodes(), model.size());
  for (const auto& [u, vs] : model) {
    ASSERT_EQ(store.OutDegree(u), vs.size()) << "u=" << u;
    for (const NodeId v : vs) {
      ASSERT_TRUE(store.QueryEdge(u, v)) << u << "->" << v;
    }
  }
}

// Overlapping inserts: every thread pushes the same edge list (rotated so
// arrival orders differ). Insertion is idempotent, so the final state is
// the distinct set and each fresh edge is claimed by exactly one thread.
TEST(ShardedCuckooGraphTest, ConcurrentOverlappingInsertsConvergeToUnion) {
  ShardedCuckooGraph store;
  SplitMix64 rng(7);
  std::vector<Edge> edges;
  std::set<uint64_t> distinct;
  for (int i = 0; i < 20'000; ++i) {
    const Edge e{rng.NextBelow(300), rng.NextBelow(300)};
    edges.push_back(e);
    distinct.insert(EdgeKey(e));
  }
  std::atomic<size_t> fresh_total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &edges, &fresh_total, t] {
      const size_t start = edges.size() / kThreads * static_cast<size_t>(t);
      size_t fresh = 0;
      for (size_t i = 0; i < edges.size(); ++i) {
        const Edge& e = edges[(start + i) % edges.size()];
        fresh += store.InsertEdge(e.u, e.v) ? 1 : 0;
      }
      fresh_total += fresh;
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(store.NumEdges(), distinct.size());
  EXPECT_EQ(fresh_total.load(), distinct.size());
  for (const Edge& e : edges) ASSERT_TRUE(store.QueryEdge(e.u, e.v));
}

// Overlapping deletes: after a concurrent preload, every thread tries to
// delete the same target subset. Deletion is idempotent, so each target
// edge's successful delete happens on exactly one thread.
TEST(ShardedCuckooGraphTest, ConcurrentOverlappingDeletesRemoveEachOnce) {
  ShardedCuckooGraph store;
  SplitMix64 rng(13);
  std::set<uint64_t> distinct;
  std::vector<Edge> edges;
  for (int i = 0; i < 12'000; ++i) {
    const Edge e{rng.NextBelow(250), rng.NextBelow(250)};
    if (distinct.insert(EdgeKey(e)).second) edges.push_back(e);
  }
  store.InsertEdges(edges);
  ASSERT_EQ(store.NumEdges(), edges.size());

  // Every third distinct edge is a delete target.
  std::vector<Edge> targets;
  for (size_t i = 0; i < edges.size(); i += 3) targets.push_back(edges[i]);

  std::atomic<size_t> removed_total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &targets, &removed_total, t] {
      const size_t start =
          targets.size() / kThreads * static_cast<size_t>(t);
      size_t removed = 0;
      for (size_t i = 0; i < targets.size(); ++i) {
        const Edge& e = targets[(start + i) % targets.size()];
        removed += store.DeleteEdge(e.u, e.v) ? 1 : 0;
      }
      removed_total += removed;
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(removed_total.load(), targets.size());
  EXPECT_EQ(store.NumEdges(), edges.size() - targets.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    ASSERT_EQ(store.QueryEdge(edges[i].u, edges[i].v), i % 3 != 0);
  }
}

// The batch entry points under concurrency: threads drive disjoint source
// ranges through InsertEdges/QueryEdges/DeleteEdges spans (the per-shard
// grouped path) instead of scalar calls.
TEST(ShardedCuckooGraphTest, ConcurrentBatchOpsMatchOracle) {
  ShardedCuckooGraph store;
  std::vector<std::vector<ChurnOp>> churns;
  for (int t = 0; t < kThreads; ++t) {
    churns.push_back(MakeChurn(500 + static_cast<uint64_t>(t),
                               static_cast<NodeId>(t) * 10'000, 80,
                               24'000));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &churns, t] {
      // Split the churn into alternating insert and delete batches.
      constexpr size_t kBatch = 512;
      std::vector<Edge> inserts, deletes;
      for (const ChurnOp& op : churns[t]) {
        (op.is_delete ? deletes : inserts).push_back(op.edge);
        if (inserts.size() >= kBatch) {
          store.InsertEdges(inserts);
          inserts.clear();
        }
        if (deletes.size() >= kBatch) {
          store.DeleteEdges(deletes);
          deletes.clear();
        }
      }
      store.InsertEdges(inserts);
      store.DeleteEdges(deletes);
    });
  }
  for (std::thread& th : threads) th.join();

  // The batch split reorders ops within a window, so replay the same
  // batched sequence (not the raw churn) as the oracle.
  ReferenceModel model;
  for (const auto& churn : churns) {
    constexpr size_t kBatch = 512;
    std::vector<ChurnOp> inserts, deletes;
    const auto flush = [&model](std::vector<ChurnOp>* batch) {
      for (const ChurnOp& op : *batch) {
        if (op.is_delete) {
          model[op.edge.u].erase(op.edge.v);
          if (model[op.edge.u].empty()) model.erase(op.edge.u);
        } else {
          model[op.edge.u].insert(op.edge.v);
        }
      }
      batch->clear();
    };
    for (const ChurnOp& op : churn) {
      (op.is_delete ? deletes : inserts).push_back(op);
      if (inserts.size() >= kBatch) flush(&inserts);
      if (deletes.size() >= kBatch) flush(&deletes);
    }
    flush(&inserts);
    flush(&deletes);
  }
  EXPECT_EQ(store.NumEdges(), ModelEdges(model));
  EXPECT_EQ(store.NumNodes(), model.size());
  for (const auto& [u, vs] : model) {
    std::vector<Edge> queries;
    for (const NodeId v : vs) queries.push_back(Edge{u, v});
    ASSERT_EQ(store.QueryEdges(queries), queries.size()) << "u=" << u;
  }
}

// Readers over a preloaded range stay consistent while writers churn a
// different range (shards serialize ops; readers must never see a torn
// edge). Under TSan this is the reader/writer race check.
TEST(ShardedCuckooGraphTest, ConcurrentReadersSeeConsistentState) {
  ShardedCuckooGraph store;
  constexpr NodeId kReadBase = 1'000'000;
  std::vector<Edge> preload;
  for (NodeId i = 0; i < 2'000; ++i) {
    preload.push_back(Edge{kReadBase + i % 97, i});
  }
  store.InsertEdges(preload);

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads - 1; ++t) {
    readers.emplace_back([&store, &preload, &stop, &failed] {
      size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const Edge& e = preload[i++ % preload.size()];
        if (!store.QueryEdge(e.u, e.v) ||
            store.EdgeWeight(e.u, e.v) != 1) {
          failed.store(true);
          return;
        }
      }
    });
  }
  std::thread writer([&store] {
    const auto churn = MakeChurn(77, 0, 128, 60'000);
    for (const ChurnOp& op : churn) {
      if (op.is_delete) {
        store.DeleteEdge(op.edge.u, op.edge.v);
      } else {
        store.InsertEdge(op.edge.u, op.edge.v);
      }
    }
  });
  writer.join();
  stop.store(true);
  for (std::thread& th : readers) th.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace cuckoograph
