// Seeded fuzz of the WAL record codec: the decoder's contract is that
// for ANY byte string it either yields a record that a real encoder
// produced, reports kNeedMore, or reports kCorrupt — it never crashes,
// never over-reads, and never fabricates. Deterministic seeds keep CI
// reproducible; crank kRounds locally for longer campaigns.
#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "gtest/gtest.h"
#include "persist/wal.h"

namespace cuckoograph {
namespace {

using persist::DecodeWalRecord;
using persist::EncodeWalRecord;
using persist::WalDecodeStatus;
using persist::WalOp;
using persist::WalRecord;

std::vector<Edge> RandomEdges(SplitMix64* rng, size_t max_count) {
  std::vector<Edge> edges(rng->NextBelow64(max_count + 1));
  for (Edge& e : edges) {
    e.u = static_cast<NodeId>(rng->Next());
    e.v = static_cast<NodeId>(rng->Next());
  }
  return edges;
}

WalOp RandomOp(SplitMix64* rng) {
  return rng->NextBelow64(2) == 0 ? WalOp::kInsertEdges
                                  : WalOp::kDeleteEdges;
}

TEST(WalFuzzTest, EncodeDecodeRoundTrips) {
  SplitMix64 rng(0xF00D);
  for (int round = 0; round < 2'000; ++round) {
    const uint64_t lsn = rng.Next() | 1;  // nonzero
    const WalOp op = RandomOp(&rng);
    const std::vector<Edge> edges = RandomEdges(&rng, 64);
    const std::string frame = EncodeWalRecord(lsn, op, Span<const Edge>(edges));

    WalRecord record;
    size_t consumed = 0;
    std::string detail;
    ASSERT_EQ(DecodeWalRecord(frame, &record, &consumed, &detail),
              WalDecodeStatus::kOk)
        << detail;
    EXPECT_EQ(consumed, frame.size());
    EXPECT_EQ(record.lsn, lsn);
    EXPECT_EQ(record.op, op);
    ASSERT_EQ(record.edges.size(), edges.size());
    for (size_t i = 0; i < edges.size(); ++i) {
      EXPECT_EQ(record.edges[i].u, edges[i].u);
      EXPECT_EQ(record.edges[i].v, edges[i].v);
    }
  }
}

TEST(WalFuzzTest, EveryPrefixOfAFrameNeedsMore) {
  SplitMix64 rng(0xBEEF);
  const std::vector<Edge> edges = RandomEdges(&rng, 16);
  const std::string frame =
      EncodeWalRecord(42, WalOp::kInsertEdges, Span<const Edge>(edges));
  for (size_t len = 0; len < frame.size(); ++len) {
    WalRecord record;
    size_t consumed = 0;
    std::string detail;
    EXPECT_EQ(DecodeWalRecord(std::string_view(frame.data(), len), &record,
                              &consumed, &detail),
              WalDecodeStatus::kNeedMore)
        << "len=" << len;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(WalFuzzTest, RandomBytesNeverDecodeAsRecords) {
  // 2^32 CRC space makes an accidental valid frame effectively
  // impossible in 20k trials; what matters is that the decoder
  // classifies garbage without crashing or over-consuming.
  SplitMix64 rng(0xA5A5);
  for (int round = 0; round < 20'000; ++round) {
    std::string bytes(rng.NextBelow64(128), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.Next());
    WalRecord record;
    size_t consumed = 0;
    std::string detail;
    const WalDecodeStatus status =
        DecodeWalRecord(bytes, &record, &consumed, &detail);
    if (status == WalDecodeStatus::kOk) {
      // Only acceptable if it genuinely round-trips.
      ASSERT_LE(consumed, bytes.size());
      const std::string reencoded = EncodeWalRecord(
          record.lsn, record.op, Span<const Edge>(record.edges));
      EXPECT_EQ(reencoded, bytes.substr(0, consumed));
    } else {
      EXPECT_EQ(consumed, 0u);
      EXPECT_FALSE(detail.empty());
    }
  }
}

TEST(WalFuzzTest, SingleByteMutationYieldsTheExactCleanPrefix) {
  SplitMix64 rng(0x5EED);
  for (int round = 0; round < 400; ++round) {
    // A stream of whole records with remembered frame boundaries.
    const size_t record_count = 1 + rng.NextBelow64(8);
    std::string stream;
    std::vector<size_t> starts;  // frame start offsets
    std::vector<WalRecord> originals;
    for (size_t i = 0; i < record_count; ++i) {
      const std::vector<Edge> edges = RandomEdges(&rng, 8);
      const WalOp op = RandomOp(&rng);
      const uint64_t lsn = i + 1;
      starts.push_back(stream.size());
      stream += EncodeWalRecord(lsn, op, Span<const Edge>(edges));
      WalRecord r;
      r.lsn = lsn;
      r.op = op;
      r.edges = edges;
      originals.push_back(std::move(r));
    }
    starts.push_back(stream.size());

    // Flip one random byte (never to the same value).
    const size_t flip_at = rng.NextBelow64(stream.size());
    const char flip_bits =
        static_cast<char>(1u << rng.NextBelow64(8));
    std::string mutated = stream;
    mutated[flip_at] = static_cast<char>(mutated[flip_at] ^ flip_bits);
    const size_t damaged_record =
        static_cast<size_t>(std::upper_bound(starts.begin(), starts.end(),
                                             flip_at) -
                            starts.begin()) -
        1;

    // Decode the mutated stream to exhaustion: the clean prefix must be
    // exactly the records before the damaged one, then a non-Ok stop.
    std::string_view view = mutated;
    size_t decoded = 0;
    while (true) {
      WalRecord record;
      size_t consumed = 0;
      std::string detail;
      const WalDecodeStatus status =
          DecodeWalRecord(view, &record, &consumed, &detail);
      if (status != WalDecodeStatus::kOk) break;
      ASSERT_LT(decoded, originals.size());
      EXPECT_EQ(record.lsn, originals[decoded].lsn);
      EXPECT_EQ(record.edges.size(), originals[decoded].edges.size());
      view.remove_prefix(consumed);
      ++decoded;
      if (view.empty()) break;
    }
    EXPECT_EQ(decoded, damaged_record)
        << "round=" << round << " flip_at=" << flip_at;
  }
}

TEST(WalFuzzTest, InsaneLengthFieldsAreCorruptNotAllocated) {
  // A frame whose length field claims gigabytes must be rejected up
  // front, not passed to a vector reserve.
  std::string bytes(64, '\0');
  bytes[0] = static_cast<char>(0xFF);
  bytes[1] = static_cast<char>(0xFF);
  bytes[2] = static_cast<char>(0xFF);
  bytes[3] = static_cast<char>(0x7F);
  WalRecord record;
  size_t consumed = 0;
  std::string detail;
  EXPECT_EQ(DecodeWalRecord(bytes, &record, &consumed, &detail),
            WalDecodeStatus::kCorrupt);
  EXPECT_NE(detail.find("sanity cap"), std::string::npos);
}

}  // namespace
}  // namespace cuckoograph
