// Unit tests for the core CuckooGraph store: round-trips, TRANSFORMATION,
// DENYLIST, reverse transformation, expansion from minimal size, and the
// Theorem 1/2 stats counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/cuckoo_graph.h"

namespace cuckoograph {
namespace {

TEST(CuckooGraphTest, InsertQueryRoundTrip) {
  CuckooGraph graph;
  EXPECT_TRUE(graph.InsertEdge(1, 2));
  EXPECT_TRUE(graph.InsertEdge(1, 3));
  EXPECT_TRUE(graph.InsertEdge(2, 1));
  EXPECT_TRUE(graph.QueryEdge(1, 2));
  EXPECT_TRUE(graph.QueryEdge(1, 3));
  EXPECT_TRUE(graph.QueryEdge(2, 1));
  EXPECT_FALSE(graph.QueryEdge(2, 3));
  EXPECT_FALSE(graph.QueryEdge(3, 1));  // direction matters
  EXPECT_EQ(graph.NumEdges(), 3u);
  EXPECT_EQ(graph.NumNodes(), 2u);
}

TEST(CuckooGraphTest, DuplicateInsertIsIdempotent) {
  CuckooGraph graph;
  EXPECT_TRUE(graph.InsertEdge(7, 8));
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(graph.InsertEdge(7, 8));
  }
  EXPECT_EQ(graph.NumEdges(), 1u);
  EXPECT_EQ(graph.OutDegree(7), 1u);
}

TEST(CuckooGraphTest, DeleteRemovesEdgeAndEmptyVertex) {
  CuckooGraph graph;
  graph.InsertEdge(1, 2);
  graph.InsertEdge(1, 3);
  EXPECT_TRUE(graph.DeleteEdge(1, 2));
  EXPECT_FALSE(graph.QueryEdge(1, 2));
  EXPECT_TRUE(graph.QueryEdge(1, 3));
  EXPECT_EQ(graph.NumEdges(), 1u);
  EXPECT_FALSE(graph.DeleteEdge(1, 2));  // already gone
  EXPECT_FALSE(graph.DeleteEdge(9, 9));  // never existed
  EXPECT_TRUE(graph.DeleteEdge(1, 3));
  EXPECT_EQ(graph.NumEdges(), 0u);
  EXPECT_EQ(graph.NumNodes(), 0u);
  EXPECT_EQ(graph.OutDegree(1), 0u);
}

TEST(CuckooGraphTest, TransformationAtInlineThreshold) {
  CuckooGraph graph;
  for (NodeId v = 0; v < CuckooGraph::kInlineSlots; ++v) {
    graph.InsertEdge(1, v + 10);
  }
  // 2R neighbours still fit inline: no chain yet.
  EXPECT_TRUE(graph.SChainLengths(1).empty());
  EXPECT_EQ(graph.stats().num_chains, 0u);

  graph.InsertEdge(1, 100);  // the (2R+1)-th neighbour triggers it
  EXPECT_FALSE(graph.SChainLengths(1).empty());
  EXPECT_EQ(graph.stats().num_chains, 1u);
  EXPECT_EQ(graph.stats().transformations, 1u);
  EXPECT_EQ(graph.OutDegree(1), 7u);
  for (NodeId v = 0; v < CuckooGraph::kInlineSlots; ++v) {
    EXPECT_TRUE(graph.QueryEdge(1, v + 10));
  }
  EXPECT_TRUE(graph.QueryEdge(1, 100));
}

TEST(CuckooGraphTest, ChainLengthsFollowTableTwoSequence) {
  Config config;
  config.s_initial_buckets = 2;  // "n" in Table II
  CuckooGraph graph(config);
  std::vector<std::vector<size_t>> states;
  std::vector<size_t> last;
  for (NodeId v = 0; v < 4'000'000 && states.size() < 6; ++v) {
    graph.InsertEdge(1, v + 100);
    std::vector<size_t> lengths = graph.SChainLengths(1);
    if (lengths.empty() || lengths == last) continue;
    last = lengths;
    states.push_back(std::move(lengths));
  }
  const std::vector<std::vector<size_t>> expected = {
      {2}, {2, 1}, {2, 1, 1}, {4, 2}, {4, 2, 2}, {8, 4}};
  EXPECT_EQ(states, expected);
}

TEST(CuckooGraphTest, SingleTableChainsRespectMaxChainTables) {
  Config config;
  config.max_chain_tables = 1;  // R = 1: merges must not append a second
  CuckooGraph graph(config);
  for (NodeId v = 0; v < 5'000; ++v) graph.InsertEdge(1, v + 10);
  EXPECT_EQ(graph.SChainLengths(1).size(), 1u);
  for (NodeId v = 0; v < 5'000; ++v) {
    ASSERT_TRUE(graph.QueryEdge(1, v + 10)) << v;
  }
}

TEST(CuckooGraphTest, ExpansionFromMinimalSize) {
  Config config;
  config.l_initial_buckets = 1;
  config.s_initial_buckets = 1;
  CuckooGraph graph(config);
  const NodeId n = 10'000;
  for (NodeId u = 0; u < n; ++u) {
    ASSERT_TRUE(graph.InsertEdge(u, u + 1));
  }
  EXPECT_EQ(graph.NumEdges(), static_cast<size_t>(n));
  EXPECT_EQ(graph.NumNodes(), static_cast<size_t>(n));
  for (NodeId u = 0; u < n; ++u) {
    ASSERT_TRUE(graph.QueryEdge(u, u + 1)) << u;
  }
  const GraphStats st = graph.stats();
  EXPECT_GT(st.l.expansions, 0u);
  EXPECT_GT(st.l.rehash_moves, 0u);
}

TEST(CuckooGraphTest, StatsCountersAreSane) {
  Config config;
  config.l_initial_buckets = 1;
  CuckooGraph graph(config);
  const NodeId n = 20'000;
  for (NodeId u = 0; u < n; ++u) graph.InsertEdge(u, u + 1);
  const GraphStats st = graph.stats();
  // One direct placement per vertex.
  EXPECT_EQ(st.l.insert_attempts, static_cast<uint64_t>(n));
  // Theorem 1: insertions per item stay far below T.
  const double placements =
      static_cast<double>(st.l.insert_attempts + st.l.rehash_moves);
  const double per_item =
      (placements + static_cast<double>(st.l.kicks)) / placements;
  EXPECT_LT(per_item, 1.5);
  // Theorem 2: amortized dollars per edge is bounded by 3.
  EXPECT_LE(placements / static_cast<double>(n), 3.0);
}

TEST(CuckooGraphTest, ForEachNeighborVisitsExactlyTheNeighbors) {
  CuckooGraph graph;
  std::set<NodeId> expected;
  for (NodeId v = 0; v < 500; ++v) {
    graph.InsertEdge(42, v * 3 + 1);
    expected.insert(v * 3 + 1);
  }
  std::set<NodeId> seen;
  size_t visits = 0;
  graph.ForEachNeighbor(42, [&](NodeId v) {
    seen.insert(v);
    ++visits;
  });
  EXPECT_EQ(visits, expected.size());  // no duplicates
  EXPECT_EQ(seen, expected);
  graph.ForEachNeighbor(999, [&](NodeId) { FAIL(); });
}

TEST(CuckooGraphTest, ChurnMatchesReferenceModel) {
  CuckooGraph graph;
  std::set<std::pair<NodeId, NodeId>> model;
  SplitMix64 rng(1234);
  for (int i = 0; i < 50'000; ++i) {
    const NodeId u = rng.NextBelow(64);
    const NodeId v = rng.NextBelow(512);
    if (rng.NextBelow(3) == 0) {
      EXPECT_EQ(graph.DeleteEdge(u, v), model.erase({u, v}) > 0);
    } else {
      EXPECT_EQ(graph.InsertEdge(u, v), model.insert({u, v}).second);
    }
  }
  EXPECT_EQ(graph.NumEdges(), model.size());
  for (const auto& [u, v] : model) {
    ASSERT_TRUE(graph.QueryEdge(u, v)) << u << "->" << v;
  }
}

TEST(CuckooGraphTest, DisablingInlineSlotsChainsEveryVertex) {
  Config config;
  config.enable_inline_slots = false;
  CuckooGraph graph(config);
  for (NodeId u = 0; u < 100; ++u) graph.InsertEdge(u, u + 1);
  EXPECT_EQ(graph.stats().num_chains, 100u);
  for (NodeId u = 0; u < 100; ++u) {
    EXPECT_TRUE(graph.QueryEdge(u, u + 1));
    EXPECT_FALSE(graph.SChainLengths(u).empty());
  }
}

TEST(CuckooGraphTest, ReverseTransformCollapsesChain) {
  CuckooGraph graph;
  for (NodeId v = 0; v < 200; ++v) graph.InsertEdge(5, v + 10);
  ASSERT_FALSE(graph.SChainLengths(5).empty());
  const size_t peak_memory = graph.MemoryBytes();
  for (NodeId v = 3; v < 200; ++v) graph.DeleteEdge(5, v + 10);
  // Degree is back under 2R: the chain collapsed to inline slots.
  EXPECT_TRUE(graph.SChainLengths(5).empty());
  EXPECT_EQ(graph.stats().num_chains, 0u);
  EXPECT_GT(graph.stats().reverse_transformations, 0u);
  EXPECT_LT(graph.MemoryBytes(), peak_memory);
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_TRUE(graph.QueryEdge(5, v + 10));
  }
  EXPECT_EQ(graph.OutDegree(5), 3u);
}

TEST(CuckooGraphTest, ReverseTransformOffRetainsChain) {
  Config config;
  config.enable_reverse_transform = false;
  CuckooGraph graph(config);
  for (NodeId v = 0; v < 200; ++v) graph.InsertEdge(5, v + 10);
  for (NodeId v = 3; v < 200; ++v) graph.DeleteEdge(5, v + 10);
  EXPECT_FALSE(graph.SChainLengths(5).empty());
  EXPECT_EQ(graph.stats().reverse_transformations, 0u);
  EXPECT_EQ(graph.OutDegree(5), 3u);
}

TEST(CuckooGraphTest, DenyListDisabledStaysCorrect) {
  Config config;
  config.enable_deny_list = false;
  config.l_initial_buckets = 1;
  config.s_initial_buckets = 1;
  CuckooGraph graph(config);
  for (NodeId u = 0; u < 5'000; ++u) {
    graph.InsertEdge(u % 50, u + 100);  // 50 vertices, growing chains
  }
  for (NodeId u = 0; u < 5'000; ++u) {
    ASSERT_TRUE(graph.QueryEdge(u % 50, u + 100)) << u;
  }
}

TEST(CuckooGraphTest, MemoryShrinksAfterMassDeletion) {
  CuckooGraph graph;
  std::vector<Edge> edges;
  SplitMix64 rng(77);
  for (int i = 0; i < 20'000; ++i) {
    edges.push_back(Edge{rng.NextBelow(2'000), rng.NextBelow(100'000)});
  }
  for (const Edge& e : edges) graph.InsertEdge(e.u, e.v);
  const size_t peak = graph.MemoryBytes();
  for (const Edge& e : edges) graph.DeleteEdge(e.u, e.v);
  EXPECT_EQ(graph.NumEdges(), 0u);
  EXPECT_EQ(graph.NumNodes(), 0u);
  EXPECT_LT(graph.MemoryBytes(), peak / 4);
}

TEST(CuckooGraphTest, ConfigIsNormalized) {
  Config config;
  config.l_initial_buckets = 0;
  config.cells_per_bucket = 0;
  config.max_kicks = -1;
  config.expand_threshold = 7.0;
  CuckooGraph graph(config);
  EXPECT_GE(graph.config().l_initial_buckets, 1u);
  EXPECT_GE(graph.config().cells_per_bucket, 1);
  EXPECT_GE(graph.config().max_kicks, 1);
  EXPECT_LE(graph.config().expand_threshold, 0.95);
  graph.InsertEdge(1, 2);
  EXPECT_TRUE(graph.QueryEdge(1, 2));
}

TEST(CuckooGraphTest, SelfLoopsAndExtremeIdsWork) {
  CuckooGraph graph;
  const NodeId max_id = 0xffffffffu;
  EXPECT_TRUE(graph.InsertEdge(0, 0));
  EXPECT_TRUE(graph.InsertEdge(max_id, max_id));
  EXPECT_TRUE(graph.InsertEdge(max_id, 0));
  EXPECT_TRUE(graph.QueryEdge(0, 0));
  EXPECT_TRUE(graph.QueryEdge(max_id, max_id));
  EXPECT_TRUE(graph.QueryEdge(max_id, 0));
  EXPECT_TRUE(graph.DeleteEdge(0, 0));
  EXPECT_FALSE(graph.QueryEdge(0, 0));
}

}  // namespace
}  // namespace cuckoograph
