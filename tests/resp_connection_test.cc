// Unit tests for the transport-agnostic dispatch core carved out of
// RedisServerSim: CommandTable (registration, Span argv dispatch, shared
// atomic counters) and RespConnection (per-connection parser state,
// reply buffering, protocol-error handling). The multi-connection cases
// are what the in-process sim can never exercise: several connections
// with interleaved partial commands over one table.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "common/span.h"
#include "redis_sim/command_table.h"
#include "redis_sim/resp.h"

namespace cuckoograph::redis_sim {
namespace {

// Registers an ECHO command (replies its first argument) and a PING.
// (The table is filled in place: its atomic counters make it immovable.)
void RegisterEcho(CommandTable* table) {
  table->RegisterCommand("ECHO", 2, [](Span<const std::string_view> argv) {
    return RespValue::Bulk(std::string(argv[1]));
  });
  table->RegisterCommand("PING", 1, [](Span<const std::string_view>) {
    return RespValue::Simple("PONG");
  });
}

TEST(CommandTableTest, DispatchRoutesBySpanArgv) {
  CommandTable table;
  RegisterEcho(&table);
  const std::vector<std::string_view> argv = {"echo", "hello"};
  const RespValue reply = table.Dispatch(Span<const std::string_view>(argv));
  EXPECT_EQ(reply.type, RespType::kBulkString);
  EXPECT_EQ(reply.text, "hello");
  EXPECT_EQ(table.commands_dispatched(), 1u);
  EXPECT_EQ(table.dispatch_errors(), 0u);
}

TEST(CommandTableTest, UnknownAndWrongArityNeverReachHandlers) {
  CommandTable table;
  RegisterEcho(&table);
  const std::vector<std::string_view> unknown = {"NOPE"};
  EXPECT_TRUE(
      table.Dispatch(Span<const std::string_view>(unknown)).IsError());
  const std::vector<std::string_view> bad_arity = {"PING", "extra"};
  EXPECT_TRUE(
      table.Dispatch(Span<const std::string_view>(bad_arity)).IsError());
  EXPECT_EQ(table.commands_dispatched(), 0u);
  EXPECT_EQ(table.dispatch_errors(), 2u);
}

TEST(CommandTableTest, HandlerErrorRepliesAreCounted) {
  CommandTable table;
  table.RegisterCommand("FAIL", 1, [](Span<const std::string_view>) {
    return RespValue::Error("ERR handler says no");
  });
  const std::vector<std::string_view> argv = {"FAIL"};
  EXPECT_TRUE(table.Dispatch(Span<const std::string_view>(argv)).IsError());
  EXPECT_EQ(table.commands_dispatched(), 1u);
  EXPECT_EQ(table.dispatch_errors(), 1u);
}

TEST(RespConnectionTest, InterleavedPartialCommandsDoNotShareParserState) {
  CommandTable table;
  RegisterEcho(&table);
  RespConnection a(&table);
  RespConnection b(&table);

  const std::string wire_a = EncodeCommand({"ECHO", "from-a"});
  const std::string wire_b = EncodeCommand({"ECHO", "from-b"});

  // a receives the front half of its request, then b a full request,
  // then a the rest: b must answer immediately and a must stay buffered
  // until its own bytes complete — never spliced with b's.
  std::string out_a, out_b;
  EXPECT_TRUE(a.Feed(wire_a.substr(0, wire_a.size() / 2), &out_a));
  EXPECT_TRUE(out_a.empty());
  EXPECT_GT(a.buffered_bytes(), 0u);

  EXPECT_TRUE(b.Feed(wire_b, &out_b));
  EXPECT_EQ(out_b, "$6\r\nfrom-b\r\n");
  EXPECT_EQ(b.buffered_bytes(), 0u);

  EXPECT_TRUE(a.Feed(wire_a.substr(wire_a.size() / 2), &out_a));
  EXPECT_EQ(out_a, "$6\r\nfrom-a\r\n");
  EXPECT_EQ(a.buffered_bytes(), 0u);

  // The shared table saw both dispatches; each connection counted one.
  EXPECT_EQ(table.commands_dispatched(), 2u);
  EXPECT_EQ(a.stats().commands, 1u);
  EXPECT_EQ(b.stats().commands, 1u);
}

TEST(RespConnectionTest, ByteAtATimeFeedReassemblesTheFrame) {
  CommandTable table;
  RegisterEcho(&table);
  RespConnection conn(&table);
  const std::string wire =
      EncodeCommand({"ECHO", "torn"}) + EncodeCommand({"PING"});
  std::string out;
  for (const char c : wire) {
    EXPECT_TRUE(conn.Feed(std::string_view(&c, 1), &out));
  }
  EXPECT_EQ(out, "$4\r\ntorn\r\n+PONG\r\n");
  EXPECT_EQ(conn.stats().commands, 2u);
}

TEST(RespConnectionTest, ProtocolErrorPoisonsOnlyThatConnection) {
  CommandTable table;
  RegisterEcho(&table);
  RespConnection poisoned(&table);
  RespConnection healthy(&table);

  std::string out;
  // A multibulk whose element is not a bulk string, with a valid request
  // pipelined behind it: the error reply is produced, the rest of the
  // buffer is discarded, and Feed reports the connection as dirty.
  EXPECT_FALSE(
      poisoned.Feed("*1\r\n:5\r\n" + EncodeCommand({"PING"}), &out));
  EXPECT_EQ(out.rfind("-ERR Protocol error", 0), 0u) << out;
  EXPECT_EQ(poisoned.buffered_bytes(), 0u);
  EXPECT_EQ(poisoned.stats().protocol_errors, 1u);

  // The other connection never notices.
  out.clear();
  EXPECT_TRUE(healthy.Feed(EncodeCommand({"PING"}), &out));
  EXPECT_EQ(out, "+PONG\r\n");
  EXPECT_EQ(healthy.stats().protocol_errors, 0u);

  // An embedding that keeps feeding (the sim does) starts clean again.
  out.clear();
  EXPECT_TRUE(poisoned.Feed(EncodeCommand({"PING"}), &out));
  EXPECT_EQ(out, "+PONG\r\n");
}

TEST(RespConnectionTest, PipelinedFeedAnswersInRequestOrder) {
  CommandTable table;
  RegisterEcho(&table);
  RespConnection conn(&table);
  std::string out;
  EXPECT_TRUE(conn.Feed(EncodeCommand({"ECHO", "1st"}) +
                            EncodeCommand({"PING"}) +
                            EncodeCommand({"ECHO", "3rd"}),
                        &out));
  EXPECT_EQ(out, "$3\r\n1st\r\n+PONG\r\n$3\r\n3rd\r\n");
}

TEST(RespConnectionTest, StatsCountBytesBothWays) {
  CommandTable table;
  RegisterEcho(&table);
  RespConnection conn(&table);
  const std::string wire = EncodeCommand({"PING"});
  std::string out;
  EXPECT_TRUE(conn.Feed(wire, &out));
  EXPECT_EQ(conn.stats().bytes_in, wire.size());
  EXPECT_EQ(conn.stats().bytes_out, out.size());
  EXPECT_EQ(conn.stats().error_replies, 0u);
}

}  // namespace
}  // namespace cuckoograph::redis_sim
