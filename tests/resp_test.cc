// Unit tests for the RESP2 codec: encode/parse round trips for every wire
// type, incremental (truncated-buffer) behaviour, malformed-input protocol
// errors, and the two client request forms (multibulk and inline).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "redis_sim/resp.h"

namespace cuckoograph::redis_sim {
namespace {

RespValue RoundTrip(const RespValue& value) {
  const std::string wire = Encode(value);
  const ParseResult parsed = ParseValue(wire);
  EXPECT_EQ(parsed.status, ParseStatus::kOk) << parsed.error;
  EXPECT_EQ(parsed.consumed, wire.size());
  return parsed.value;
}

TEST(RespCodecTest, SimpleStringRoundTrip) {
  const RespValue out = RoundTrip(RespValue::Simple("OK"));
  EXPECT_EQ(out.type, RespType::kSimpleString);
  EXPECT_EQ(out.text, "OK");
}

TEST(RespCodecTest, ErrorRoundTrip) {
  const RespValue out = RoundTrip(RespValue::Error("ERR boom"));
  EXPECT_TRUE(out.IsError());
  EXPECT_EQ(out.text, "ERR boom");
}

TEST(RespCodecTest, IntegerRoundTrip) {
  EXPECT_EQ(RoundTrip(RespValue::Integer(0)).integer, 0);
  EXPECT_EQ(RoundTrip(RespValue::Integer(42)).integer, 42);
  EXPECT_EQ(RoundTrip(RespValue::Integer(-7)).integer, -7);
  EXPECT_EQ(Encode(RespValue::Integer(42)), ":42\r\n");
}

TEST(RespCodecTest, BulkStringRoundTrip) {
  const RespValue out = RoundTrip(RespValue::Bulk("hello"));
  EXPECT_EQ(out.type, RespType::kBulkString);
  EXPECT_EQ(out.text, "hello");
  EXPECT_EQ(Encode(RespValue::Bulk("hello")), "$5\r\nhello\r\n");
}

TEST(RespCodecTest, EmptyAndBinaryBulkStrings) {
  EXPECT_EQ(RoundTrip(RespValue::Bulk("")).text, "");
  // Bulk payloads are length-prefixed, so CRLF and NUL bytes survive.
  const std::string binary("a\r\nb\0c", 6);
  const RespValue out = RoundTrip(RespValue::Bulk(binary));
  EXPECT_EQ(out.text, binary);
}

TEST(RespCodecTest, NullRoundTrip) {
  EXPECT_EQ(Encode(RespValue::Null()), "$-1\r\n");
  EXPECT_EQ(RoundTrip(RespValue::Null()).type, RespType::kNull);
}

TEST(RespCodecTest, NullArrayParsesToNull) {
  const ParseResult parsed = ParseValue("*-1\r\n");
  ASSERT_EQ(parsed.status, ParseStatus::kOk);
  EXPECT_EQ(parsed.value.type, RespType::kNull);
}

TEST(RespCodecTest, ArrayRoundTrip) {
  std::vector<RespValue> elements;
  elements.push_back(RespValue::Bulk("a"));
  elements.push_back(RespValue::Integer(2));
  elements.push_back(RespValue::Array({}));  // nested empty array
  const RespValue out = RoundTrip(RespValue::Array(std::move(elements)));
  ASSERT_EQ(out.type, RespType::kArray);
  ASSERT_EQ(out.elements.size(), 3u);
  EXPECT_EQ(out.elements[0].text, "a");
  EXPECT_EQ(out.elements[1].integer, 2);
  EXPECT_EQ(out.elements[2].type, RespType::kArray);
  EXPECT_TRUE(out.elements[2].elements.empty());
}

TEST(RespCodecTest, EmptyArrayEncoding) {
  EXPECT_EQ(Encode(RespValue::Array({})), "*0\r\n");
}

TEST(RespCodecTest, TruncatedInputsReportIncompleteNotError) {
  const std::string wire = "*2\r\n$5\r\nhello\r\n$5\r\nworld\r\n";
  for (size_t len = 0; len < wire.size(); ++len) {
    const ParseResult parsed = ParseValue(wire.substr(0, len));
    EXPECT_EQ(parsed.status, ParseStatus::kIncomplete) << "prefix " << len;
  }
  EXPECT_EQ(ParseValue(wire).status, ParseStatus::kOk);
}

TEST(RespCodecTest, UnknownTypeByteIsProtocolError) {
  const ParseResult parsed = ParseValue("&3\r\n");
  EXPECT_EQ(parsed.status, ParseStatus::kError);
  EXPECT_NE(parsed.error.find("unknown type byte"), std::string::npos);
}

TEST(RespCodecTest, NonNumericLengthsAreProtocolErrors) {
  EXPECT_EQ(ParseValue("$abc\r\n").status, ParseStatus::kError);
  EXPECT_EQ(ParseValue("*1x\r\n").status, ParseStatus::kError);
  EXPECT_EQ(ParseValue(":12.5\r\n").status, ParseStatus::kError);
  EXPECT_EQ(ParseValue(":\r\n").status, ParseStatus::kError);
}

TEST(RespCodecTest, NegativeAndOversizedLengthsAreProtocolErrors) {
  EXPECT_EQ(ParseValue("$-2\r\n").status, ParseStatus::kError);
  EXPECT_EQ(ParseValue("*-2\r\n").status, ParseStatus::kError);
  // One past the bulk cap; parsing must fail before allocating anything.
  EXPECT_EQ(ParseValue("$536870913\r\n").status, ParseStatus::kError);
  // The multibulk cap is request-side: ParseCommand rejects it...
  EXPECT_EQ(ParseCommand("*1048577\r\n").status, ParseStatus::kError);
  // ...while the reply path just keeps waiting for the elements.
  EXPECT_EQ(ParseValue("*1048577\r\n").status, ParseStatus::kIncomplete);
}

TEST(RespCodecTest, OverlongLengthHeadersFailCleanly) {
  // Magnitudes past long long must be rejected, not overflowed.
  EXPECT_EQ(ParseValue("$99999999999999999999\r\n").status,
            ParseStatus::kError);
  EXPECT_EQ(ParseValue(":99999999999999999999\r\n").status,
            ParseStatus::kError);
  EXPECT_EQ(ParseCommand("*99999999999999999999\r\n").status,
            ParseStatus::kError);
}

TEST(RespCodecTest, RepliesMayExceedTheRequestMultibulkCap) {
  // A CG.NEIGHBORS reply for a vertex with > kMaxMultibulkLen successors
  // is a legal reply; only client requests are capped.
  const long long len = kMaxMultibulkLen + 1;
  std::string wire = "*" + std::to_string(len) + "\r\n";
  wire.reserve(wire.size() + static_cast<size_t>(len) * 4);
  for (long long i = 0; i < len; ++i) wire += ":1\r\n";
  const ParseResult parsed = ParseValue(wire);
  ASSERT_EQ(parsed.status, ParseStatus::kOk) << parsed.error;
  EXPECT_EQ(parsed.value.elements.size(), static_cast<size_t>(len));
}

TEST(RespCodecTest, LineFramedEncodingSanitizesCrlf) {
  // CR/LF inside error or simple-string text would split the frame and
  // desync the stream; Encode maps them to spaces like Redis does.
  EXPECT_EQ(Encode(RespValue::Error("ERR bad\r\nname")),
            "-ERR bad  name\r\n");
  EXPECT_EQ(Encode(RespValue::Simple("a\nb")), "+a b\r\n");
}

TEST(RespCodecTest, BulkPayloadMustEndInCrlf) {
  const ParseResult parsed = ParseValue("$5\r\nhelloXY");
  EXPECT_EQ(parsed.status, ParseStatus::kError);
  EXPECT_NE(parsed.error.find("CRLF"), std::string::npos);
}

TEST(RespCodecTest, ParseStopsAtValueBoundary) {
  const ParseResult parsed = ParseValue(":1\r\n:2\r\n");
  ASSERT_EQ(parsed.status, ParseStatus::kOk);
  EXPECT_EQ(parsed.value.integer, 1);
  EXPECT_EQ(parsed.consumed, 4u);
}

TEST(RespCommandTest, MultibulkCommand) {
  const CommandParse parsed =
      ParseCommand("*3\r\n$9\r\nCG.INSERT\r\n$1\r\n1\r\n$1\r\n2\r\n");
  ASSERT_EQ(parsed.status, ParseStatus::kOk);
  EXPECT_EQ(parsed.argv,
            (std::vector<std::string>{"CG.INSERT", "1", "2"}));
}

TEST(RespCommandTest, InlineCommandCrlfAndBareLf) {
  for (const char* wire : {"CG.QUERY 1 2\r\n", "CG.QUERY 1 2\n"}) {
    const CommandParse parsed = ParseCommand(wire);
    ASSERT_EQ(parsed.status, ParseStatus::kOk) << wire;
    EXPECT_EQ(parsed.argv,
              (std::vector<std::string>{"CG.QUERY", "1", "2"}));
  }
}

TEST(RespCommandTest, InlineCommandCollapsesBlankSeparators) {
  const CommandParse parsed = ParseCommand("  CG.DEGREE \t 7  \r\n");
  ASSERT_EQ(parsed.status, ParseStatus::kOk);
  EXPECT_EQ(parsed.argv, (std::vector<std::string>{"CG.DEGREE", "7"}));
}

TEST(RespCommandTest, BlankInlineLineIsEmptyNoOp) {
  const CommandParse parsed = ParseCommand("\r\n");
  ASSERT_EQ(parsed.status, ParseStatus::kOk);
  EXPECT_TRUE(parsed.argv.empty());
  EXPECT_EQ(parsed.consumed, 2u);
}

TEST(RespCommandTest, EmptyMultibulkIsEmptyNoOp) {
  const CommandParse parsed = ParseCommand("*0\r\n");
  ASSERT_EQ(parsed.status, ParseStatus::kOk);
  EXPECT_TRUE(parsed.argv.empty());
}

TEST(RespCommandTest, IncompleteCommandWaitsForMoreBytes) {
  EXPECT_EQ(ParseCommand("").status, ParseStatus::kIncomplete);
  EXPECT_EQ(ParseCommand("CG.QUERY 1 2").status, ParseStatus::kIncomplete);
  EXPECT_EQ(ParseCommand("*2\r\n$3\r\nfoo\r\n").status,
            ParseStatus::kIncomplete);
}

TEST(RespCommandTest, MultibulkElementsMustBeBulkStrings) {
  const CommandParse parsed = ParseCommand("*1\r\n:5\r\n");
  EXPECT_EQ(parsed.status, ParseStatus::kError);
  EXPECT_NE(parsed.error.find("expected '$'"), std::string::npos);
}

TEST(RespCommandTest, NullMultibulkIsProtocolError) {
  EXPECT_EQ(ParseCommand("*-1\r\n").status, ParseStatus::kError);
}

TEST(RespCommandTest, EncodeCommandProducesMultibulk) {
  EXPECT_EQ(EncodeCommand({"CG.DEL", "10", "20"}),
            "*3\r\n$6\r\nCG.DEL\r\n$2\r\n10\r\n$2\r\n20\r\n");
}

}  // namespace
}  // namespace cuckoograph::redis_sim
