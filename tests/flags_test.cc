// Unit tests for the Flags argv parser used by every bench binary.
#include <gtest/gtest.h>

#include <vector>

#include "common/flags.h"

namespace cuckoograph {
namespace {

Flags MakeFlags(std::vector<const char*> args) {
  args.insert(args.begin(), "binary");
  return Flags(static_cast<int>(args.size()),
               const_cast<char**>(args.data()));
}

TEST(FlagsTest, ParsesEqualsSyntax) {
  const Flags flags = MakeFlags({"--scale=2.5", "--max_edges=400000",
                                 "--datasets=CAIDA"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 1.0), 2.5);
  EXPECT_EQ(flags.GetInt("max_edges", 0), 400000);
  EXPECT_EQ(flags.GetString("datasets", ""), "CAIDA");
}

TEST(FlagsTest, ParsesSpaceSeparatedValues) {
  const Flags flags = MakeFlags({"--scale", "0.25", "--checkpoints", "7"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 1.0), 0.25);
  EXPECT_EQ(flags.GetInt("checkpoints", 5), 7);
}

TEST(FlagsTest, MissingFlagsFallBackToDefaults) {
  const Flags flags = MakeFlags({"--other=1"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 1.5), 1.5);
  EXPECT_EQ(flags.GetInt("checkpoints", 5), 5);
  EXPECT_EQ(flags.GetString("datasets", "all"), "all");
  EXPECT_FALSE(flags.Has("scale"));
  EXPECT_TRUE(flags.Has("other"));
}

TEST(FlagsTest, UnparsableValuesFallBackToDefaults) {
  const Flags flags = MakeFlags({"--scale=abc", "--n=12x"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 3.0), 3.0);
  EXPECT_EQ(flags.GetInt("n", 42), 42);
}

TEST(FlagsTest, NegativeAndBareFlags) {
  const Flags flags = MakeFlags({"--delta", "-5", "--verbose"});
  EXPECT_EQ(flags.GetInt("delta", 0), -5);
  EXPECT_TRUE(flags.Has("verbose"));
  EXPECT_EQ(flags.GetInt("verbose", 9), 9);  // bare flag has no value
}

TEST(FlagsTest, LastOccurrenceWins) {
  const Flags flags = MakeFlags({"--scale=1", "--scale=2"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 0.0), 2.0);
}

}  // namespace
}  // namespace cuckoograph
