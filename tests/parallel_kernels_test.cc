// The parallel analytics engine's differential proof. Every parallel
// kernel variant is checked against its 1-thread sequential reference on
// deterministic graph families (path, star, two-component, Erdős–Rényi,
// preferential-attachment skew) across thread budgets {1, 2, 4, hardware}
// and every factory scheme:
//
//   - BFS depths, SSSP distances, CC labels, TC counts, LCC scores:
//     exact equality (the contracts are deterministic — level sets,
//     unique distance fixed points, disjoint integer writes);
//   - BFS parent trees: validity-checked, not compared (which predecessor
//     wins a level is scheduling-dependent);
//   - PageRank: <= 1e-9 per node (float association order moves).
//
// The snapshot side: the parallel CsrSnapshot builder must be
// byte-identical to the sequential one — offsets, neighbor order,
// accumulated weights, dense remap — and must still throw std::logic_error
// when the store's edge count drifts mid-build. The suite name is wired
// into the TSan CI regex, so every claim here is also raced.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "analytics/betweenness.h"
#include "analytics/bfs.h"
#include "analytics/connected_components.h"
#include "analytics/csr_snapshot.h"
#include "analytics/kernel.h"
#include "analytics/lcc.h"
#include "analytics/pagerank.h"
#include "analytics/sssp.h"
#include "analytics/triangle_count.h"
#include "baselines/hash_map_store.h"
#include "baselines/store_factory.h"
#include "common/rng.h"
#include "common/types.h"
#include "gtest/gtest.h"

namespace cuckoograph {
namespace {

using analytics::CsrSnapshot;
using analytics::DenseId;
using analytics::KernelOptions;
using analytics::KernelResult;
using analytics::kUnreached;

// ---- Graph families -------------------------------------------------------

struct GraphCase {
  std::string name;
  std::vector<Edge> stream;  // may contain duplicate arrivals
  std::vector<NodeId> sources;
};

// Ids are spread out (i * 7 + 3) so the dense remap is always exercised,
// and every stream repeats its first edge so weighted schemes carry a
// weight-2 edge through the differential runs.
std::vector<GraphCase> DifferentialCases() {
  const auto id = [](uint64_t i) { return static_cast<NodeId>(i * 7 + 3); };
  std::vector<GraphCase> cases;

  {
    GraphCase path{"path", {}, {id(0), id(40)}};
    for (uint64_t i = 0; i + 1 < 64; ++i) {
      path.stream.push_back(Edge{id(i), id(i + 1)});
    }
    cases.push_back(std::move(path));
  }
  {
    // Hub <-> 40 leaves: the dense hub frontier forces the BFS bottom-up
    // switch (scout count ~ 41 against 80 edges).
    GraphCase star{"star", {}, {id(0), id(7)}};
    for (uint64_t leaf = 1; leaf <= 40; ++leaf) {
      star.stream.push_back(Edge{id(0), id(leaf)});
      star.stream.push_back(Edge{id(leaf), id(0)});
    }
    cases.push_back(std::move(star));
  }
  {
    // A 20-ring and a disjoint bidirectional 8-clique: unreached vertices
    // stay kUnreached at every budget.
    GraphCase two{"two_components", {}, {id(0), id(100)}};
    for (uint64_t i = 0; i < 20; ++i) {
      two.stream.push_back(Edge{id(i), id((i + 1) % 20)});
    }
    for (uint64_t a = 100; a < 108; ++a) {
      for (uint64_t b = 100; b < 108; ++b) {
        if (a != b) two.stream.push_back(Edge{id(a), id(b)});
      }
    }
    cases.push_back(std::move(two));
  }
  {
    // Erdős–Rényi n=120, p≈0.03, deterministic seed; plus a handful of
    // duplicate arrivals so weighted schemes accumulate.
    GraphCase er{"erdos_renyi", {}, {id(1), id(60), id(119)}};
    SplitMix64 rng(0xE4D05u);
    for (uint64_t u = 0; u < 120; ++u) {
      for (uint64_t v = 0; v < 120; ++v) {
        if (u != v && rng.NextDouble() < 0.03) {
          er.stream.push_back(Edge{id(u), id(v)});
        }
      }
    }
    for (size_t i = 0; i < 10 && i < er.stream.size(); ++i) {
      er.stream.push_back(er.stream[i * 3 % er.stream.size()]);
    }
    cases.push_back(std::move(er));
  }
  {
    // Preferential-attachment skew: vertex i attaches to min of two
    // uniform draws below i, biasing edges toward early (high-degree)
    // vertices — the power-law-ish family.
    GraphCase pa{"power_law", {}, {id(0), id(3), id(149)}};
    SplitMix64 rng(0x9A11u);
    for (uint64_t i = 1; i < 150; ++i) {
      for (int k = 0; k < 2; ++k) {
        const uint64_t a = rng.NextBelow64(i);
        const uint64_t b = rng.NextBelow64(i);
        const uint64_t target = a < b ? a : b;
        pa.stream.push_back(Edge{id(i), id(target)});
        pa.stream.push_back(Edge{id(target), id(i)});
      }
    }
    cases.push_back(std::move(pa));
  }

  for (auto& c : cases) {
    c.stream.push_back(c.stream.front());  // duplicate arrival
    c.sources.push_back(424242);           // absent id, must be ignored
  }
  return cases;
}

// 1 (trivial parity), 2, 4, and whatever the host offers.
std::vector<size_t> ThreadBudgets() {
  std::vector<size_t> budgets{1, 2, 4};
  const size_t hw = std::thread::hardware_concurrency();
  if (hw > 0) budgets.push_back(hw);
  std::sort(budgets.begin(), budgets.end());
  budgets.erase(std::unique(budgets.begin(), budgets.end()), budgets.end());
  return budgets;
}

// A tiny grain so even the small families split into many chunks.
KernelOptions OptsFor(size_t threads) {
  KernelOptions opts;
  opts.num_threads = threads;
  opts.grain = 4;
  return opts;
}

void ExpectExact(const KernelResult& got, const KernelResult& want,
                 const std::string& what) {
  EXPECT_EQ(got.per_node, want.per_node) << what;
  EXPECT_EQ(got.aggregate, want.aggregate) << what;
}

// The BFS tree validity checker: parents are scheduling-dependent, but
// every tree the kernel may emit satisfies this.
void CheckBfsTree(const CsrSnapshot& graph, const KernelResult& bfs_result,
                  const std::vector<DenseId>& parents,
                  const std::vector<NodeId>& sources) {
  ASSERT_EQ(parents.size(), graph.num_nodes());
  std::set<DenseId> source_set;
  for (const NodeId s : sources) {
    const DenseId dense = graph.ToDense(s);
    if (dense != CsrSnapshot::kAbsent) source_set.insert(dense);
  }
  for (DenseId v = 0; v < graph.num_nodes(); ++v) {
    const double depth = bfs_result.per_node[v];
    if (depth == kUnreached) {
      EXPECT_EQ(parents[v], analytics::bfs::kNoParent) << v;
      continue;
    }
    if (depth == 0.0) {
      EXPECT_EQ(parents[v], v) << v;
      EXPECT_EQ(source_set.count(v), 1u) << v;
      continue;
    }
    const DenseId p = parents[v];
    ASSERT_NE(p, analytics::bfs::kNoParent) << v;
    ASSERT_LT(p, graph.num_nodes()) << v;
    EXPECT_TRUE(graph.HasEdge(p, v))
        << "parent edge " << p << "->" << v << " missing";
    EXPECT_EQ(bfs_result.per_node[p], depth - 1.0)
        << "parent depth of " << v;
  }
}

// ---- Kernel differential suite --------------------------------------------

class ParallelKernelsTest : public ::testing::TestWithParam<std::string> {
 protected:
  void Load(const GraphCase& c) {
    store_ = MakeStoreByName(GetParam());
    store_->InsertEdges(c.stream);
    CsrSnapshot::Options opts;
    opts.with_weights = true;
    snapshot_ = CsrSnapshot::FromStore(*store_, opts);
  }

  std::unique_ptr<GraphStore> store_;
  CsrSnapshot snapshot_;
};

TEST_P(ParallelKernelsTest, BfsDepthsMatchSequentialAtEveryBudget) {
  for (const GraphCase& c : DifferentialCases()) {
    SCOPED_TRACE(c.name);
    Load(c);
    const Span<const NodeId> sources(c.sources);
    std::vector<DenseId> seq_parents;
    const KernelResult seq =
        analytics::bfs::Run(snapshot_, sources, {}, &seq_parents);
    CheckBfsTree(snapshot_, seq, seq_parents, c.sources);
    for (const size_t threads : ThreadBudgets()) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      std::vector<DenseId> parents;
      const KernelResult par = analytics::bfs::Run(
          snapshot_, sources, OptsFor(threads), &parents);
      ExpectExact(par, seq, c.name);
      CheckBfsTree(snapshot_, par, parents, c.sources);
    }
  }
}

TEST_P(ParallelKernelsTest, SsspDistancesMatchDijkstraAtEveryBudget) {
  for (const GraphCase& c : DifferentialCases()) {
    SCOPED_TRACE(c.name);
    Load(c);
    const Span<const NodeId> sources(c.sources);
    const KernelResult seq = analytics::sssp::Run(snapshot_, sources);
    for (const size_t threads : ThreadBudgets()) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      KernelOptions opts = OptsFor(threads);
      ExpectExact(analytics::sssp::Run(snapshot_, sources, opts), seq,
                  c.name);
      // Any bucket width settles the same unique fixed point.
      for (const uint64_t delta : {1, 4, 16}) {
        ExpectExact(analytics::sssp::RunDeltaStepping(snapshot_, sources,
                                                      delta, opts),
                    seq, c.name + " delta=" + std::to_string(delta));
      }
    }
  }
}

TEST_P(ParallelKernelsTest, PageRankScoresStayWithinTolerance) {
  for (const GraphCase& c : DifferentialCases()) {
    SCOPED_TRACE(c.name);
    Load(c);
    const KernelResult seq =
        analytics::pagerank::RunIterations(snapshot_, 20);
    for (const size_t threads : ThreadBudgets()) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      const KernelResult par = analytics::pagerank::RunIterations(
          snapshot_, 20, 0.85, OptsFor(threads));
      EXPECT_EQ(par.aggregate, seq.aggregate);
      ASSERT_EQ(par.per_node.size(), seq.per_node.size());
      for (size_t v = 0; v < seq.per_node.size(); ++v) {
        EXPECT_NEAR(par.per_node[v], seq.per_node[v], 1e-9) << v;
      }
    }
  }
}

TEST_P(ParallelKernelsTest, LccAndTriangleCountsAreBitIdentical) {
  for (const GraphCase& c : DifferentialCases()) {
    SCOPED_TRACE(c.name);
    Load(c);
    const Span<const NodeId> sources(c.sources);
    const Span<const NodeId> sweep;
    const KernelResult lcc_seq = analytics::lcc::Run(snapshot_, sweep);
    const KernelResult lcc_src = analytics::lcc::Run(snapshot_, sources);
    const KernelResult tc_seq =
        analytics::triangle_count::Run(snapshot_, sweep);
    const KernelResult tc_src =
        analytics::triangle_count::Run(snapshot_, sources);
    for (const size_t threads : ThreadBudgets()) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      const KernelOptions opts = OptsFor(threads);
      ExpectExact(analytics::lcc::Run(snapshot_, sweep, opts), lcc_seq,
                  "lcc sweep");
      ExpectExact(analytics::lcc::Run(snapshot_, sources, opts), lcc_src,
                  "lcc sources");
      ExpectExact(analytics::triangle_count::Run(snapshot_, sweep, opts),
                  tc_seq, "tc sweep");
      ExpectExact(analytics::triangle_count::Run(snapshot_, sources, opts),
                  tc_src, "tc sources");
    }
  }
}

TEST_P(ParallelKernelsTest, SequentialOnlyKernelsIgnoreTheThreadBudget) {
  // CC (Tarjan) and BC (Brandes) contractually run sequentially at any
  // budget — their label/score definitions are visit-order-dependent — so
  // the options must not change a single bit.
  for (const GraphCase& c : DifferentialCases()) {
    SCOPED_TRACE(c.name);
    Load(c);
    const Span<const NodeId> sweep;
    const KernelResult cc_seq =
        analytics::connected_components::Run(snapshot_, sweep);
    const KernelResult bc_seq =
        analytics::betweenness::Run(snapshot_, sweep);
    for (const size_t threads : ThreadBudgets()) {
      const KernelOptions opts = OptsFor(threads);
      ExpectExact(analytics::connected_components::Run(snapshot_, sweep,
                                                       opts),
                  cc_seq, "cc");
      ExpectExact(analytics::betweenness::Run(snapshot_, sweep, opts),
                  bc_seq, "bc");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, ParallelKernelsTest,
    ::testing::ValuesIn(AllSchemeNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// ---- Snapshot-build equivalence -------------------------------------------

void ExpectSnapshotsIdentical(const CsrSnapshot& got,
                              const CsrSnapshot& want) {
  ASSERT_EQ(got.num_nodes(), want.num_nodes());
  ASSERT_EQ(got.num_edges(), want.num_edges());
  ASSERT_EQ(got.has_weights(), want.has_weights());
  for (DenseId u = 0; u < want.num_nodes(); ++u) {
    EXPECT_EQ(got.ToOriginal(u), want.ToOriginal(u)) << u;
    ASSERT_EQ(got.Degree(u), want.Degree(u)) << u;
    const Span<const DenseId> gn = got.Neighbors(u);
    const Span<const DenseId> wn = want.Neighbors(u);
    for (size_t i = 0; i < wn.size(); ++i) {
      EXPECT_EQ(gn[i], wn[i]) << u << " slot " << i;
    }
    if (want.has_weights()) {
      const Span<const uint64_t> gw = got.Weights(u);
      const Span<const uint64_t> ww = want.Weights(u);
      for (size_t i = 0; i < ww.size(); ++i) {
        EXPECT_EQ(gw[i], ww[i]) << u << " weight slot " << i;
      }
    }
  }
}

class ParallelKernelSnapshotTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ParallelKernelSnapshotTest, ParallelFromStoreIsByteIdentical) {
  for (const GraphCase& c : DifferentialCases()) {
    SCOPED_TRACE(c.name);
    const auto store = MakeStoreByName(GetParam());
    store->InsertEdges(c.stream);

    CsrSnapshot::Options seq_opts;
    seq_opts.with_weights = true;
    const CsrSnapshot seq = CsrSnapshot::FromStore(*store, seq_opts);

    // The induced overload gets the first half of the universe.
    std::vector<NodeId> subset(
        seq.originals().begin(),
        seq.originals().begin() + seq.num_nodes() / 2);
    const CsrSnapshot seq_induced =
        CsrSnapshot::FromStore(*store, Span<const NodeId>(subset), seq_opts);

    for (const size_t threads : {2u, 4u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      CsrSnapshot::Options par_opts = seq_opts;
      par_opts.num_threads = threads;
      par_opts.grain = 4;
      ExpectSnapshotsIdentical(CsrSnapshot::FromStore(*store, par_opts),
                               seq);
      ExpectSnapshotsIdentical(
          CsrSnapshot::FromStore(*store, Span<const NodeId>(subset),
                                 par_opts),
          seq_induced);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, ParallelKernelSnapshotTest,
    ::testing::ValuesIn(AllSchemeNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(ParallelKernelSnapshotTest, FromEdgesParallelMatchesSequential) {
  // Duplicates with explicit weights: accumulation must agree bit-for-bit
  // whichever lane order the parallel builder sums them in.
  std::vector<Edge> edges;
  std::vector<uint64_t> weights;
  SplitMix64 rng(0xF00Du);
  for (int i = 0; i < 600; ++i) {
    edges.push_back(Edge{rng.NextBelow(40), rng.NextBelow(40)});
    weights.push_back(1 + rng.NextBelow64(9));
  }
  const CsrSnapshot seq =
      CsrSnapshot::FromEdges(Span<const Edge>(edges),
                             Span<const uint64_t>(weights));
  for (const size_t threads : {2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    CsrSnapshot::Options opts;
    opts.num_threads = threads;
    opts.grain = 8;
    ExpectSnapshotsIdentical(
        CsrSnapshot::FromEdges(Span<const Edge>(edges),
                               Span<const uint64_t>(weights), opts),
        seq);
  }
}

// A thread-safe stand-in for an un-quiesced writer: the backing store
// never changes (so the parallel extraction races nothing), but
// NumEdges() reports one extra edge on every call after the first — the
// drift the builder's recheck exists to catch.
class EdgeCountDriftStub final : public GraphStore {
 public:
  std::string_view name() const override { return "edge-count-drift"; }
  bool InsertEdge(NodeId u, NodeId v) override {
    return backing_.InsertEdge(u, v);
  }
  bool QueryEdge(NodeId u, NodeId v) const override {
    return backing_.QueryEdge(u, v);
  }
  bool DeleteEdge(NodeId u, NodeId v) override {
    return backing_.DeleteEdge(u, v);
  }
  std::unique_ptr<NeighborCursor> Neighbors(NodeId u) const override {
    return backing_.Neighbors(u);
  }
  std::unique_ptr<NeighborCursor> Nodes() const override {
    return backing_.Nodes();
  }
  size_t NumEdges() const override {
    return backing_.NumEdges() +
           (calls_.fetch_add(1, std::memory_order_relaxed) > 0 ? 1 : 0);
  }
  size_t NumNodes() const override { return backing_.NumNodes(); }
  size_t MemoryBytes() const override { return backing_.MemoryBytes(); }

 private:
  baselines::HashMapStore backing_;
  mutable std::atomic<int> calls_{0};
};

TEST(ParallelKernelSnapshotTest, ParallelBuildStillDetectsMidBuildDrift) {
  for (const size_t threads : {1u, 2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    CsrSnapshot::Options opts;
    opts.num_threads = threads;
    {
      EdgeCountDriftStub store;
      store.InsertEdge(1, 2);
      store.InsertEdge(2, 3);
      EXPECT_THROW(CsrSnapshot::FromStore(store, opts), std::logic_error);
    }
    {
      EdgeCountDriftStub store;
      store.InsertEdge(1, 2);
      store.InsertEdge(2, 3);
      const std::vector<NodeId> nodes{1, 2, 3};
      EXPECT_THROW(
          CsrSnapshot::FromStore(store, Span<const NodeId>(nodes), opts),
          std::logic_error);
    }
  }
}

}  // namespace
}  // namespace cuckoograph
