// Unit tests for the module host (registration, dispatch, arity and
// error replies, pipelining, the stateful byte buffer) and the CG.*
// CuckooGraph command family, all driven through SimClient so every
// assertion covers a full serialize-parse-dispatch-reply round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "common/span.h"
#include "redis_sim/cuckoograph_module.h"
#include "redis_sim/module_host.h"
#include "redis_sim/resp.h"

namespace cuckoograph::redis_sim {
namespace {

class CuckooGraphModuleTest : public ::testing::Test {
 protected:
  CuckooGraphModuleTest() : client_(&server_) { module_.Register(&server_); }

  long long Int(const std::vector<std::string>& argv) {
    const RespValue reply = client_.Execute(argv);
    EXPECT_EQ(reply.type, RespType::kInteger) << reply.text;
    return reply.integer;
  }

  RedisServerSim server_;
  CuckooGraphModule module_;
  SimClient client_;
};

TEST_F(CuckooGraphModuleTest, InsertQueryDeleteRoundTrip) {
  EXPECT_EQ(Int({"CG.INSERT", "1", "2"}), 1);
  EXPECT_EQ(Int({"CG.INSERT", "1", "2"}), 0);  // duplicate
  EXPECT_EQ(Int({"CG.QUERY", "1", "2"}), 1);
  EXPECT_EQ(Int({"CG.QUERY", "2", "1"}), 0);  // directed
  EXPECT_EQ(Int({"CG.DEL", "1", "2"}), 1);
  EXPECT_EQ(Int({"CG.DEL", "1", "2"}), 0);  // already gone
  EXPECT_EQ(Int({"CG.QUERY", "1", "2"}), 0);
  EXPECT_EQ(module_.graph().NumEdges(), 0u);
}

TEST_F(CuckooGraphModuleTest, DeleteAliasMatchesDel) {
  EXPECT_EQ(Int({"CG.INSERT", "5", "6"}), 1);
  EXPECT_EQ(Int({"CG.DELETE", "5", "6"}), 1);
  EXPECT_EQ(Int({"CG.QUERY", "5", "6"}), 0);
}

TEST_F(CuckooGraphModuleTest, CommandNamesAreCaseInsensitive) {
  EXPECT_EQ(Int({"cg.insert", "1", "2"}), 1);
  EXPECT_EQ(Int({"Cg.QuErY", "1", "2"}), 1);
}

TEST_F(CuckooGraphModuleTest, DegreeAndNeighbors) {
  for (const char* v : {"10", "11", "12"}) {
    EXPECT_EQ(Int({"CG.INSERT", "7", v}), 1);
  }
  EXPECT_EQ(Int({"CG.DEGREE", "7"}), 3);
  EXPECT_EQ(Int({"CG.DEGREE", "999"}), 0);  // absent vertex

  const RespValue reply = client_.Execute({"CG.NEIGHBORS", "7"});
  ASSERT_EQ(reply.type, RespType::kArray);
  std::vector<std::string> neighbors;
  for (const RespValue& element : reply.elements) {
    ASSERT_EQ(element.type, RespType::kBulkString);
    neighbors.push_back(element.text);
  }
  std::sort(neighbors.begin(), neighbors.end());
  EXPECT_EQ(neighbors, (std::vector<std::string>{"10", "11", "12"}));
}

TEST_F(CuckooGraphModuleTest, NeighborsOfAbsentVertexIsEmptyArray) {
  const RespValue reply = client_.Execute({"CG.NEIGHBORS", "424242"});
  ASSERT_EQ(reply.type, RespType::kArray);
  EXPECT_TRUE(reply.elements.empty());
}

TEST_F(CuckooGraphModuleTest, WrongArityIsAnError) {
  for (const std::vector<std::string>& argv :
       {std::vector<std::string>{"CG.INSERT", "1"},
        std::vector<std::string>{"CG.INSERT", "1", "2", "3"},
        std::vector<std::string>{"CG.QUERY"},
        std::vector<std::string>{"CG.DEGREE", "1", "2"}}) {
    const RespValue reply = client_.Execute(argv);
    EXPECT_TRUE(reply.IsError()) << argv[0];
    EXPECT_NE(reply.text.find("wrong number of arguments"),
              std::string::npos);
  }
  // Arity failures never reach the graph.
  EXPECT_EQ(module_.graph().NumEdges(), 0u);
}

TEST_F(CuckooGraphModuleTest, NonIntegerNodeIdsAreErrors) {
  for (const char* bad : {"abc", "1.5", "-1", "4294967296", "", "1x"}) {
    const RespValue reply = client_.Execute({"CG.INSERT", bad, "2"});
    EXPECT_TRUE(reply.IsError()) << bad;
    EXPECT_EQ(reply.text, "ERR value is not an integer or out of range");
  }
  EXPECT_EQ(module_.graph().NumEdges(), 0u);
}

TEST_F(CuckooGraphModuleTest, FullNodeIdRangeIsAccepted) {
  EXPECT_EQ(Int({"CG.INSERT", "0", "4294967295"}), 1);
  EXPECT_EQ(Int({"CG.QUERY", "0", "4294967295"}), 1);
}

TEST_F(CuckooGraphModuleTest, UnknownCommandIsAnError) {
  const RespValue reply = client_.Execute({"CG.NOPE", "1", "2"});
  ASSERT_TRUE(reply.IsError());
  EXPECT_NE(reply.text.find("unknown command 'CG.NOPE'"),
            std::string::npos);
}

TEST_F(CuckooGraphModuleTest, CrlfInCommandNameCannotDesyncTheStream) {
  // A bulk-string command name may legally contain CRLF; the echoed
  // error reply must not split the frame and poison later replies.
  const RespValue reply = client_.Execute({"bad\r\nname", "1"});
  ASSERT_TRUE(reply.IsError());
  EXPECT_EQ(reply.text.find('\r'), std::string::npos);
  EXPECT_EQ(reply.text.find('\n'), std::string::npos);
  EXPECT_EQ(Int({"CG.INSERT", "1", "2"}), 1);  // stream still in sync
}

TEST_F(CuckooGraphModuleTest, InlineCommandsDispatchToo) {
  EXPECT_EQ(client_.ExecuteInline("CG.INSERT 3 4").integer, 1);
  EXPECT_EQ(client_.ExecuteInline("CG.QUERY 3 4").integer, 1);
}

TEST_F(CuckooGraphModuleTest, ServerStatsCountTraffic) {
  Int({"CG.INSERT", "1", "2"});
  client_.Execute({"CG.NOPE"});
  const RedisServerSim::Stats& stats = server_.stats();
  EXPECT_EQ(stats.commands_dispatched, 1u);  // CG.NOPE never dispatched
  EXPECT_EQ(stats.error_replies, 1u);
  EXPECT_GT(stats.bytes_in, 0u);
  EXPECT_GT(stats.bytes_out, 0u);
}

TEST(RedisServerSimTest, RegistrationRejectsDuplicatesCaseInsensitively) {
  RedisServerSim server;
  const auto handler = [](Span<const std::string_view>) {
    return RespValue::Simple("OK");
  };
  EXPECT_TRUE(server.RegisterCommand("PING", -1, handler));
  EXPECT_FALSE(server.RegisterCommand("ping", -1, handler));
  EXPECT_EQ(server.CommandNames(), std::vector<std::string>{"PING"});
}

TEST(RedisServerSimTest, NegativeArityMeansAtLeast) {
  RedisServerSim server;
  server.RegisterCommand("VARARG", -2,
                         [](Span<const std::string_view> argv) {
                           return RespValue::Integer(
                               static_cast<long long>(argv.size()));
                         });
  SimClient client(&server);
  EXPECT_TRUE(client.Execute({"VARARG"}).IsError());
  EXPECT_EQ(client.Execute({"VARARG", "a"}).integer, 2);
  EXPECT_EQ(client.Execute({"VARARG", "a", "b", "c"}).integer, 4);
}

TEST(RedisServerSimTest, PipelinedCommandsYieldBackToBackReplies) {
  RedisServerSim server;
  CuckooGraphModule module;
  module.Register(&server);
  const std::string replies = server.Feed(
      EncodeCommand({"CG.INSERT", "1", "2"}) +
      EncodeCommand({"CG.QUERY", "1", "2"}) +
      EncodeCommand({"CG.QUERY", "8", "9"}));
  EXPECT_EQ(replies, ":1\r\n:1\r\n:0\r\n");
}

TEST(RedisServerSimTest, SplitFeedBuffersUntilCommandCompletes) {
  RedisServerSim server;
  CuckooGraphModule module;
  module.Register(&server);
  const std::string wire = EncodeCommand({"CG.INSERT", "1", "2"});
  const std::string first = server.Feed(wire.substr(0, 9));
  EXPECT_TRUE(first.empty());  // mid-command: no reply yet
  const std::string second = server.Feed(wire.substr(9));
  EXPECT_EQ(second, ":1\r\n");
}

TEST(RedisServerSimTest, ProtocolErrorRepliesAndDropsTheStream) {
  RedisServerSim server;
  CuckooGraphModule module;
  module.Register(&server);
  const std::string replies =
      server.Feed("*1\r\n:5\r\n" + EncodeCommand({"CG.INSERT", "1", "2"}));
  EXPECT_EQ(replies.rfind("-ERR Protocol error", 0), 0u) << replies;
  // Everything behind the poisoned request was discarded.
  EXPECT_EQ(module.graph().NumEdges(), 0u);
  // The connection recovers for fresh requests.
  EXPECT_EQ(server.Feed(EncodeCommand({"CG.INSERT", "1", "2"})), ":1\r\n");
}

}  // namespace
}  // namespace cuckoograph::redis_sim
