// The positive probe: every annotated wrapper in common/mutex.h used
// the way the codebase uses them. This must compile cleanly under
// -Wthread-safety -Werror, proving the negative probe's rejection
// (unlocked_read_rejected.cc) comes from the analysis seeing the
// annotations, not from the harness being broken.
#include <cstddef>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

struct Counter {
  cuckoograph::Mutex mu;
  int value CUCKOOGRAPH_GUARDED_BY(mu) = 0;
};

struct Table {
  mutable cuckoograph::SharedMutex mu;
  std::size_t entries CUCKOOGRAPH_GUARDED_BY(mu) = 0;
};

// The REQUIRES discipline used by ShardedCuckooGraph's batch helpers:
// the caller owns the lock, the callee's contract is checked statically.
std::size_t EntriesLocked(const Table& table)
    CUCKOOGRAPH_REQUIRES_SHARED(table.mu) {
  return table.entries;
}

void AddEntriesLocked(Table& table, std::size_t n)
    CUCKOOGRAPH_REQUIRES(table.mu) {
  table.entries += n;
}

}  // namespace

int main() {
  Counter counter;
  {
    cuckoograph::MutexLock lock(&counter.mu);
    ++counter.value;
  }

  Table table;
  {
    cuckoograph::WriterMutexLock lock(&table.mu);
    AddEntriesLocked(table, 2);
  }
  std::size_t seen = 0;
  {
    cuckoograph::ReaderMutexLock lock(&table.mu);
    seen = EntriesLocked(table);
  }

  {
    cuckoograph::MutexLock relock(&counter.mu);
    return counter.value + static_cast<int>(seen) - 3;  // exits 0
  }
}
