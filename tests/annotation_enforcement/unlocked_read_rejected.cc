// The negative probe: reads a CUCKOOGRAPH_GUARDED_BY field without
// holding its lock. Under -Wthread-safety -Werror this must NOT
// compile — the enclosing CMake project fails the ctest if it does.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

struct Counter {
  cuckoograph::Mutex mu;
  int value CUCKOOGRAPH_GUARDED_BY(mu) = 0;
};

}  // namespace

int main() {
  Counter counter;
  return counter.value;  // seeded lock misuse: no MutexLock held
}
