// Unit tests for the common/ primitives: hashing, RNG, timing, types.
#include <gtest/gtest.h>

#include <set>

#include "common/bob_hash.h"
#include "common/rng.h"
#include "common/timer.h"
#include "common/types.h"

namespace cuckoograph {
namespace {

TEST(BobHashTest, DeterministicForSameSeed) {
  BobHash a(7);
  BobHash b(7);
  for (uint64_t key = 0; key < 1000; ++key) {
    EXPECT_EQ(a(key), b(key));
  }
}

TEST(BobHashTest, SeedsProduceDifferentFunctions) {
  BobHash a(1);
  BobHash b(2);
  int differing = 0;
  for (uint64_t key = 0; key < 1000; ++key) {
    if (a(key) != b(key)) ++differing;
  }
  EXPECT_GT(differing, 990);
}

TEST(BobHashTest, SpreadsSequentialKeys) {
  BobHash hash(3);
  std::set<uint32_t> buckets;
  for (uint64_t key = 0; key < 1024; ++key) {
    buckets.insert(hash(key) % 256);
  }
  // 1024 draws over 256 buckets leave ~5 empty in expectation; far fewer
  // distinct buckets would mean the mixer clusters sequential keys.
  EXPECT_GT(buckets.size(), 230u);
}

TEST(SplitMix64Test, DeterministicForSameSeed) {
  SplitMix64 a(11);
  SplitMix64 b(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(SplitMix64Test, NextBelowStaysInRange) {
  SplitMix64 rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
}

TEST(SplitMix64Test, NextDoubleInUnitInterval) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(TimerTest, ElapsedIsNonNegativeAndResets) {
  WallTimer timer;
  const double first = timer.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  timer.Reset();
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
}

TEST(TimerTest, MopsHandlesZeroInterval) {
  EXPECT_EQ(Mops(1000, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Mops(2'000'000, 1.0), 2.0);
}

TEST(TypesTest, EdgeEqualityAndKey) {
  const Edge a{1, 2};
  const Edge b{1, 2};
  const Edge c{2, 1};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(EdgeKey(a), EdgeKey(c));
  EXPECT_EQ(EdgeKey(Edge{0xffffffffu, 0}), 0xffffffff00000000ULL);
}

}  // namespace
}  // namespace cuckoograph
