// The vector bucket probes (simd_probe.h): the backend-selected masks
// must agree bit-for-bit with the scalar reference across widths, needle
// positions, and padding contents, and the fingerprint function must
// never produce the empty-cell sentinel.
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/internal/cuckoo_table.h"
#include "core/internal/simd_probe.h"
#include "gtest/gtest.h"

namespace cuckoograph::internal {
namespace {

TEST(SimdProbeTest, BackendNameIsKnown) {
  const std::string backend = ProbeBackendName();
  EXPECT_TRUE(backend == "sse2" || backend == "neon" || backend == "scalar")
      << backend;
}

TEST(SimdProbeTest, ByteMaskMatchesScalarOnRandomBuffers) {
  SplitMix64 rng(42);
  // Probed range plus the overread slack the SIMD path may touch.
  std::vector<uint8_t> bytes(kMaxProbeWidth + kBytePadding);
  for (int round = 0; round < 200; ++round) {
    for (uint8_t& b : bytes) {
      b = static_cast<uint8_t>(rng.NextBelow(8));  // dense collisions
    }
    const uint8_t needle = static_cast<uint8_t>(rng.NextBelow(8));
    for (size_t count = 1; count <= kMaxProbeWidth; ++count) {
      ASSERT_EQ(MatchByteMask(bytes.data(), count, needle),
                MatchByteMaskScalar(bytes.data(), count, needle))
          << "count=" << count << " needle=" << int(needle);
    }
  }
}

TEST(SimdProbeTest, ByteMaskIgnoresBytesPastCount) {
  std::vector<uint8_t> bytes(kMaxProbeWidth + kBytePadding, 0xAB);
  // Everything matches, but only the first `count` bits may be set.
  for (size_t count = 1; count <= kMaxProbeWidth; ++count) {
    EXPECT_EQ(MatchByteMask(bytes.data(), count, 0xAB), LowBits(count));
  }
}

TEST(SimdProbeTest, ByteMaskFindsEmptySentinel) {
  std::vector<uint8_t> bytes(8 + kBytePadding, 0x5C);
  bytes[3] = 0;
  bytes[6] = 0;
  EXPECT_EQ(MatchByteMask(bytes.data(), 8, 0),
            (uint64_t{1} << 3) | (uint64_t{1} << 6));
}

TEST(SimdProbeTest, KeyMaskMatchesScalarOnRandomLanes) {
  SplitMix64 rng(43);
  NodeId keys[kKeyLanes];
  for (int round = 0; round < 500; ++round) {
    for (NodeId& k : keys) k = rng.NextBelow(6);  // dense collisions
    const NodeId needle = rng.NextBelow(6);
    for (size_t count = 0; count <= kKeyLanes; ++count) {
      ASSERT_EQ(MatchKeyMask(keys, count, needle),
                MatchKeyMaskScalar(keys, count, needle))
          << "count=" << count << " needle=" << needle;
    }
  }
}

TEST(SimdProbeTest, KeyMaskHandlesExtremeIds) {
  NodeId keys[kKeyLanes] = {0, ~NodeId{0}, 5, ~NodeId{0}, 0, 1, 2, 3};
  EXPECT_EQ(MatchKeyMask(keys, kKeyLanes, 0), 0b00010001u);
  EXPECT_EQ(MatchKeyMask(keys, kKeyLanes, ~NodeId{0}), 0b00001010u);
  EXPECT_EQ(MatchKeyMask(keys, 3, ~NodeId{0}), 0b00000010u);
}

TEST(SimdProbeTest, FingerprintIsNeverTheEmptySentinel) {
  SplitMix64 rng(44);
  for (int i = 0; i < 100'000; ++i) {
    ASSERT_NE(KeyFingerprint(static_cast<NodeId>(rng.Next())), 0);
  }
  EXPECT_NE(KeyFingerprint(0), 0);
  EXPECT_NE(KeyFingerprint(~NodeId{0}), 0);
}

TEST(SimdProbeTest, FingerprintIsDeterministicPerKey) {
  for (NodeId key = 0; key < 1'000; ++key) {
    EXPECT_EQ(KeyFingerprint(key), KeyFingerprint(key));
  }
}

}  // namespace
}  // namespace cuckoograph::internal
