// Runtime semantics of the capability-annotated lock wrappers
// (common/mutex.h). The *static* half of the contract — that clang
// rejects code which touches guarded data without these locks — is
// proven by the annotation_enforcement_test negative-compile project;
// here we pin down that the wrappers actually delegate to the
// underlying std primitives: exclusion, shared admission, try-lock
// semantics, and RAII release.
#include "common/mutex.h"

#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "gtest/gtest.h"

namespace cuckoograph {
namespace {

TEST(MutexTest, MutexLockExcludesConcurrentIncrements) {
  struct State {
    Mutex mu;
    int counter CUCKOOGRAPH_GUARDED_BY(mu) = 0;
  } state;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&state] {
      for (int i = 0; i < kPerThread; ++i) {
        MutexLock lock(&state.mu);
        ++state.counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  MutexLock lock(&state.mu);
  EXPECT_EQ(state.counter, kThreads * kPerThread);
}

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  const bool uncontended = mu.TryLock();
  EXPECT_TRUE(uncontended);
  if (uncontended) mu.Unlock();

  mu.Lock();
  bool acquired = true;
  std::thread contender([&mu, &acquired] {
    const bool ok = mu.TryLock();
    acquired = ok;
    if (ok) mu.Unlock();
  });
  contender.join();
  EXPECT_FALSE(acquired);  // held here, so the other thread must fail
  mu.Unlock();
}

TEST(SharedMutexTest, ReadersShareWritersExclude) {
  SharedMutex mu;
  mu.ReaderLock();

  bool reader_admitted = false;
  bool writer_admitted = true;
  std::thread contender([&] {
    const bool reader_ok = mu.ReaderTryLock();
    reader_admitted = reader_ok;
    if (reader_ok) mu.ReaderUnlock();
    const bool writer_ok = mu.TryLock();
    writer_admitted = writer_ok;
    if (writer_ok) mu.Unlock();
  });
  contender.join();

  EXPECT_TRUE(reader_admitted);   // shared + shared coexist
  EXPECT_FALSE(writer_admitted);  // shared blocks exclusive
  mu.ReaderUnlock();

  const bool exclusive = mu.TryLock();  // fully released: must admit
  EXPECT_TRUE(exclusive);
  if (exclusive) mu.Unlock();
}

TEST(SharedMutexTest, ScopedLockersReleaseOnScopeExit) {
  struct State {
    mutable SharedMutex mu;
    int value CUCKOOGRAPH_GUARDED_BY(mu) = 0;
  } state;
  {
    WriterMutexLock lock(&state.mu);
    state.value = 41;
  }
  {
    ReaderMutexLock lock(&state.mu);
    EXPECT_EQ(state.value, 41);
  }
  // Both scopes released their hold, so an exclusive acquire succeeds.
  const bool relocked = state.mu.TryLock();
  ASSERT_TRUE(relocked);
  if (relocked) {
    ++state.value;
    EXPECT_EQ(state.value, 42);
    state.mu.Unlock();
  }
}

TEST(MutexTest, AssertHeldIsStaticOnly) {
  // AssertHeld is a statement to the analysis, not a runtime check — it
  // must be callable (and a no-op) wherever the lock is genuinely held.
  Mutex mu;
  MutexLock lock(&mu);
  mu.AssertHeld();

  SharedMutex shared;
  ReaderMutexLock reader(&shared);
  shared.AssertReaderHeld();
}

}  // namespace
}  // namespace cuckoograph
