// CsrSnapshot layer + analytics/common helpers: dense remapping, induced
// extraction, top-degree selection edge cases (ties, oversized k, empty
// store), and the store -> snapshot -> edge-list round-trip for every
// factory scheme.
#include <algorithm>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "analytics/common.h"
#include "analytics/csr_snapshot.h"
#include "baselines/hash_map_store.h"
#include "baselines/store_factory.h"
#include "common/rng.h"
#include "common/types.h"
#include "core/weighted_cuckoo_graph.h"
#include "gtest/gtest.h"

namespace cuckoograph {
namespace {

using analytics::CsrSnapshot;
using analytics::DenseId;

std::vector<Edge> SortedDistinct(std::vector<Edge> edges) {
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

TEST(CsrSnapshotTest, EmptyStoreYieldsEmptySnapshot) {
  const auto store = MakeStoreByName("CuckooGraph");
  const CsrSnapshot snapshot = CsrSnapshot::FromStore(*store);
  EXPECT_EQ(snapshot.num_nodes(), 0u);
  EXPECT_EQ(snapshot.num_edges(), 0u);
  EXPECT_FALSE(snapshot.has_weights());
  EXPECT_EQ(snapshot.ToDense(7), CsrSnapshot::kAbsent);
  EXPECT_TRUE(snapshot.ExtractEdges().empty());
  EXPECT_TRUE(analytics::TopDegreeNodes(snapshot, 10).empty());
}

TEST(CsrSnapshotTest, DenseRemapIsAscendingAndCoversSinks) {
  // Non-contiguous ids; 900 is a pure sink and must still get a dense id.
  const std::vector<Edge> edges{{50, 900}, {7, 50}, {7, 900}};
  const auto store = MakeStoreByName("CuckooGraph");
  store->InsertEdges(edges);
  const CsrSnapshot snapshot = CsrSnapshot::FromStore(*store);

  ASSERT_EQ(snapshot.num_nodes(), 3u);
  EXPECT_EQ(snapshot.ToOriginal(0), 7u);
  EXPECT_EQ(snapshot.ToOriginal(1), 50u);
  EXPECT_EQ(snapshot.ToOriginal(2), 900u);
  EXPECT_EQ(snapshot.ToDense(900), 2u);
  EXPECT_EQ(snapshot.ToDense(8), CsrSnapshot::kAbsent);

  EXPECT_EQ(snapshot.Degree(snapshot.ToDense(7)), 2u);
  EXPECT_EQ(snapshot.Degree(snapshot.ToDense(900)), 0u);
  EXPECT_TRUE(snapshot.HasEdge(snapshot.ToDense(50), snapshot.ToDense(900)));
  EXPECT_FALSE(snapshot.HasEdge(snapshot.ToDense(900), snapshot.ToDense(50)));
  EXPECT_GT(snapshot.MemoryBytes(), 0u);

  // Neighbor segments come out ascending in dense id.
  const auto neighbors = snapshot.Neighbors(snapshot.ToDense(7));
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_LT(neighbors[0], neighbors[1]);
}

TEST(CsrSnapshotTest, FromEdgesCollapsesDuplicatesAndSumsWeights) {
  const std::vector<Edge> edges{{1, 2}, {1, 2}, {2, 3}};
  const std::vector<uint64_t> weights{4, 5, 7};
  const CsrSnapshot snapshot = CsrSnapshot::FromEdges(edges, weights);
  ASSERT_TRUE(snapshot.has_weights());
  EXPECT_EQ(snapshot.num_edges(), 2u);
  const DenseId one = snapshot.ToDense(1);
  ASSERT_EQ(snapshot.Degree(one), 1u);
  EXPECT_EQ(snapshot.Weights(one)[0], 9u);  // 4 + 5 accumulated

  // Without a weights span duplicates simply collapse.
  const CsrSnapshot unweighted = CsrSnapshot::FromEdges(edges);
  EXPECT_FALSE(unweighted.has_weights());
  EXPECT_EQ(unweighted.num_edges(), 2u);

  // A non-empty weights span must be parallel to the edges.
  const std::vector<uint64_t> short_weights{4};
  EXPECT_THROW(CsrSnapshot::FromEdges(edges, short_weights),
               std::invalid_argument);
}

TEST(CsrSnapshotTest, WeightedStorePopulatesWeights) {
  WeightedCuckooGraph store;
  store.AddEdge(1, 2);
  store.AddEdge(1, 2);
  store.AddEdge(1, 3);
  CsrSnapshot::Options opts;
  opts.with_weights = true;
  const CsrSnapshot snapshot = CsrSnapshot::FromStore(store, opts);
  ASSERT_TRUE(snapshot.has_weights());
  const DenseId one = snapshot.ToDense(1);
  const auto neighbors = snapshot.Neighbors(one);
  const auto weights = snapshot.Weights(one);
  ASSERT_EQ(neighbors.size(), 2u);
  for (size_t i = 0; i < neighbors.size(); ++i) {
    const uint64_t expected = snapshot.ToOriginal(neighbors[i]) == 2 ? 2 : 1;
    EXPECT_EQ(weights[i], expected);
  }
}

TEST(CsrSnapshotTest, InducedVariantKeepsListedNodesOnly) {
  const auto store = MakeStoreByName("CuckooGraph");
  store->InsertEdges(std::vector<Edge>{{1, 2}, {2, 3}, {3, 1}, {1, 4}});
  // 9 is absent from the store but listed: a degree-0 member. 4 is stored
  // but unlisted: excluded along with edge <1, 4>. Duplicate listing of 2
  // must not double it.
  const std::vector<NodeId> nodes{1, 2, 3, 9, 2};
  const CsrSnapshot snapshot =
      CsrSnapshot::FromStore(*store, Span<const NodeId>(nodes));
  EXPECT_EQ(snapshot.num_nodes(), 4u);  // 1, 2, 3, 9
  EXPECT_EQ(snapshot.num_edges(), 3u);
  EXPECT_EQ(snapshot.ToDense(4), CsrSnapshot::kAbsent);
  EXPECT_EQ(snapshot.Degree(snapshot.ToDense(9)), 0u);
  const std::vector<Edge> expected{{1, 2}, {2, 3}, {3, 1}};
  EXPECT_EQ(SortedDistinct(snapshot.ExtractEdges()), SortedDistinct(expected));
}

// A store that violates the quiesced-snapshot contract: every walk
// through the selected cursor method slips one more edge into the
// backing store first, the way an un-quiesced concurrent writer would
// land one between the builder's edge-count read and its cursor drain.
// The full-store builder walks Nodes(), the induced builder walks
// Neighbors() per listed node — `mutate_on` picks the injection point.
class MutatingStoreStub final : public GraphStore {
 public:
  enum class MutateOn { kNodes, kNeighbors };

  explicit MutatingStoreStub(MutateOn mutate_on) : mutate_on_(mutate_on) {}

  std::string_view name() const override { return "mutating-stub"; }
  bool InsertEdge(NodeId u, NodeId v) override {
    return backing_.InsertEdge(u, v);
  }
  bool QueryEdge(NodeId u, NodeId v) const override {
    return backing_.QueryEdge(u, v);
  }
  bool DeleteEdge(NodeId u, NodeId v) override {
    return backing_.DeleteEdge(u, v);
  }
  std::unique_ptr<NeighborCursor> Neighbors(NodeId u) const override {
    if (mutate_on_ == MutateOn::kNeighbors) SlipOneEdgeIn();
    return backing_.Neighbors(u);
  }
  std::unique_ptr<NeighborCursor> Nodes() const override {
    if (mutate_on_ == MutateOn::kNodes) SlipOneEdgeIn();
    return backing_.Nodes();
  }
  size_t NumEdges() const override { return backing_.NumEdges(); }
  size_t NumNodes() const override { return backing_.NumNodes(); }
  size_t MemoryBytes() const override { return backing_.MemoryBytes(); }

 private:
  void SlipOneEdgeIn() const {
    auto* self = const_cast<MutatingStoreStub*>(this);
    self->backing_.InsertEdge(self->next_source_++, 7);
  }

  MutateOn mutate_on_;
  baselines::HashMapStore backing_;
  NodeId next_source_ = 100;
};

TEST(CsrSnapshotTest, FromStoreThrowsWhenStoreMutatesMidBuild) {
  MutatingStoreStub store(MutatingStoreStub::MutateOn::kNodes);
  store.InsertEdge(1, 2);
  EXPECT_THROW(CsrSnapshot::FromStore(store), std::logic_error);
}

TEST(CsrSnapshotTest, InducedFromStoreThrowsWhenStoreMutatesMidBuild) {
  MutatingStoreStub store(MutatingStoreStub::MutateOn::kNeighbors);
  store.InsertEdge(1, 2);
  const std::vector<NodeId> nodes{1, 2};
  EXPECT_THROW(CsrSnapshot::FromStore(store, nodes), std::logic_error);
}

TEST(AnalyticsCommonTest, TopDegreeNodesBreaksTiesByAscendingId) {
  // Degrees: 5 -> 3, 9 -> 2, 2 -> 2, 7 -> 1; the tie between 9 and 2
  // resolves to the smaller id first.
  const std::vector<Edge> edges{{5, 1}, {5, 2}, {5, 3}, {9, 1},
                                {9, 2}, {2, 1}, {2, 3}, {7, 1}};
  const CsrSnapshot snapshot = CsrSnapshot::FromEdges(edges);
  const std::vector<NodeId> expected{5, 2, 9};
  EXPECT_EQ(analytics::TopDegreeNodes(snapshot, 3), expected);
}

TEST(AnalyticsCommonTest, TopDegreeNodesClampsOversizedK) {
  const std::vector<Edge> edges{{1, 2}, {2, 1}};
  const CsrSnapshot snapshot = CsrSnapshot::FromEdges(edges);
  const std::vector<NodeId> all = analytics::TopDegreeNodes(snapshot, 100);
  EXPECT_EQ(all.size(), 2u);
  EXPECT_TRUE(analytics::TopDegreeNodes(snapshot, 0).empty());
}

TEST(AnalyticsCommonTest, InducedSubgraphFiltersBothEndpoints) {
  const std::vector<Edge> edges{{1, 2}, {2, 3}, {3, 4}, {4, 1}, {2, 1}};
  const CsrSnapshot snapshot = CsrSnapshot::FromEdges(edges);
  const std::vector<Edge> induced =
      analytics::InducedSubgraph(snapshot, {1, 2, 99});
  const std::vector<Edge> expected{{1, 2}, {2, 1}};
  EXPECT_EQ(SortedDistinct(induced), SortedDistinct(expected));
  EXPECT_TRUE(analytics::InducedSubgraph(snapshot, {}).empty());
}

// ---- Round-trip over every factory scheme --------------------------------

class SnapshotRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SnapshotRoundTripTest, CsrRebuiltFromStoreEqualsInsertedEdges) {
  SplitMix64 rng(77);
  std::vector<Edge> stream;
  for (int i = 0; i < 8'000; ++i) {
    stream.push_back(Edge{rng.NextBelow(64), rng.NextBelow(500)});
  }
  const auto store = MakeStoreByName(GetParam());
  store->InsertEdges(stream);

  const CsrSnapshot snapshot = CsrSnapshot::FromStore(*store);
  EXPECT_EQ(snapshot.num_edges(), store->NumEdges());
  EXPECT_EQ(SortedDistinct(snapshot.ExtractEdges()), SortedDistinct(stream));

  // HasEdge agrees with the store on hits and misses.
  for (int i = 0; i < 500; ++i) {
    const Edge probe{rng.NextBelow(64), rng.NextBelow(500)};
    const DenseId u = snapshot.ToDense(probe.u);
    const DenseId v = snapshot.ToDense(probe.v);
    const bool in_snapshot = u != CsrSnapshot::kAbsent &&
                             v != CsrSnapshot::kAbsent &&
                             snapshot.HasEdge(u, v);
    EXPECT_EQ(in_snapshot, store->QueryEdge(probe.u, probe.v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SnapshotRoundTripTest,
    ::testing::ValuesIn(AllSchemeNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace cuckoograph
