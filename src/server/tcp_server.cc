#include "server/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "common/errno_string.h"

namespace cuckoograph::server {
namespace {

constexpr int kMaxEpollEvents = 64;
constexpr size_t kReadChunk = 16 * 1024;
// Pending reply buffers gathered into one sendmsg call. Well under
// IOV_MAX (1024 on Linux); deeper queues just take another iteration of
// the flush loop.
constexpr size_t kMaxFlushIovecs = 64;

std::string Errno(const char* what) {
  return std::string(what) + ": " + ErrnoString(errno);
}

}  // namespace

TcpRespServer::TcpRespServer(const ServerConfig& config,
                             const redis_sim::CommandTable* table)
    : config_(config), table_(table) {
  if (config_.num_workers < 1) config_.num_workers = 1;
}

TcpRespServer::~TcpRespServer() { Stop(); }

bool TcpRespServer::Start(std::string* error) {
  const auto fail = [this, error](const std::string& why) {
    if (error != nullptr) *error = why;
    Stop();
    return false;
  };
  if (running_.load(std::memory_order_acquire)) {
    return fail("server already running");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return fail(Errno("socket"));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return fail("invalid bind address '" + config_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return fail(Errno("bind"));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    return fail(Errno("getsockname"));
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, config_.backlog) < 0) return fail(Errno("listen"));

  workers_.clear();
  for (int w = 0; w < config_.num_workers; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (worker->epoll_fd < 0) return fail(Errno("epoll_create1"));
    worker->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (worker->wake_fd < 0) return fail(Errno("eventfd"));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = worker->wake_fd;
    if (::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, worker->wake_fd, &ev) <
        0) {
      return fail(Errno("epoll_ctl(wake)"));
    }
    workers_.push_back(std::move(worker));
  }
  // Worker 0 owns the listener.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(workers_[0]->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev) <
      0) {
    return fail(Errno("epoll_ctl(listen)"));
  }

  running_.store(true, std::memory_order_release);
  for (size_t w = 0; w < workers_.size(); ++w) {
    Worker* worker = workers_[w].get();
    worker->thread =
        std::thread([this, worker, w] { WorkerLoop(worker, w == 0); });
  }
  return true;
}

namespace {

// Rings a worker's eventfd. A signal can interrupt even this 8-byte
// write; dropping it on EINTR would lose the wakeup and leave the
// worker parked in epoll_wait with work pending.
void RingWakeFd(int wake_fd) {
  const uint64_t one = 1;
  ssize_t n;
  do {
    n = ::write(wake_fd, &one, sizeof(one));
  } while (n < 0 && errno == EINTR);
}

}  // namespace

void TcpRespServer::Stop() {
  if (running_.exchange(false, std::memory_order_acq_rel)) {
    for (const auto& worker : workers_) {
      RingWakeFd(worker->wake_fd);
    }
    for (const auto& worker : workers_) {
      if (worker->thread.joinable()) worker->thread.join();
    }
  }
  for (const auto& worker : workers_) {
    for (const auto& [fd, connection] : worker->conns) {
      (void)connection;
      ::close(fd);
      closed_.fetch_add(1, std::memory_order_relaxed);
    }
    worker->conns.clear();
    {
      // The worker threads are joined (or were never started on a
      // failed Start), but the acceptor in another still-running
      // server instance is not a thing we need to reason about — take
      // the lock and let the analysis prove every inbox access.
      MutexLock lock(&worker->inbox_mu);
      for (const int fd : worker->inbox) ::close(fd);
      worker->inbox.clear();
    }
    if (worker->wake_fd >= 0) ::close(worker->wake_fd);
    if (worker->epoll_fd >= 0) ::close(worker->epoll_fd);
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

TcpRespServer::Stats TcpRespServer::stats() const {
  Stats stats;
  stats.connections_accepted = accepted_.load(std::memory_order_relaxed);
  stats.connections_closed = closed_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  stats.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  stats.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  return stats;
}

void TcpRespServer::WorkerLoop(Worker* worker, bool owns_listener) {
  epoll_event events[kMaxEpollEvents];
  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(worker->epoll_fd, events, kMaxEpollEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // the epoll fd itself failed; nothing recoverable
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == worker->wake_fd) {
        uint64_t drained = 0;
        ssize_t r;
        do {
          r = ::read(worker->wake_fd, &drained, sizeof(drained));
        } while (r < 0 && errno == EINTR);
        AdoptInbox(worker);
        continue;
      }
      if (owns_listener && fd == listen_fd_) {
        AcceptPending();
        continue;
      }
      // The same wait batch can carry a second event for a connection a
      // prior event already closed — look it up fresh every time.
      const auto it = worker->conns.find(fd);
      if (it == worker->conns.end()) continue;
      Connection* connection = it->second.get();
      if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        HandleReadable(worker, connection);
      }
      const auto again = worker->conns.find(fd);
      if (again == worker->conns.end()) continue;
      if (events[i].events & EPOLLOUT) {
        FlushWrites(worker, again->second.get());
      }
    }
  }
}

void TcpRespServer::AcceptPending() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or a transient accept failure
    }
    if (config_.tcp_nodelay) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    const size_t target = next_worker_.fetch_add(1, std::memory_order_relaxed) %
                          workers_.size();
    Worker* worker = workers_[target].get();
    if (target == 0) {
      // The acceptor is worker 0's loop; adopt without the inbox hop.
      {
        MutexLock lock(&worker->inbox_mu);
        worker->inbox.push_back(fd);
      }
      AdoptInbox(worker);
    } else {
      {
        MutexLock lock(&worker->inbox_mu);
        worker->inbox.push_back(fd);
      }
      RingWakeFd(worker->wake_fd);
    }
  }
}

void TcpRespServer::AdoptInbox(Worker* worker) {
  std::vector<int> adopted;
  {
    MutexLock lock(&worker->inbox_mu);
    adopted.swap(worker->inbox);
  }
  for (const int fd : adopted) {
    auto connection = std::make_unique<Connection>(fd, table_);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      closed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    worker->conns.emplace(fd, std::move(connection));
  }
}

void TcpRespServer::HandleReadable(Worker* worker, Connection* connection) {
  char buffer[kReadChunk];
  bool eof = false;
  while (true) {
    const ssize_t n = ::recv(connection->fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      bytes_in_.fetch_add(static_cast<uint64_t>(n),
                          std::memory_order_relaxed);
      std::string replies;
      const bool clean = connection->conn.Feed(
          std::string_view(buffer, static_cast<size_t>(n)), &replies);
      if (!replies.empty()) {
        // One queue entry per parsed chunk: a pipelined burst's replies
        // already share this buffer, and the flush path gathers the
        // whole queue into a single sendmsg anyway.
        connection->out.push_back(std::move(replies));
      }
      if (!clean) {
        // Framing error: the -ERR reply is queued; drop the client after
        // the flush, as a real Redis does.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        connection->close_after_flush = true;
        break;
      }
      continue;
    }
    if (n == 0) {  // client finished sending; flush replies, then close
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(worker, connection);  // hard socket error
    return;
  }
  if (eof || connection->close_after_flush) {
    connection->close_after_flush = true;
    if (!HasPendingWrites(*connection)) {
      CloseConnection(worker, connection);
      return;
    }
    // Stop watching for reads (an EOF'd socket stays level-readable
    // forever) and let the flush path close once the replies drain.
    connection->writable_armed = true;
    UpdateEpollInterest(worker, connection);
  }
  FlushWrites(worker, connection);
}

void TcpRespServer::FlushWrites(Worker* worker, Connection* connection) {
  while (HasPendingWrites(*connection)) {
    // Gather every pending reply buffer (the front one offset by the
    // partial-write cursor) into a single scatter/gather syscall —
    // sendmsg rather than writev so MSG_NOSIGNAL still applies.
    iovec iov[kMaxFlushIovecs];
    size_t iov_count = 0;
    size_t offset = connection->out_pos;
    for (const std::string& pending : connection->out) {
      if (iov_count == kMaxFlushIovecs) break;
      iov[iov_count].iov_base =
          const_cast<char*>(pending.data()) + offset;
      iov[iov_count].iov_len = pending.size() - offset;
      ++iov_count;
      offset = 0;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = iov_count;
    const ssize_t n = ::sendmsg(connection->fd, &msg, MSG_NOSIGNAL);
    if (n > 0) {
      bytes_out_.fetch_add(static_cast<uint64_t>(n),
                           std::memory_order_relaxed);
      // Retire fully written buffers; a short write leaves the cursor
      // mid-buffer for the next pass.
      size_t written = static_cast<size_t>(n);
      while (written > 0) {
        std::string& front = connection->out.front();
        const size_t left = front.size() - connection->out_pos;
        if (written < left) {
          connection->out_pos += written;
          break;
        }
        written -= left;
        connection->out_pos = 0;
        connection->out.pop_front();
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!connection->writable_armed) {
        connection->writable_armed = true;
        UpdateEpollInterest(worker, connection);
      }
      return;  // the socket will signal EPOLLOUT when it drains
    }
    CloseConnection(worker, connection);  // peer vanished mid-reply
    return;
  }
  if (connection->close_after_flush) {
    CloseConnection(worker, connection);
    return;
  }
  if (connection->writable_armed) {
    connection->writable_armed = false;
    UpdateEpollInterest(worker, connection);
  }
}

void TcpRespServer::UpdateEpollInterest(Worker* worker,
                                        Connection* connection) {
  epoll_event ev{};
  // A closing connection no longer reads (see HandleReadable on EOF).
  ev.events = (connection->close_after_flush ? 0u : EPOLLIN) |
              (connection->writable_armed ? EPOLLOUT : 0u);
  ev.data.fd = connection->fd;
  ::epoll_ctl(worker->epoll_fd, EPOLL_CTL_MOD, connection->fd, &ev);
}

void TcpRespServer::CloseConnection(Worker* worker, Connection* connection) {
  const int fd = connection->fd;
  ::epoll_ctl(worker->epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  closed_.fetch_add(1, std::memory_order_relaxed);
  worker->conns.erase(fd);  // frees `connection`
}

}  // namespace cuckoograph::server
