// A blocking TCP RESP2 client for driving TcpRespServer: the over-socket
// counterpart of redis_sim::SimClient. Used by the loopback tests and
// the served-traffic load generator; one instance per thread (no
// internal locking).
//
// Two usage shapes:
//  - Execute(argv): one request, one decoded reply (a full round trip).
//  - Pipeline(argv) ... Flush(): queue any number of encoded requests,
//    send them in one write burst, then read the same number of replies
//    back in order — the pipelining pattern the server is built for.
// SendRaw/ReadReply expose the byte layer for torn-frame tests.
#ifndef CUCKOOGRAPH_SERVER_RESP_CLIENT_H_
#define CUCKOOGRAPH_SERVER_RESP_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "redis_sim/resp.h"

namespace cuckoograph::server {

class RespClient {
 public:
  RespClient() = default;
  ~RespClient();

  RespClient(const RespClient&) = delete;
  RespClient& operator=(const RespClient&) = delete;
  // Movable so factories can hand connections to worker threads.
  RespClient(RespClient&& other) noexcept;
  RespClient& operator=(RespClient&& other) noexcept;

  // Opens a blocking TCP connection. False (with a reason in *error when
  // given) on failure.
  bool Connect(const std::string& host, uint16_t port,
               std::string* error = nullptr);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // Sends `argv` as a multibulk request and blocks for the decoded
  // reply. Throws std::runtime_error when the connection drops or the
  // reply bytes do not parse.
  redis_sim::RespValue Execute(const std::vector<std::string>& argv);

  // Queues `argv` (encoded, not yet sent) for the next Flush.
  void Pipeline(const std::vector<std::string>& argv);

  // Sends every queued request and reads exactly that many replies, in
  // request order. Throws like Execute.
  std::vector<redis_sim::RespValue> Flush();

  // Writes raw bytes straight to the socket (blocking until accepted) —
  // for slow-client / torn-frame tests that need byte-level control.
  bool SendRaw(std::string_view bytes);

  // Blocks until one complete reply is decoded from the stream.
  redis_sim::RespValue ReadReply();

 private:
  int fd_ = -1;
  std::string in_;          // reply bytes received but not yet consumed
  std::string pending_out_; // encoded requests queued by Pipeline
  size_t pending_replies_ = 0;
};

}  // namespace cuckoograph::server

#endif  // CUCKOOGRAPH_SERVER_RESP_CLIENT_H_
