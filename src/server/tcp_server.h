// TcpRespServer: the real network service over the Redis-protocol front
// door. An epoll-based nonblocking TCP server that speaks RESP2 and
// dispatches every request into a shared CommandTable — the same
// dispatch/protocol core the in-process RedisServerSim wraps, so the
// served path adds only sockets, not a second protocol implementation.
//
// Threading model (see docs/ARCHITECTURE.md for the lifecycle diagram):
//  - `num_workers` event-loop threads, each running its own epoll set.
//    Worker 0 additionally owns the nonblocking listener; accepted
//    connections are handed to workers round-robin through a per-worker
//    inbox + eventfd wakeup.
//  - A connection is pinned to one worker for its whole life, so its
//    RespConnection parse state and write buffer are single-threaded by
//    construction and per-connection reply order is request order (full
//    pipelining, no reordering).
//  - With num_workers == 1 the server is a classic single-threaded event
//    loop and any handler target is safe. With num_workers > 1, workers
//    dispatch into the shared CommandTable concurrently, so the handlers
//    must target a thread-safe store (one advertising
//    Capabilities().concurrent_mutations, e.g. cuckoo-sharded — its
//    per-shard reader/writer locks are the only mutexes on the dispatch
//    path; the server itself adds none around handlers).
//
// Per-connection I/O: reads drain the socket until EAGAIN and feed each
// chunk to the connection's incremental RESP parser; the replies each
// chunk produces become one buffer on the connection's outbound queue,
// and the flush path gathers every pending buffer into a single
// scatter/gather write (sendmsg with an iovec per buffer) instead of
// one syscall per buffer. EPOLLOUT is armed only while a partial write
// is outstanding (slow clients block only themselves). A protocol error
// answers -ERR and closes the connection after the flush, like a real
// Redis.
#ifndef CUCKOOGRAPH_SERVER_TCP_SERVER_H_
#define CUCKOOGRAPH_SERVER_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "redis_sim/command_table.h"

namespace cuckoograph::server {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;    // 0 = kernel-assigned; read the result via port()
  int num_workers = 1;  // epoll event-loop threads (clamped to >= 1)
  int backlog = 128;
  bool tcp_nodelay = true;  // disable Nagle so pipelined replies flush
};

class TcpRespServer {
 public:
  // The table must outlive the server and be fully registered before
  // Start (registration is not thread-safe against dispatch).
  TcpRespServer(const ServerConfig& config,
                const redis_sim::CommandTable* table);
  ~TcpRespServer();  // implies Stop()

  TcpRespServer(const TcpRespServer&) = delete;
  TcpRespServer& operator=(const TcpRespServer&) = delete;

  // Binds, listens and spawns the worker threads. Returns false (with a
  // reason in *error when given) on socket setup failure.
  bool Start(std::string* error = nullptr);

  // Shuts the listener and every worker down and joins the threads.
  // Open connections are closed without draining their write buffers.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // The bound port (resolves port 0), valid after a successful Start.
  uint16_t port() const { return port_; }

  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_closed = 0;
    uint64_t protocol_errors = 0;  // connections dropped on framing errors
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
  };
  Stats stats() const;

 private:
  // One client socket and everything pinned to its worker: protocol
  // state, the outbound reply queue, and the flush cursor.
  struct Connection {
    explicit Connection(int fd_in, const redis_sim::CommandTable* table)
        : fd(fd_in), conn(table) {}
    int fd = -1;
    redis_sim::RespConnection conn;
    // Encoded replies not yet written, one buffer per parsed read chunk
    // (a pipelined chunk's replies share a buffer). The flush path
    // gathers the whole queue into one sendmsg; `out_pos` is how much
    // of the front buffer a partial write already consumed.
    std::deque<std::string> out;
    size_t out_pos = 0;
    bool close_after_flush = false;
    bool writable_armed = false;  // EPOLLOUT currently requested
  };

  static bool HasPendingWrites(const Connection& connection) {
    return !connection.out.empty();
  }

  // Cross-thread state is annotated; everything else in a Worker is
  // touched only by its own event-loop thread (plus Stop after the
  // join), which no mutex can express — the pinning is the invariant.
  struct Worker {
    int epoll_fd = -1;
    int wake_fd = -1;  // eventfd: new-connection inbox + stop signal
    std::thread thread;
    // The accept → worker handoff: the acceptor pushes under the lock,
    // the owning worker swaps the vector out under it (AdoptInbox).
    Mutex inbox_mu;
    std::vector<int> inbox CUCKOOGRAPH_GUARDED_BY(inbox_mu);
    // Worker-thread-confined: created/erased/read only on the owning
    // event loop (Stop touches it only after joining the thread).
    std::unordered_map<int, std::unique_ptr<Connection>> conns;
  };

  void WorkerLoop(Worker* worker, bool owns_listener);
  void AcceptPending();
  void AdoptInbox(Worker* worker);
  void HandleReadable(Worker* worker, Connection* connection);
  // Writes as much of the outbound queue as the socket takes, gathering
  // all pending buffers into a single scatter/gather syscall per
  // iteration; arms/disarms EPOLLOUT and closes when a drained
  // connection asked for it.
  void FlushWrites(Worker* worker, Connection* connection);
  void CloseConnection(Worker* worker, Connection* connection);
  void UpdateEpollInterest(Worker* worker, Connection* connection);

  ServerConfig config_;
  const redis_sim::CommandTable* table_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<size_t> next_worker_{0};  // round-robin accept target
  std::vector<std::unique_ptr<Worker>> workers_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
};

}  // namespace cuckoograph::server

#endif  // CUCKOOGRAPH_SERVER_TCP_SERVER_H_
