#include "server/resp_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <utility>

#include "common/errno_string.h"

namespace cuckoograph::server {
namespace {

constexpr size_t kReadChunk = 16 * 1024;

}  // namespace

RespClient::~RespClient() { Close(); }

RespClient::RespClient(RespClient&& other) noexcept
    : fd_(other.fd_),
      in_(std::move(other.in_)),
      pending_out_(std::move(other.pending_out_)),
      pending_replies_(other.pending_replies_) {
  other.fd_ = -1;
  other.pending_replies_ = 0;
}

RespClient& RespClient::operator=(RespClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    in_ = std::move(other.in_);
    pending_out_ = std::move(other.pending_out_);
    pending_replies_ = other.pending_replies_;
    other.fd_ = -1;
    other.pending_replies_ = 0;
  }
  return *this;
}

bool RespClient::Connect(const std::string& host, uint16_t port,
                         std::string* error) {
  const auto fail = [this, error](const std::string& why) {
    if (error != nullptr) *error = why;
    Close();
    return false;
  };
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return fail(std::string("socket: ") + ErrnoString(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return fail("invalid address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return fail(std::string("connect: ") + ErrnoString(errno));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

void RespClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  in_.clear();
  pending_out_.clear();
  pending_replies_ = 0;
}

redis_sim::RespValue RespClient::Execute(
    const std::vector<std::string>& argv) {
  if (!SendRaw(redis_sim::EncodeCommand(argv))) {
    throw std::runtime_error("RespClient: send failed");
  }
  return ReadReply();
}

void RespClient::Pipeline(const std::vector<std::string>& argv) {
  pending_out_ += redis_sim::EncodeCommand(argv);
  ++pending_replies_;
}

std::vector<redis_sim::RespValue> RespClient::Flush() {
  const size_t expected = pending_replies_;
  std::string burst;
  burst.swap(pending_out_);
  pending_replies_ = 0;
  if (!SendRaw(burst)) {
    throw std::runtime_error("RespClient: pipelined send failed");
  }
  std::vector<redis_sim::RespValue> replies;
  replies.reserve(expected);
  for (size_t i = 0; i < expected; ++i) replies.push_back(ReadReply());
  return replies;
}

bool RespClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return false;
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

redis_sim::RespValue RespClient::ReadReply() {
  while (true) {
    redis_sim::ParseResult reply = redis_sim::ParseValue(in_);
    if (reply.status == redis_sim::ParseStatus::kOk) {
      in_.erase(0, reply.consumed);
      return std::move(reply.value);
    }
    if (reply.status == redis_sim::ParseStatus::kError) {
      throw std::runtime_error("RespClient: unparsable reply: " +
                               reply.error);
    }
    char buffer[kReadChunk];
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      in_.append(buffer, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw std::runtime_error(
        n == 0 ? "RespClient: connection closed by server"
               : std::string("RespClient: recv: ") + ErrnoString(errno));
  }
}

}  // namespace cuckoograph::server
