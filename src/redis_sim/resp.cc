#include "redis_sim/resp.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace cuckoograph::redis_sim {
namespace {

// Locates the CRLF terminating the header line that starts at `pos`:
// the index of '\r', or npos when the buffer ends before a full CRLF.
size_t FindCrlf(std::string_view bytes, size_t pos) {
  return bytes.find("\r\n", pos);
}

// Parses the decimal integer spanning [pos, line_end). Strict: optional
// leading '-', at least one digit, nothing else, and the magnitude must
// fit a long long — overlong headers fail here instead of overflowing,
// like Redis rejecting an oversized length line before accumulating it.
bool ParseDecimal(std::string_view bytes, size_t pos, size_t line_end,
                  long long* out) {
  constexpr long long kMax = std::numeric_limits<long long>::max();
  bool negative = false;
  if (pos < line_end && bytes[pos] == '-') {
    negative = true;
    ++pos;
  }
  if (pos == line_end) return false;
  long long value = 0;
  for (; pos < line_end; ++pos) {
    const char c = bytes[pos];
    if (c < '0' || c > '9') return false;
    const long long digit = c - '0';
    if (value > (kMax - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = negative ? -value : value;
  return true;
}

ParseResult ProtocolError(std::string message) {
  ParseResult result;
  result.status = ParseStatus::kError;
  result.error = std::move(message);
  return result;
}

// Parses one value starting at `pos`; on kOk, `*end` is one past the
// value's last byte. `array_limit` caps array lengths (-1 = uncapped):
// the request path passes kMaxMultibulkLen, the reply path no cap, since
// Redis's multibulk limit applies only to what clients send.
ParseResult ParseAt(std::string_view bytes, size_t pos, size_t* end,
                    long long array_limit);

ParseResult ParseLinePayload(std::string_view bytes, size_t pos, size_t* end,
                             RespType type) {
  const size_t crlf = FindCrlf(bytes, pos);
  if (crlf == std::string_view::npos) return ParseResult{};
  ParseResult result;
  result.status = ParseStatus::kOk;
  result.value.type = type;
  result.value.text.assign(bytes.substr(pos, crlf - pos));
  *end = crlf + 2;
  return result;
}

ParseResult ParseIntegerValue(std::string_view bytes, size_t pos,
                              size_t* end) {
  const size_t crlf = FindCrlf(bytes, pos);
  if (crlf == std::string_view::npos) return ParseResult{};
  long long value = 0;
  if (!ParseDecimal(bytes, pos, crlf, &value)) {
    return ProtocolError("Protocol error: invalid integer");
  }
  ParseResult result;
  result.status = ParseStatus::kOk;
  result.value = RespValue::Integer(value);
  *end = crlf + 2;
  return result;
}

ParseResult ParseBulk(std::string_view bytes, size_t pos, size_t* end) {
  const size_t crlf = FindCrlf(bytes, pos);
  if (crlf == std::string_view::npos) return ParseResult{};
  long long len = 0;
  if (!ParseDecimal(bytes, pos, crlf, &len) || len < -1 ||
      len > kMaxBulkLen) {
    return ProtocolError("Protocol error: invalid bulk length");
  }
  ParseResult result;
  if (len == -1) {  // $-1\r\n: the null bulk string
    result.status = ParseStatus::kOk;
    result.value = RespValue::Null();
    *end = crlf + 2;
    return result;
  }
  const size_t payload = crlf + 2;
  const size_t body = static_cast<size_t>(len);  // len >= 0 checked above
  if (payload + body + 2 > bytes.size()) {
    return ParseResult{};
  }
  if (bytes[payload + body] != '\r' || bytes[payload + body + 1] != '\n') {
    return ProtocolError("Protocol error: bulk string not CRLF-terminated");
  }
  result.status = ParseStatus::kOk;
  result.value = RespValue::Bulk(std::string(bytes.substr(payload, body)));
  *end = payload + body + 2;
  return result;
}

ParseResult ParseArray(std::string_view bytes, size_t pos, size_t* end,
                       long long array_limit) {
  const size_t crlf = FindCrlf(bytes, pos);
  if (crlf == std::string_view::npos) return ParseResult{};
  long long len = 0;
  if (!ParseDecimal(bytes, pos, crlf, &len) || len < -1 ||
      (array_limit >= 0 && len > array_limit)) {
    return ProtocolError("Protocol error: invalid multibulk length");
  }
  ParseResult result;
  if (len == -1) {  // *-1\r\n: the null array
    result.status = ParseStatus::kOk;
    result.value = RespValue::Null();
    *end = crlf + 2;
    return result;
  }
  std::vector<RespValue> elements;
  // Clamp the reserve: a garbage header claiming a huge length must not
  // allocate before its (missing) elements fail to parse.
  elements.reserve(static_cast<size_t>(std::min(len, 1024LL)));
  size_t cursor = crlf + 2;
  for (long long i = 0; i < len; ++i) {
    size_t next = 0;
    ParseResult element = ParseAt(bytes, cursor, &next, array_limit);
    if (element.status != ParseStatus::kOk) return element;
    elements.push_back(std::move(element.value));
    cursor = next;
  }
  result.status = ParseStatus::kOk;
  result.value = RespValue::Array(std::move(elements));
  *end = cursor;
  return result;
}

ParseResult ParseAt(std::string_view bytes, size_t pos, size_t* end,
                    long long array_limit) {
  if (pos >= bytes.size()) return ParseResult{};
  switch (bytes[pos]) {
    case '+':
      return ParseLinePayload(bytes, pos + 1, end, RespType::kSimpleString);
    case '-':
      return ParseLinePayload(bytes, pos + 1, end, RespType::kError);
    case ':':
      return ParseIntegerValue(bytes, pos + 1, end);
    case '$':
      return ParseBulk(bytes, pos + 1, end);
    case '*':
      return ParseArray(bytes, pos + 1, end, array_limit);
    default:
      return ProtocolError(std::string("Protocol error: unknown type byte '") +
                           bytes[pos] + "'");
  }
}

}  // namespace

RespValue RespValue::Simple(std::string s) {
  RespValue v;
  v.type = RespType::kSimpleString;
  v.text = std::move(s);
  return v;
}

RespValue RespValue::Error(std::string message) {
  RespValue v;
  v.type = RespType::kError;
  v.text = std::move(message);
  return v;
}

RespValue RespValue::Integer(long long value) {
  RespValue v;
  v.type = RespType::kInteger;
  v.integer = value;
  return v;
}

RespValue RespValue::Bulk(std::string payload) {
  RespValue v;
  v.type = RespType::kBulkString;
  v.text = std::move(payload);
  return v;
}

RespValue RespValue::Null() { return RespValue{}; }

RespValue RespValue::Array(std::vector<RespValue> elements) {
  RespValue v;
  v.type = RespType::kArray;
  v.elements = std::move(elements);
  return v;
}

namespace {

// Line-framed payloads (simple strings, errors) cannot contain CR/LF —
// one would split the frame and desync the stream. Redis sanitizes error
// text the same way; bulk strings are length-prefixed and stay verbatim.
void AppendLineSafe(std::string* out, const std::string& text) {
  for (const char c : text) {
    *out += (c == '\r' || c == '\n') ? ' ' : c;
  }
}

}  // namespace

std::string Encode(const RespValue& value) {
  std::string out;
  switch (value.type) {
    case RespType::kSimpleString:
      out += '+';
      AppendLineSafe(&out, value.text);
      out += "\r\n";
      break;
    case RespType::kError:
      out += '-';
      AppendLineSafe(&out, value.text);
      out += "\r\n";
      break;
    case RespType::kInteger:
      out += ':';
      out += std::to_string(value.integer);
      out += "\r\n";
      break;
    case RespType::kBulkString:
      out += '$';
      out += std::to_string(value.text.size());
      out += "\r\n";
      out += value.text;
      out += "\r\n";
      break;
    case RespType::kNull:
      out += "$-1\r\n";
      break;
    case RespType::kArray:
      out += '*';
      out += std::to_string(value.elements.size());
      out += "\r\n";
      for (const RespValue& element : value.elements) {
        out += Encode(element);
      }
      break;
  }
  return out;
}

std::string EncodeCommand(const std::vector<std::string>& argv) {
  std::vector<RespValue> elements;
  elements.reserve(argv.size());
  for (const std::string& arg : argv) elements.push_back(RespValue::Bulk(arg));
  return Encode(RespValue::Array(std::move(elements)));
}

ParseResult ParseValue(std::string_view bytes) {
  size_t end = 0;
  ParseResult result = ParseAt(bytes, 0, &end, /*array_limit=*/-1);
  if (result.status == ParseStatus::kOk) result.consumed = end;
  return result;
}

namespace {

CommandParse CommandError(std::string message) {
  CommandParse result;
  result.status = ParseStatus::kError;
  result.error = std::move(message);
  return result;
}

CommandParse ParseInlineCommand(std::string_view bytes) {
  const size_t lf = bytes.find('\n');
  if (lf == std::string_view::npos) return CommandParse{};
  size_t line_end = lf;
  if (line_end > 0 && bytes[line_end - 1] == '\r') --line_end;
  CommandParse result;
  result.status = ParseStatus::kOk;
  result.consumed = lf + 1;
  size_t pos = 0;
  while (pos < line_end) {
    while (pos < line_end && (bytes[pos] == ' ' || bytes[pos] == '\t')) ++pos;
    size_t start = pos;
    while (pos < line_end && bytes[pos] != ' ' && bytes[pos] != '\t') ++pos;
    if (pos > start) {
      result.argv.emplace_back(bytes.substr(start, pos - start));
    }
  }
  return result;
}

}  // namespace

CommandParse ParseCommand(std::string_view bytes) {
  if (bytes.empty()) return CommandParse{};
  if (bytes[0] != '*') return ParseInlineCommand(bytes);
  size_t end = 0;
  ParseResult request = ParseAt(bytes, 0, &end, kMaxMultibulkLen);
  if (request.status == ParseStatus::kOk) request.consumed = end;
  if (request.status == ParseStatus::kIncomplete) return CommandParse{};
  if (request.status == ParseStatus::kError) {
    return CommandError(std::move(request.error));
  }
  if (request.value.type != RespType::kArray) {
    // *-1\r\n from a client: not a valid request.
    return CommandError("Protocol error: invalid multibulk length");
  }
  CommandParse result;
  result.status = ParseStatus::kOk;
  result.consumed = request.consumed;
  result.argv.reserve(request.value.elements.size());
  for (RespValue& element : request.value.elements) {
    if (element.type != RespType::kBulkString) {
      return CommandError("Protocol error: expected '$', got something else");
    }
    result.argv.push_back(std::move(element.text));
  }
  return result;
}

}  // namespace cuckoograph::redis_sim
