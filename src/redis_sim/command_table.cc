#include "redis_sim/command_table.h"

#include <cctype>
#include <utility>

namespace cuckoograph::redis_sim {
namespace {

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

bool CommandTable::RegisterCommand(std::string_view name, int arity,
                                   CommandHandler handler) {
  std::string key = ToUpper(name);
  const auto [it, inserted] =
      commands_.emplace(key, CommandEntry{arity, std::move(handler)});
  (void)it;
  if (inserted) registration_order_.push_back(std::move(key));
  return inserted;
}

std::vector<std::string> CommandTable::CommandNames() const {
  return registration_order_;
}

RespValue CommandTable::Dispatch(Span<const std::string_view> argv) const {
  const auto it = commands_.find(ToUpper(argv[0]));
  if (it == commands_.end()) {
    dispatch_errors_.fetch_add(1, std::memory_order_relaxed);
    return RespValue::Error("ERR unknown command '" + std::string(argv[0]) +
                            "'");
  }
  const CommandEntry& entry = it->second;
  const int argc = static_cast<int>(argv.size());
  const bool arity_ok =
      entry.arity >= 0 ? argc == entry.arity : argc >= -entry.arity;
  if (!arity_ok) {
    dispatch_errors_.fetch_add(1, std::memory_order_relaxed);
    return RespValue::Error("ERR wrong number of arguments for '" +
                            ToLower(argv[0]) + "' command");
  }
  dispatched_.fetch_add(1, std::memory_order_relaxed);
  RespValue reply = entry.handler(argv);
  if (reply.IsError()) {
    dispatch_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  return reply;
}

bool RespConnection::Feed(std::string_view bytes, std::string* out) {
  stats_.bytes_in += bytes.size();
  const size_t out_start = out->size();
  buffer_.append(bytes.data(), bytes.size());
  bool clean = true;
  size_t pos = 0;
  while (pos < buffer_.size()) {
    const CommandParse parsed =
        ParseCommand(std::string_view(buffer_).substr(pos));
    if (parsed.status == ParseStatus::kIncomplete) break;
    if (parsed.status == ParseStatus::kError) {
      *out += Encode(RespValue::Error("ERR " + parsed.error));
      ++stats_.error_replies;
      ++stats_.protocol_errors;
      pos = buffer_.size();  // drop the poisoned stream
      clean = false;
      break;
    }
    pos += parsed.consumed;
    if (parsed.argv.empty()) continue;  // blank line / empty multibulk
    std::vector<std::string_view> views(parsed.argv.begin(),
                                        parsed.argv.end());
    const RespValue reply =
        table_->Dispatch(Span<const std::string_view>(views));
    ++stats_.commands;
    if (reply.IsError()) ++stats_.error_replies;
    *out += Encode(reply);
  }
  buffer_.erase(0, pos);
  stats_.bytes_out += out->size() - out_start;
  return clean;
}

}  // namespace cuckoograph::redis_sim
