// The in-process embedding API for the Redis-protocol front door: a
// simulated server a module registers commands into, and the client that
// round-trips every call through serialized RESP bytes. The pair stands
// in for a real Redis + redis-cli: modules see the same shape as the
// RedisModule_CreateCommand API (name, arity, handler over argv), and
// callers see only bytes — so Figure 17's measured cost includes request
// encoding, request parsing, dispatch through a handler table, reply
// encoding, and reply parsing on the way back out.
//
// RedisServerSim is a thin wrapper over the transport-agnostic core in
// command_table.h — one CommandTable plus one RespConnection — and is
// the documented embedding API: link cuckoograph_redis_sim, register
// commands, Feed bytes. The real TCP server (src/server/tcp_server.h)
// instantiates the same CommandTable/RespConnection pair per socket, so
// everything tested through this wrapper covers the served path's
// dispatch and protocol logic for free.
#ifndef CUCKOOGRAPH_REDIS_SIM_MODULE_HOST_H_
#define CUCKOOGRAPH_REDIS_SIM_MODULE_HOST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "redis_sim/command_table.h"
#include "redis_sim/resp.h"

namespace cuckoograph::redis_sim {

class RedisServerSim {
 public:
  // See CommandTable::CommandHandler: argv views are valid only for the
  // duration of the call.
  using CommandHandler = CommandTable::CommandHandler;

  RedisServerSim() : connection_(&table_) {}

  // Registers `name` on the underlying CommandTable (case-insensitive,
  // Redis arity semantics; false when the name is already taken).
  bool RegisterCommand(std::string_view name, int arity,
                       CommandHandler handler) {
    return table_.RegisterCommand(name, arity, std::move(handler));
  }

  // Feeds request bytes into the sim's single connection and returns the
  // reply bytes produced. Stateful like a socket: an incomplete trailing
  // command is buffered until the next Feed completes it, and several
  // pipelined commands in one Feed produce several back-to-back replies.
  // A protocol error produces an error reply and discards the rest of
  // the buffer (the sim's stand-in for Redis closing the connection —
  // unlike a real server the sim connection stays usable afterwards).
  std::string Feed(std::string_view bytes);

  struct Stats {
    uint64_t commands_dispatched = 0;  // handler invocations
    uint64_t error_replies = 0;  // arity/unknown/protocol/handler errors
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
  };
  const Stats& stats() const;

  // Registered command names (uppercased), in registration order.
  std::vector<std::string> CommandNames() const {
    return table_.CommandNames();
  }

  // The shared dispatch core, for wiring the same command set into other
  // transports (the TCP server's constructor takes this pointer).
  CommandTable* command_table() { return &table_; }
  const CommandTable* command_table() const { return &table_; }

 private:
  CommandTable table_;
  RespConnection connection_;
  mutable Stats stats_;  // assembled on demand in stats()
};

// A client endpoint for the simulated server. Every Execute serializes
// its argv as a multibulk request, feeds the bytes through the server,
// and parses the reply bytes back into a RespValue — the full wire round
// trip, minus only the kernel socket.
class SimClient {
 public:
  explicit SimClient(RedisServerSim* server) : server_(server) {}

  // Sends `argv` as a multibulk request and returns the decoded reply.
  RespValue Execute(const std::vector<std::string>& argv);

  // Sends one raw inline command line (no trailing newline needed), e.g.
  // "CG.QUERY 1 2", and returns the decoded reply.
  RespValue ExecuteInline(std::string_view line);

 private:
  // Feeds `request` and decodes exactly one reply from the response
  // stream (plus whatever was left over from earlier pipelining).
  RespValue RoundTrip(std::string_view request);

  RedisServerSim* server_;
  std::string pending_;  // reply bytes received but not yet consumed
};

}  // namespace cuckoograph::redis_sim

#endif  // CUCKOOGRAPH_REDIS_SIM_MODULE_HOST_H_
