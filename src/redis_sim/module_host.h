// The simulated Redis server a module registers commands into, and the
// client that round-trips every call through serialized RESP bytes. The
// pair stands in for a real Redis + redis-cli: modules see the same shape
// as the RedisModule_CreateCommand API (name, arity, handler over argv),
// and callers see only bytes — so Figure 17's measured cost includes
// request encoding, request parsing, dispatch through a handler table,
// reply encoding, and reply parsing on the way back out.
#ifndef CUCKOOGRAPH_REDIS_SIM_MODULE_HOST_H_
#define CUCKOOGRAPH_REDIS_SIM_MODULE_HOST_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "redis_sim/resp.h"

namespace cuckoograph::redis_sim {

class RedisServerSim {
 public:
  // A registered command body. `argv` is the full request (argv[0] is the
  // command name as the client sent it); the returned value is encoded as
  // the reply.
  using CommandHandler =
      std::function<RespValue(const std::vector<std::string>& argv)>;

  // Registers `name` (matched case-insensitively) with Redis arity
  // semantics: a positive `arity` requires exactly that many argv entries
  // (command name included); a negative `arity` requires at least
  // |arity|. Returns false (keeping the existing entry) when the name is
  // already taken.
  bool RegisterCommand(std::string_view name, int arity,
                       CommandHandler handler);

  // Feeds request bytes into the connection and returns the reply bytes
  // produced. Stateful like a socket: an incomplete trailing command is
  // buffered until the next Feed completes it, and several pipelined
  // commands in one Feed produce several back-to-back replies. A protocol
  // error produces an error reply and discards the rest of the buffer
  // (the sim's stand-in for Redis closing the connection).
  std::string Feed(std::string_view bytes);

  struct Stats {
    uint64_t commands_dispatched = 0;  // handler invocations
    uint64_t error_replies = 0;        // arity/unknown/protocol/handler errors
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
  };
  const Stats& stats() const { return stats_; }

  // Registered command names (uppercased), in registration order.
  std::vector<std::string> CommandNames() const;

 private:
  struct CommandEntry {
    int arity = 0;
    CommandHandler handler;
  };

  // Dispatches one parsed request and returns its reply value.
  RespValue Dispatch(const std::vector<std::string>& argv);

  std::unordered_map<std::string, CommandEntry> commands_;  // key: UPPERCASE
  std::vector<std::string> registration_order_;
  std::string buffer_;  // unconsumed request bytes between Feed calls
  Stats stats_;
};

// A client endpoint for the simulated server. Every Execute serializes
// its argv as a multibulk request, feeds the bytes through the server,
// and parses the reply bytes back into a RespValue — the full wire round
// trip, minus only the kernel socket.
class SimClient {
 public:
  explicit SimClient(RedisServerSim* server) : server_(server) {}

  // Sends `argv` as a multibulk request and returns the decoded reply.
  RespValue Execute(const std::vector<std::string>& argv);

  // Sends one raw inline command line (no trailing newline needed), e.g.
  // "CG.QUERY 1 2", and returns the decoded reply.
  RespValue ExecuteInline(std::string_view line);

 private:
  // Feeds `request` and decodes exactly one reply from the response
  // stream (plus whatever was left over from earlier pipelining).
  RespValue RoundTrip(std::string_view request);

  RedisServerSim* server_;
  std::string pending_;  // reply bytes received but not yet consumed
};

}  // namespace cuckoograph::redis_sim

#endif  // CUCKOOGRAPH_REDIS_SIM_MODULE_HOST_H_
