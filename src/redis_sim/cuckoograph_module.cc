#include "redis_sim/cuckoograph_module.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.h"

namespace cuckoograph::redis_sim {
namespace {

// Strict decimal uint32 parse (the full NodeId range, 0 and ~0u included).
// No sign, no whitespace, no trailing junk — the same strings Redis's
// string2ll would take, narrowed to the NodeId width.
bool ParseNodeId(std::string_view s, NodeId* out) {
  if (s.empty() || s.size() > 10) return false;
  uint64_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  if (value > 0xffffffffull) return false;
  *out = static_cast<NodeId>(value);
  return true;
}

const char kNotAnInteger[] = "ERR value is not an integer or out of range";

}  // namespace

void RegisterGraphCommands(CommandTable* table, GraphStore* store) {
  // The u-v commands share one parse-then-call shape.
  const auto edge_command = [table, store](const char* name,
                                           bool (GraphStore::*op)(NodeId,
                                                                  NodeId)) {
    table->RegisterCommand(
        name, 3, [store, op](Span<const std::string_view> argv) {
          NodeId u = 0, v = 0;
          if (!ParseNodeId(argv[1], &u) || !ParseNodeId(argv[2], &v)) {
            return RespValue::Error(kNotAnInteger);
          }
          return RespValue::Integer((store->*op)(u, v) ? 1 : 0);
        });
  };
  edge_command("CG.INSERT", &GraphStore::InsertEdge);
  edge_command("CG.DEL", &GraphStore::DeleteEdge);
  edge_command("CG.DELETE", &GraphStore::DeleteEdge);

  // QueryEdge is const, so it does not fit the mutating-op shape above.
  table->RegisterCommand(
      "CG.QUERY", 3, [store](Span<const std::string_view> argv) {
        NodeId u = 0, v = 0;
        if (!ParseNodeId(argv[1], &u) || !ParseNodeId(argv[2], &v)) {
          return RespValue::Error(kNotAnInteger);
        }
        return RespValue::Integer(store->QueryEdge(u, v) ? 1 : 0);
      });

  table->RegisterCommand(
      "CG.DEGREE", 2, [store](Span<const std::string_view> argv) {
        NodeId u = 0;
        if (!ParseNodeId(argv[1], &u)) {
          return RespValue::Error(kNotAnInteger);
        }
        return RespValue::Integer(static_cast<long long>(store->OutDegree(u)));
      });

  table->RegisterCommand(
      "CG.NEIGHBORS", 2, [store](Span<const std::string_view> argv) {
        NodeId u = 0;
        if (!ParseNodeId(argv[1], &u)) {
          return RespValue::Error(kNotAnInteger);
        }
        std::vector<RespValue> elements;
        store->ForEachNeighbor(u, [&elements](NodeId v) {
          elements.push_back(RespValue::Bulk(std::to_string(v)));
        });
        return RespValue::Array(std::move(elements));
      });
}

}  // namespace cuckoograph::redis_sim
