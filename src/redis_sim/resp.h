// RESP2 (REdis Serialization Protocol) codec for the Redis-module
// simulation of Section V-F. The Figure 17 bench routes every CuckooGraph
// operation through serialized bytes — multibulk request encoding, request
// parsing, dispatch, reply encoding, reply parsing — so the measured
// throughput includes genuine protocol overhead, not a function call.
//
// The subset implemented is what a RESP2 command connection exercises:
// simple strings (+), errors (-), integers (:), bulk strings ($, including
// the $-1 null), and arrays (*, including *-1), plus the inline command
// form (a bare space-separated line) real Redis accepts alongside
// multibulk requests.
#ifndef CUCKOOGRAPH_REDIS_SIM_RESP_H_
#define CUCKOOGRAPH_REDIS_SIM_RESP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace cuckoograph::redis_sim {

// Protocol limits mirroring real Redis: a bulk payload is capped at 512MB
// and a multibulk *request* at 1M elements (the cap is client-side only —
// replies may be arbitrarily long arrays, as on a real server). Lengths
// past these parse as protocol errors instead of provoking huge
// allocations.
inline constexpr long long kMaxBulkLen = 512LL * 1024 * 1024;
inline constexpr long long kMaxMultibulkLen = 1024 * 1024;

enum class RespType {
  kSimpleString,  // +OK\r\n
  kError,         // -ERR ...\r\n
  kInteger,       // :42\r\n
  kBulkString,    // $5\r\nhello\r\n
  kNull,          // $-1\r\n (and *-1\r\n parses to this too)
  kArray,         // *2\r\n<element><element>
};

// One decoded RESP value. Which members are meaningful depends on `type`:
// `text` for simple strings / errors / bulk payloads, `integer` for
// integers, `elements` for arrays.
struct RespValue {
  RespType type = RespType::kNull;
  std::string text;
  long long integer = 0;
  std::vector<RespValue> elements;

  static RespValue Simple(std::string s);
  static RespValue Error(std::string message);
  static RespValue Integer(long long value);
  static RespValue Bulk(std::string payload);
  static RespValue Null();
  static RespValue Array(std::vector<RespValue> elements);

  bool IsError() const { return type == RespType::kError; }
};

// Serializes `value` to its RESP2 wire form.
std::string Encode(const RespValue& value);

// Encodes a client request: an array of bulk strings, one per argument
// (the standard multibulk request form).
std::string EncodeCommand(const std::vector<std::string>& argv);

enum class ParseStatus {
  kOk,          // one complete value decoded
  kIncomplete,  // the buffer ends mid-value; feed more bytes and retry
  kError,       // protocol violation; `error` says what was wrong
};

struct ParseResult {
  ParseStatus status = ParseStatus::kIncomplete;
  RespValue value;     // valid when status == kOk
  size_t consumed = 0; // bytes of input the value occupied (kOk only)
  std::string error;   // human-readable, set when status == kError
};

// Decodes one RESP value from the front of `bytes`. Incremental: a
// truncated value reports kIncomplete (never an error), so callers can
// buffer partial reads exactly like a socket loop would.
ParseResult ParseValue(std::string_view bytes);

struct CommandParse {
  ParseStatus status = ParseStatus::kIncomplete;
  std::vector<std::string> argv;  // command name + arguments (kOk only)
  size_t consumed = 0;
  std::string error;
};

// Decodes one client request from the front of `bytes`: a '*'-prefixed
// multibulk request (every element must be a bulk string), or an inline
// command — a bare line split on spaces/tabs, terminated by LF or CRLF.
// A kOk result with empty argv (empty multibulk or blank inline line) is
// a no-op request the server skips without replying, matching Redis.
CommandParse ParseCommand(std::string_view bytes);

}  // namespace cuckoograph::redis_sim

#endif  // CUCKOOGRAPH_REDIS_SIM_RESP_H_
