#include "redis_sim/module_host.h"

#include <stdexcept>
#include <utility>

namespace cuckoograph::redis_sim {

std::string RedisServerSim::Feed(std::string_view bytes) {
  std::string replies;
  connection_.Feed(bytes, &replies);
  return replies;
}

const RedisServerSim::Stats& RedisServerSim::stats() const {
  const RespConnection::Stats& conn = connection_.stats();
  stats_.commands_dispatched = table_.commands_dispatched();
  stats_.error_replies = conn.error_replies;
  stats_.bytes_in = conn.bytes_in;
  stats_.bytes_out = conn.bytes_out;
  return stats_;
}

RespValue SimClient::Execute(const std::vector<std::string>& argv) {
  return RoundTrip(EncodeCommand(argv));
}

RespValue SimClient::ExecuteInline(std::string_view line) {
  std::string request(line);
  request += "\r\n";
  return RoundTrip(request);
}

RespValue SimClient::RoundTrip(std::string_view request) {
  pending_ += server_->Feed(request);
  ParseResult reply = ParseValue(pending_);
  if (reply.status == ParseStatus::kIncomplete) {
    // The sim server always answers a complete request in the same Feed;
    // no reply means the request itself never formed a complete command.
    throw std::runtime_error("SimClient: server produced no complete reply");
  }
  if (reply.status == ParseStatus::kError) {
    throw std::runtime_error("SimClient: unparsable reply: " + reply.error);
  }
  pending_.erase(0, reply.consumed);
  return std::move(reply.value);
}

}  // namespace cuckoograph::redis_sim
