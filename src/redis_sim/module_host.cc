#include "redis_sim/module_host.h"

#include <cctype>
#include <stdexcept>
#include <utility>

namespace cuckoograph::redis_sim {
namespace {

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

bool RedisServerSim::RegisterCommand(std::string_view name, int arity,
                                     CommandHandler handler) {
  std::string key = ToUpper(name);
  const auto [it, inserted] =
      commands_.emplace(key, CommandEntry{arity, std::move(handler)});
  (void)it;
  if (inserted) registration_order_.push_back(std::move(key));
  return inserted;
}

std::vector<std::string> RedisServerSim::CommandNames() const {
  return registration_order_;
}

RespValue RedisServerSim::Dispatch(const std::vector<std::string>& argv) {
  const auto it = commands_.find(ToUpper(argv[0]));
  if (it == commands_.end()) {
    return RespValue::Error("ERR unknown command '" + argv[0] + "'");
  }
  const CommandEntry& entry = it->second;
  const int argc = static_cast<int>(argv.size());
  const bool arity_ok = entry.arity >= 0 ? argc == entry.arity
                                         : argc >= -entry.arity;
  if (!arity_ok) {
    return RespValue::Error("ERR wrong number of arguments for '" +
                            ToLower(argv[0]) + "' command");
  }
  ++stats_.commands_dispatched;
  return entry.handler(argv);
}

std::string RedisServerSim::Feed(std::string_view bytes) {
  stats_.bytes_in += bytes.size();
  buffer_.append(bytes.data(), bytes.size());
  std::string replies;
  size_t pos = 0;
  while (pos < buffer_.size()) {
    const CommandParse parsed =
        ParseCommand(std::string_view(buffer_).substr(pos));
    if (parsed.status == ParseStatus::kIncomplete) break;
    if (parsed.status == ParseStatus::kError) {
      replies += Encode(RespValue::Error("ERR " + parsed.error));
      ++stats_.error_replies;
      pos = buffer_.size();  // drop the poisoned stream
      break;
    }
    pos += parsed.consumed;
    if (parsed.argv.empty()) continue;  // blank line / empty multibulk
    const RespValue reply = Dispatch(parsed.argv);
    if (reply.IsError()) ++stats_.error_replies;
    replies += Encode(reply);
  }
  buffer_.erase(0, pos);
  stats_.bytes_out += replies.size();
  return replies;
}

RespValue SimClient::Execute(const std::vector<std::string>& argv) {
  return RoundTrip(EncodeCommand(argv));
}

RespValue SimClient::ExecuteInline(std::string_view line) {
  std::string request(line);
  request += "\r\n";
  return RoundTrip(request);
}

RespValue SimClient::RoundTrip(std::string_view request) {
  pending_ += server_->Feed(request);
  ParseResult reply = ParseValue(pending_);
  if (reply.status == ParseStatus::kIncomplete) {
    // The sim server always answers a complete request in the same Feed;
    // no reply means the request itself never formed a complete command.
    throw std::runtime_error("SimClient: server produced no complete reply");
  }
  if (reply.status == ParseStatus::kError) {
    throw std::runtime_error("SimClient: unparsable reply: " + reply.error);
  }
  pending_.erase(0, reply.consumed);
  return std::move(reply.value);
}

}  // namespace cuckoograph::redis_sim
