// The CuckooGraph Redis module of Section V-F: a graph store exposed as
// a CG.* command family on a CommandTable. Mirrors how the paper embeds
// the structure in Redis — the graph lives inside the server process,
// and clients reach it only through protocol round trips.
//
// Commands (node ids are decimal uint32 strings; replies follow Redis
// conventions):
//   CG.INSERT u v    -> :1 if the edge is new, :0 if it already existed
//   CG.QUERY  u v    -> :1 if present, :0 if absent
//   CG.DEL    u v    -> :1 if the edge existed (and was removed), :0 if not
//   CG.DELETE u v    -> alias of CG.DEL
//   CG.DEGREE u      -> :out-degree of u (0 when absent)
//   CG.NEIGHBORS u   -> array of bulk strings, u's successors (empty array
//                       when u is absent; order unspecified)
// Malformed node ids answer "-ERR value is not an integer or out of
// range", and the table supplies wrong-arity / unknown-command errors.
#ifndef CUCKOOGRAPH_REDIS_SIM_CUCKOOGRAPH_MODULE_H_
#define CUCKOOGRAPH_REDIS_SIM_CUCKOOGRAPH_MODULE_H_

#include "core/cuckoo_graph.h"
#include "core/graph_store.h"
#include "redis_sim/command_table.h"
#include "redis_sim/module_host.h"

namespace cuckoograph::redis_sim {

// Registers the CG.* command family over any GraphStore (`store` must
// outlive the table's use of the handlers). With a store advertising
// Capabilities().concurrent_mutations (e.g. cuckoo-sharded) the edge-op
// handlers are safe to dispatch from several server workers at once;
// CG.NEIGHBORS drains a cursor and follows the store-wide quiescence
// rule, so concurrent deployments should treat it as an offline command.
void RegisterGraphCommands(CommandTable* table, GraphStore* store);

// The self-contained module: owns a single-threaded CuckooGraph and
// registers it. For the sim and the single-worker server; multi-worker
// servers register a concurrent store via RegisterGraphCommands.
class CuckooGraphModule {
 public:
  // Registers the CG.* command family on `table`. The module must
  // outlive the table's use of the handlers (they capture the graph).
  void Register(CommandTable* table) { RegisterGraphCommands(table, &graph_); }

  // Convenience for the in-process sim wrapper.
  void Register(RedisServerSim* server) { Register(server->command_table()); }

  // The module's graph, e.g. for state checks in tests.
  const CuckooGraph& graph() const { return graph_; }

 private:
  CuckooGraph graph_;
};

}  // namespace cuckoograph::redis_sim

#endif  // CUCKOOGRAPH_REDIS_SIM_CUCKOOGRAPH_MODULE_H_
