// The CuckooGraph Redis module of Section V-F: a CuckooGraph instance
// exposed as a CG.* command family on a RedisServerSim. Mirrors how the
// paper embeds the structure in Redis — the graph lives inside the server
// process, and clients reach it only through protocol round trips.
//
// Commands (node ids are decimal uint32 strings; replies follow Redis
// conventions):
//   CG.INSERT u v    -> :1 if the edge is new, :0 if it already existed
//   CG.QUERY  u v    -> :1 if present, :0 if absent
//   CG.DEL    u v    -> :1 if the edge existed (and was removed), :0 if not
//   CG.DELETE u v    -> alias of CG.DEL
//   CG.DEGREE u      -> :out-degree of u (0 when absent)
//   CG.NEIGHBORS u   -> array of bulk strings, u's successors (empty array
//                       when u is absent; order unspecified)
// Malformed node ids answer "-ERR value is not an integer or out of
// range", and the host supplies wrong-arity / unknown-command errors.
#ifndef CUCKOOGRAPH_REDIS_SIM_CUCKOOGRAPH_MODULE_H_
#define CUCKOOGRAPH_REDIS_SIM_CUCKOOGRAPH_MODULE_H_

#include "core/cuckoo_graph.h"
#include "redis_sim/module_host.h"

namespace cuckoograph::redis_sim {

class CuckooGraphModule {
 public:
  // Registers the CG.* command family on `server`. The module must outlive
  // the server's use of the handlers (they capture `this`).
  void Register(RedisServerSim* server);

  // The module's graph, e.g. for state checks in tests.
  const CuckooGraph& graph() const { return graph_; }

 private:
  CuckooGraph graph_;
};

}  // namespace cuckoograph::redis_sim

#endif  // CUCKOOGRAPH_REDIS_SIM_CUCKOOGRAPH_MODULE_H_
