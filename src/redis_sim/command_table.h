// The transport-agnostic core of the Redis-protocol front door, carved
// out of RedisServerSim so the in-process simulation and the real TCP
// server (src/server/) share exactly one dispatch / protocol code path:
//
//  - CommandTable: command registration (case-insensitive name, Redis
//    arity semantics) and request dispatch. One table serves every
//    connection; its counters are atomic because the TCP server's worker
//    threads dispatch into a shared table concurrently.
//  - RespConnection: everything that is per-connection — the incremental
//    RESP2 parse buffer, reply encoding, protocol-error handling and
//    byte/reply accounting. A transport owns one RespConnection per
//    client and feeds it whatever byte fragments arrive.
//
// Handlers receive their argv as Span<const std::string_view> views into
// the connection's parse storage: valid only for the duration of the
// call, never copied on the way in.
#ifndef CUCKOOGRAPH_REDIS_SIM_COMMAND_TABLE_H_
#define CUCKOOGRAPH_REDIS_SIM_COMMAND_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/span.h"
#include "redis_sim/resp.h"

namespace cuckoograph::redis_sim {

// Registration + arity + dispatch. Registration is a setup-time
// operation (not thread-safe against concurrent Dispatch); Dispatch is
// const and safe from any number of threads once registration is done,
// provided the handlers themselves are (e.g. they target a store
// advertising Capabilities().concurrent_mutations).
class CommandTable {
 public:
  // A registered command body. `argv` is the full request (argv[0] is
  // the command name as the client sent it); the returned value is
  // encoded as the reply. The views borrow the connection's parse
  // buffers — copy anything that must outlive the call.
  using CommandHandler =
      std::function<RespValue(Span<const std::string_view> argv)>;

  // Registers `name` (matched case-insensitively) with Redis arity
  // semantics: a positive `arity` requires exactly that many argv
  // entries (command name included); a negative `arity` requires at
  // least |arity|. Returns false (keeping the existing entry) when the
  // name is already taken.
  bool RegisterCommand(std::string_view name, int arity,
                       CommandHandler handler);

  // Dispatches one parsed request (argv must be non-empty) and returns
  // its reply value: unknown-command and wrong-arity requests produce
  // error replies without reaching a handler.
  RespValue Dispatch(Span<const std::string_view> argv) const;

  // Registered command names (uppercased), in registration order.
  std::vector<std::string> CommandNames() const;

  // Counters summed over every connection dispatching into this table.
  uint64_t commands_dispatched() const {  // handler invocations
    return dispatched_.load(std::memory_order_relaxed);
  }
  uint64_t dispatch_errors() const {  // unknown/arity/handler error replies
    return dispatch_errors_.load(std::memory_order_relaxed);
  }

 private:
  struct CommandEntry {
    int arity = 0;
    CommandHandler handler;
  };

  std::unordered_map<std::string, CommandEntry> commands_;  // key: UPPERCASE
  std::vector<std::string> registration_order_;
  mutable std::atomic<uint64_t> dispatched_{0};
  mutable std::atomic<uint64_t> dispatch_errors_{0};
};

// One client connection's protocol state machine. Stateful like a
// socket: an incomplete trailing command is buffered until a later Feed
// completes it, and several pipelined commands in one Feed produce
// several back-to-back replies. Not thread-safe — a connection belongs
// to exactly one transport thread at a time (the TCP server pins each
// connection to one worker loop).
class RespConnection {
 public:
  explicit RespConnection(const CommandTable* table) : table_(table) {}

  // Feeds request bytes, appending the reply bytes for every completed
  // request to *out. Returns false when the bytes contained a protocol
  // error: the error reply has been appended, the rest of the buffered
  // input is discarded, and a real transport should close after
  // flushing (Redis drops the connection; the in-process sim just keeps
  // feeding — the next Feed starts clean either way).
  bool Feed(std::string_view bytes, std::string* out);

  struct Stats {
    uint64_t commands = 0;         // requests dispatched from this connection
    uint64_t error_replies = 0;    // arity/unknown/protocol/handler errors
    uint64_t protocol_errors = 0;  // subset of error_replies: framing errors
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
  };
  const Stats& stats() const { return stats_; }

  // Request bytes received but not yet forming a complete command.
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  const CommandTable* table_;
  std::string buffer_;  // unconsumed request bytes between Feed calls
  Stats stats_;
};

}  // namespace cuckoograph::redis_sim

#endif  // CUCKOOGRAPH_REDIS_SIM_COMMAND_TABLE_H_
