#include "analytics/csr_snapshot.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.h"

namespace cuckoograph::analytics {

namespace {

// One edge in dense coordinates, carried through the sort that canonicalizes
// the CSR segments.
struct DenseEdge {
  DenseId u = 0;
  DenseId v = 0;
  uint64_t w = 0;
};

std::vector<NodeId> SortedUnique(std::vector<NodeId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

// The snapshot layer's chunked parallel-for over the shared pool;
// num_threads <= 1 is the inline sequential loop.
template <typename Fn>
void SnapParallelFor(const SnapshotOptions& opts, size_t begin, size_t end,
                     Fn&& body) {
  const size_t threads = opts.num_threads == 0 ? 1 : opts.num_threads;
  if (threads > 1) ThreadPool::Shared().EnsureWorkers(threads - 1);
  ThreadPool::Shared().ParallelFor(begin, end,
                                   opts.grain == 0 ? 1 : opts.grain,
                                   threads, std::forward<Fn>(body));
}

// Runs `extract(u, emit)` over every member of `sources` and returns the
// emitted edges in sequential emission order — chunks collect locally and
// are stitched back in range order, so the parallel extraction returns
// the exact vector the one-lane loop would.
template <typename ExtractFn>
std::vector<Edge> ExtractEdgesOrdered(const SnapshotOptions& opts,
                                      const std::vector<NodeId>& sources,
                                      ExtractFn&& extract) {
  std::vector<Edge> edges;
  if (opts.num_threads <= 1) {
    for (const NodeId u : sources) extract(u, edges);
    return edges;
  }
  std::mutex mu;
  std::vector<std::pair<size_t, std::vector<Edge>>> chunks;
  SnapParallelFor(opts, 0, sources.size(), [&](size_t begin, size_t end) {
    std::vector<Edge> local;
    for (size_t i = begin; i < end; ++i) extract(sources[i], local);
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(begin, std::move(local));
  });
  std::sort(chunks.begin(), chunks.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t total = 0;
  for (const auto& [begin, local] : chunks) total += local.size();
  edges.reserve(total);
  for (auto& [begin, local] : chunks) {
    edges.insert(edges.end(), local.begin(), local.end());
  }
  return edges;
}

// Pulls per-edge weights, one EdgeWeight probe per edge — disjoint
// writes, so the parallel fill is the sequential vector.
std::vector<uint64_t> PullWeights(const GraphStore& store,
                                  const std::vector<Edge>& edges,
                                  const SnapshotOptions& opts) {
  std::vector<uint64_t> weights(edges.size());
  SnapParallelFor(opts, 0, edges.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      weights[i] = store.EdgeWeight(edges[i].u, edges[i].v);
    }
  });
  return weights;
}

}  // namespace

CsrSnapshot CsrSnapshot::Build(std::vector<Edge> edges,
                               std::vector<uint64_t> weights,
                               std::vector<NodeId> universe,
                               const SnapshotOptions& opts) {
  CsrSnapshot snap;
  snap.originals_ = std::move(universe);
  const size_t n = snap.originals_.size();
  snap.offsets_.assign(n + 1, 0);
  const bool weighted = !weights.empty();

  if (opts.num_threads <= 1) {
    // The sequential reference builder: global (u, v) sort, then one
    // dedup-accumulate pass.
    std::vector<DenseEdge> dense(edges.size());
    for (size_t i = 0; i < edges.size(); ++i) {
      dense[i].u = snap.ToDense(edges[i].u);
      dense[i].v = snap.ToDense(edges[i].v);
      dense[i].w = weighted ? weights[i] : 1;
    }
    std::sort(dense.begin(), dense.end(),
              [](const DenseEdge& a, const DenseEdge& b) {
                return a.u != b.u ? a.u < b.u : a.v < b.v;
              });

    snap.neighbors_.reserve(dense.size());
    if (weighted) snap.weights_.reserve(dense.size());
    for (size_t i = 0; i < dense.size(); ++i) {
      if (i > 0 && dense[i].u == dense[i - 1].u &&
          dense[i].v == dense[i - 1].v) {
        // Duplicate arrival: accumulate, matching the weighted store.
        if (weighted) snap.weights_.back() += dense[i].w;
        continue;
      }
      snap.neighbors_.push_back(dense[i].v);
      if (weighted) snap.weights_.push_back(dense[i].w);
      ++snap.offsets_[dense[i].u + 1];
    }
    for (size_t u = 0; u < n; ++u) {
      snap.offsets_[u + 1] += snap.offsets_[u];
    }
    return snap;
  }

  // The parallel builder: atomic degree count -> prefix sum -> scatter ->
  // per-segment sort/dedup -> second prefix sum -> compact. Identical
  // output to the sequential path: each segment ends up ascending and
  // unique either way, and duplicate weights sum to the same uint64 in
  // any accumulation order.
  const size_t m = edges.size();
  std::vector<DenseEdge> dense(m);
  SnapParallelFor(opts, 0, m, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      dense[i].u = snap.ToDense(edges[i].u);
      dense[i].v = snap.ToDense(edges[i].v);
      dense[i].w = weighted ? weights[i] : 1;
    }
  });

  auto counts = std::make_unique<std::atomic<size_t>[]>(n);
  for (size_t u = 0; u < n; ++u) {
    counts[u].store(0, std::memory_order_relaxed);
  }
  SnapParallelFor(opts, 0, m, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      counts[dense[i].u].fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::vector<size_t> raw_offsets(n + 1, 0);  // pre-dedup segment bounds
  for (size_t u = 0; u < n; ++u) {
    raw_offsets[u + 1] =
        raw_offsets[u] + counts[u].load(std::memory_order_relaxed);
  }
  // Reuse counts[] as the scatter cursors.
  for (size_t u = 0; u < n; ++u) {
    counts[u].store(raw_offsets[u], std::memory_order_relaxed);
  }
  std::vector<std::pair<DenseId, uint64_t>> scratch(m);  // (v, w) per slot
  SnapParallelFor(opts, 0, m, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const size_t slot =
          counts[dense[i].u].fetch_add(1, std::memory_order_relaxed);
      scratch[slot] = {dense[i].v, dense[i].w};
    }
  });

  // Sort each vertex's segment by target and count its unique targets;
  // segments are disjoint, so lanes never touch the same slots.
  std::vector<size_t> uniq(n, 0);
  SnapParallelFor(opts, 0, n, [&](size_t begin, size_t end) {
    for (size_t u = begin; u < end; ++u) {
      const auto seg_begin = scratch.begin() +
                             static_cast<ptrdiff_t>(raw_offsets[u]);
      const auto seg_end = scratch.begin() +
                           static_cast<ptrdiff_t>(raw_offsets[u + 1]);
      std::sort(seg_begin, seg_end,
                [](const auto& a, const auto& b) {
                  return a.first < b.first;
                });
      size_t distinct = 0;
      DenseId last = 0;
      for (auto it = seg_begin; it != seg_end; ++it) {
        if (distinct == 0 || it->first != last) {
          ++distinct;
          last = it->first;
        }
      }
      uniq[u] = distinct;
    }
  });
  for (size_t u = 0; u < n; ++u) {
    snap.offsets_[u + 1] = snap.offsets_[u] + uniq[u];
  }

  snap.neighbors_.resize(snap.offsets_[n]);
  if (weighted) snap.weights_.resize(snap.offsets_[n]);
  SnapParallelFor(opts, 0, n, [&](size_t begin, size_t end) {
    for (size_t u = begin; u < end; ++u) {
      size_t out = snap.offsets_[u];
      for (size_t i = raw_offsets[u]; i < raw_offsets[u + 1]; ++i) {
        const auto& [v, w] = scratch[i];
        if (out > snap.offsets_[u] && snap.neighbors_[out - 1] == v) {
          if (weighted) snap.weights_[out - 1] += w;
          continue;
        }
        snap.neighbors_[out] = v;
        if (weighted) snap.weights_[out] = w;
        ++out;
      }
    }
  });
  return snap;
}

CsrSnapshot CsrSnapshot::FromStore(const GraphStore& store,
                                   SnapshotOptions opts) {
  // Quiesced-snapshot contract (see the header): the build drains cursors
  // across the whole store, so no writer may run concurrently — not even
  // on a store whose Capabilities() advertise concurrent_mutations. The
  // edge-count recheck below catches a mutating store after the fact.
  // (The parallel path leans on the same contract: concurrent const reads
  // of a quiesced store race nothing.)
  const size_t edges_at_start = store.NumEdges();

  // Drain the node cursor fully before opening neighbor cursors, and pull
  // weights only after every cursor is closed.
  std::vector<NodeId> sources;
  sources.reserve(store.NumNodes());
  store.ForEachNode([&sources](NodeId u) { sources.push_back(u); });

  std::vector<Edge> edges = ExtractEdgesOrdered(
      opts, sources, [&store](NodeId u, std::vector<Edge>& out) {
        store.ForEachNeighbor(u, [&out, u](NodeId v) {
          out.push_back(Edge{u, v});
        });
      });

  std::vector<uint64_t> weights;
  if (opts.with_weights && !edges.empty()) {
    weights = PullWeights(store, edges, opts);
  }

  if (store.NumEdges() != edges_at_start || edges.size() != edges_at_start) {
    throw std::logic_error(
        "CsrSnapshot::FromStore: store mutated during the snapshot build; "
        "quiesce writers before snapshotting (see csr_snapshot.h)");
  }

  // The universe is every endpoint: sinks holding no out-edges still need
  // dense ids because neighbor segments point at them.
  std::vector<NodeId> universe;
  universe.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    universe.push_back(e.u);
    universe.push_back(e.v);
  }
  return Build(std::move(edges), std::move(weights),
               SortedUnique(std::move(universe)), opts);
}

CsrSnapshot CsrSnapshot::FromStore(const GraphStore& store,
                                   Span<const NodeId> nodes,
                                   SnapshotOptions opts) {
  // Same quiesced-snapshot contract as the full-store overload; the
  // induced walk only sees the subgraph, so the store-wide edge count is
  // the recheck (a mutation outside `nodes` still races the cursors).
  const size_t edges_at_start = store.NumEdges();

  std::vector<NodeId> universe =
      SortedUnique(std::vector<NodeId>(nodes.begin(), nodes.end()));
  const auto member = [&universe](NodeId v) {
    return std::binary_search(universe.begin(), universe.end(), v);
  };

  std::vector<Edge> edges = ExtractEdgesOrdered(
      opts, universe, [&store, &member](NodeId u, std::vector<Edge>& out) {
        store.ForEachNeighbor(u, [&out, &member, u](NodeId v) {
          if (member(v)) out.push_back(Edge{u, v});
        });
      });

  if (store.NumEdges() != edges_at_start) {
    throw std::logic_error(
        "CsrSnapshot::FromStore: store mutated during the induced "
        "snapshot build; quiesce writers before snapshotting (see "
        "csr_snapshot.h)");
  }

  std::vector<uint64_t> weights;
  if (opts.with_weights && !edges.empty()) {
    weights = PullWeights(store, edges, opts);
  }
  return Build(std::move(edges), std::move(weights), std::move(universe),
               opts);
}

CsrSnapshot CsrSnapshot::FromEdges(Span<const Edge> edges,
                                   Span<const uint64_t> weights,
                                   SnapshotOptions opts) {
  if (!weights.empty() && weights.size() != edges.size()) {
    throw std::invalid_argument(
        "CsrSnapshot::FromEdges: weights must be empty or parallel to "
        "edges");
  }
  std::vector<NodeId> universe;
  universe.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    universe.push_back(e.u);
    universe.push_back(e.v);
  }
  return Build(std::vector<Edge>(edges.begin(), edges.end()),
               std::vector<uint64_t>(weights.begin(), weights.end()),
               SortedUnique(std::move(universe)), opts);
}

bool CsrSnapshot::HasEdge(DenseId u, DenseId v) const {
  const DenseId* begin = neighbors_.data() + offsets_[u];
  const DenseId* end = neighbors_.data() + offsets_[u + 1];
  return std::binary_search(begin, end, v);
}

DenseId CsrSnapshot::ToDense(NodeId original) const {
  const auto it =
      std::lower_bound(originals_.begin(), originals_.end(), original);
  if (it == originals_.end() || *it != original) return kAbsent;
  return static_cast<DenseId>(it - originals_.begin());
}

std::vector<Edge> CsrSnapshot::ExtractEdges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (DenseId u = 0; u < num_nodes(); ++u) {
    for (const DenseId v : Neighbors(u)) {
      edges.push_back(Edge{ToOriginal(u), ToOriginal(v)});
    }
  }
  return edges;
}

size_t CsrSnapshot::MemoryBytes() const {
  return offsets_.size() * sizeof(size_t) +
         neighbors_.size() * sizeof(DenseId) +
         weights_.size() * sizeof(uint64_t) +
         originals_.size() * sizeof(NodeId);
}

}  // namespace cuckoograph::analytics
