#include "analytics/csr_snapshot.h"

#include <algorithm>
#include <stdexcept>

namespace cuckoograph::analytics {

namespace {

// One edge in dense coordinates, carried through the sort that canonicalizes
// the CSR segments.
struct DenseEdge {
  DenseId u = 0;
  DenseId v = 0;
  uint64_t w = 0;
};

std::vector<NodeId> SortedUnique(std::vector<NodeId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace

CsrSnapshot CsrSnapshot::Build(std::vector<Edge> edges,
                               std::vector<uint64_t> weights,
                               std::vector<NodeId> universe) {
  CsrSnapshot snap;
  snap.originals_ = std::move(universe);
  const size_t n = snap.originals_.size();
  snap.offsets_.assign(n + 1, 0);
  const bool weighted = !weights.empty();

  std::vector<DenseEdge> dense(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    dense[i].u = snap.ToDense(edges[i].u);
    dense[i].v = snap.ToDense(edges[i].v);
    dense[i].w = weighted ? weights[i] : 1;
  }
  std::sort(dense.begin(), dense.end(),
            [](const DenseEdge& a, const DenseEdge& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });

  snap.neighbors_.reserve(dense.size());
  if (weighted) snap.weights_.reserve(dense.size());
  for (size_t i = 0; i < dense.size(); ++i) {
    if (i > 0 && dense[i].u == dense[i - 1].u && dense[i].v == dense[i - 1].v) {
      // Duplicate arrival: accumulate, matching the weighted store.
      if (weighted) snap.weights_.back() += dense[i].w;
      continue;
    }
    snap.neighbors_.push_back(dense[i].v);
    if (weighted) snap.weights_.push_back(dense[i].w);
    ++snap.offsets_[dense[i].u + 1];
  }
  for (size_t u = 0; u < n; ++u) snap.offsets_[u + 1] += snap.offsets_[u];
  return snap;
}

CsrSnapshot CsrSnapshot::FromStore(const GraphStore& store,
                                   SnapshotOptions opts) {
  // Quiesced-snapshot contract (see the header): the build drains cursors
  // across the whole store, so no writer may run concurrently — not even
  // on a store whose Capabilities() advertise concurrent_mutations. The
  // edge-count recheck below catches a mutating store after the fact.
  const size_t edges_at_start = store.NumEdges();

  // Drain the node cursor fully before opening neighbor cursors, and pull
  // weights only after every cursor is closed.
  std::vector<NodeId> sources;
  sources.reserve(store.NumNodes());
  store.ForEachNode([&sources](NodeId u) { sources.push_back(u); });

  std::vector<Edge> edges;
  edges.reserve(store.NumEdges());
  for (const NodeId u : sources) {
    store.ForEachNeighbor(u, [&edges, u](NodeId v) {
      edges.push_back(Edge{u, v});
    });
  }

  std::vector<uint64_t> weights;
  if (opts.with_weights && !edges.empty()) {
    weights.reserve(edges.size());
    for (const Edge& e : edges) weights.push_back(store.EdgeWeight(e.u, e.v));
  }

  if (store.NumEdges() != edges_at_start || edges.size() != edges_at_start) {
    throw std::logic_error(
        "CsrSnapshot::FromStore: store mutated during the snapshot build; "
        "quiesce writers before snapshotting (see csr_snapshot.h)");
  }

  // The universe is every endpoint: sinks holding no out-edges still need
  // dense ids because neighbor segments point at them.
  std::vector<NodeId> universe;
  universe.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    universe.push_back(e.u);
    universe.push_back(e.v);
  }
  return Build(std::move(edges), std::move(weights),
               SortedUnique(std::move(universe)));
}

CsrSnapshot CsrSnapshot::FromStore(const GraphStore& store,
                                   Span<const NodeId> nodes,
                                   SnapshotOptions opts) {
  // Same quiesced-snapshot contract as the full-store overload; the
  // induced walk only sees the subgraph, so the store-wide edge count is
  // the recheck (a mutation outside `nodes` still races the cursors).
  const size_t edges_at_start = store.NumEdges();

  std::vector<NodeId> universe =
      SortedUnique(std::vector<NodeId>(nodes.begin(), nodes.end()));
  const auto member = [&universe](NodeId v) {
    return std::binary_search(universe.begin(), universe.end(), v);
  };

  std::vector<Edge> edges;
  for (const NodeId u : universe) {
    store.ForEachNeighbor(u, [&edges, &member, u](NodeId v) {
      if (member(v)) edges.push_back(Edge{u, v});
    });
  }

  if (store.NumEdges() != edges_at_start) {
    throw std::logic_error(
        "CsrSnapshot::FromStore: store mutated during the induced "
        "snapshot build; quiesce writers before snapshotting (see "
        "csr_snapshot.h)");
  }

  std::vector<uint64_t> weights;
  if (opts.with_weights && !edges.empty()) {
    weights.reserve(edges.size());
    for (const Edge& e : edges) weights.push_back(store.EdgeWeight(e.u, e.v));
  }
  return Build(std::move(edges), std::move(weights), std::move(universe));
}

CsrSnapshot CsrSnapshot::FromEdges(Span<const Edge> edges,
                                   Span<const uint64_t> weights) {
  if (!weights.empty() && weights.size() != edges.size()) {
    throw std::invalid_argument(
        "CsrSnapshot::FromEdges: weights must be empty or parallel to "
        "edges");
  }
  std::vector<NodeId> universe;
  universe.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    universe.push_back(e.u);
    universe.push_back(e.v);
  }
  return Build(std::vector<Edge>(edges.begin(), edges.end()),
               std::vector<uint64_t>(weights.begin(), weights.end()),
               SortedUnique(std::move(universe)));
}

bool CsrSnapshot::HasEdge(DenseId u, DenseId v) const {
  const DenseId* begin = neighbors_.data() + offsets_[u];
  const DenseId* end = neighbors_.data() + offsets_[u + 1];
  return std::binary_search(begin, end, v);
}

DenseId CsrSnapshot::ToDense(NodeId original) const {
  const auto it =
      std::lower_bound(originals_.begin(), originals_.end(), original);
  if (it == originals_.end() || *it != original) return kAbsent;
  return static_cast<DenseId>(it - originals_.begin());
}

std::vector<Edge> CsrSnapshot::ExtractEdges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (DenseId u = 0; u < num_nodes(); ++u) {
    for (const DenseId v : Neighbors(u)) {
      edges.push_back(Edge{ToOriginal(u), ToOriginal(v)});
    }
  }
  return edges;
}

size_t CsrSnapshot::MemoryBytes() const {
  return offsets_.size() * sizeof(size_t) +
         neighbors_.size() * sizeof(DenseId) +
         weights_.size() * sizeof(uint64_t) +
         originals_.size() * sizeof(NodeId);
}

}  // namespace cuckoograph::analytics
