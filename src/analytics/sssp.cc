#include "analytics/sssp.h"

#include <queue>
#include <utility>
#include <vector>

namespace cuckoograph::analytics::sssp {

namespace {

constexpr uint64_t kInfinite = ~uint64_t{0};

uint64_t WeightOf(const CsrSnapshot& graph, DenseId u, size_t slot) {
  return graph.has_weights() ? graph.Weights(u)[slot] : 1;
}

KernelResult ToResult(const CsrSnapshot& graph,
                      const std::vector<uint64_t>& dist) {
  KernelResult result;
  result.per_node.assign(graph.num_nodes(), kUnreached);
  for (DenseId v = 0; v < graph.num_nodes(); ++v) {
    if (dist[v] == kInfinite) continue;
    result.per_node[v] = static_cast<double>(dist[v]);
    ++result.aggregate;
  }
  return result;
}

}  // namespace

KernelResult Run(const CsrSnapshot& graph, Span<const NodeId> sources) {
  std::vector<uint64_t> dist(graph.num_nodes(), kInfinite);
  using HeapEntry = std::pair<uint64_t, DenseId>;  // (distance, vertex)
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  for (const DenseId s : ResolveSources(graph, sources)) {
    dist[s] = 0;
    heap.emplace(0, s);
  }
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d != dist[u]) continue;  // stale entry
    const Span<const DenseId> neighbors = graph.Neighbors(u);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      const DenseId v = neighbors[i];
      const uint64_t candidate = d + WeightOf(graph, u, i);
      if (candidate < dist[v]) {
        dist[v] = candidate;
        heap.emplace(candidate, v);
      }
    }
  }
  return ToResult(graph, dist);
}

KernelResult RunDeltaStepping(const CsrSnapshot& graph,
                              Span<const NodeId> sources, uint64_t delta) {
  if (delta == 0) delta = 1;
  std::vector<uint64_t> dist(graph.num_nodes(), kInfinite);
  std::vector<std::vector<DenseId>> buckets;
  const auto push = [&buckets, delta](DenseId v, uint64_t d) {
    const size_t idx = static_cast<size_t>(d / delta);
    if (idx >= buckets.size()) buckets.resize(idx + 1);
    buckets[idx].push_back(v);
  };

  for (const DenseId s : ResolveSources(graph, sources)) {
    dist[s] = 0;
    push(s, 0);
  }

  for (size_t i = 0; i < buckets.size(); ++i) {
    // Relaxations may refill bucket i while it is being drained.
    while (!buckets[i].empty()) {
      std::vector<DenseId> batch;
      batch.swap(buckets[i]);
      for (const DenseId u : batch) {
        const uint64_t d = dist[u];
        if (d / delta != i) continue;  // settled into an earlier bucket
        const Span<const DenseId> neighbors = graph.Neighbors(u);
        for (size_t slot = 0; slot < neighbors.size(); ++slot) {
          const DenseId v = neighbors[slot];
          const uint64_t candidate = d + WeightOf(graph, u, slot);
          if (candidate < dist[v]) {
            dist[v] = candidate;
            push(v, candidate);
          }
        }
      }
    }
  }
  return ToResult(graph, dist);
}

}  // namespace cuckoograph::analytics::sssp
