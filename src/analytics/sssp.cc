#include "analytics/sssp.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <queue>
#include <utility>
#include <vector>

namespace cuckoograph::analytics::sssp {

namespace {

constexpr uint64_t kInfinite = ~uint64_t{0};

uint64_t WeightOf(const CsrSnapshot& graph, DenseId u, size_t slot) {
  return graph.has_weights() ? graph.Weights(u)[slot] : 1;
}

KernelResult ToResult(const CsrSnapshot& graph,
                      const std::vector<uint64_t>& dist) {
  KernelResult result;
  result.per_node.assign(graph.num_nodes(), kUnreached);
  for (DenseId v = 0; v < graph.num_nodes(); ++v) {
    if (dist[v] == kInfinite) continue;
    result.per_node[v] = static_cast<double>(dist[v]);
    ++result.aggregate;
  }
  return result;
}

KernelResult RunDijkstra(const CsrSnapshot& graph,
                         Span<const NodeId> sources) {
  std::vector<uint64_t> dist(graph.num_nodes(), kInfinite);
  using HeapEntry = std::pair<uint64_t, DenseId>;  // (distance, vertex)
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  for (const DenseId s : ResolveSources(graph, sources)) {
    dist[s] = 0;
    heap.emplace(0, s);
  }
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d != dist[u]) continue;  // stale entry
    const Span<const DenseId> neighbors = graph.Neighbors(u);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      const DenseId v = neighbors[i];
      const uint64_t candidate = d + WeightOf(graph, u, i);
      if (candidate < dist[v]) {
        dist[v] = candidate;
        heap.emplace(candidate, v);
      }
    }
  }
  return ToResult(graph, dist);
}

KernelResult RunDeltaSequential(const CsrSnapshot& graph,
                                Span<const NodeId> sources, uint64_t delta) {
  std::vector<uint64_t> dist(graph.num_nodes(), kInfinite);
  std::vector<std::vector<DenseId>> buckets;
  const auto push = [&buckets, delta](DenseId v, uint64_t d) {
    const size_t idx = static_cast<size_t>(d / delta);
    if (idx >= buckets.size()) buckets.resize(idx + 1);
    buckets[idx].push_back(v);
  };

  for (const DenseId s : ResolveSources(graph, sources)) {
    dist[s] = 0;
    push(s, 0);
  }

  for (size_t i = 0; i < buckets.size(); ++i) {
    // Relaxations may refill bucket i while it is being drained.
    while (!buckets[i].empty()) {
      std::vector<DenseId> batch;
      batch.swap(buckets[i]);
      for (const DenseId u : batch) {
        const uint64_t d = dist[u];
        if (d / delta != i) continue;  // settled into an earlier bucket
        const Span<const DenseId> neighbors = graph.Neighbors(u);
        for (size_t slot = 0; slot < neighbors.size(); ++slot) {
          const DenseId v = neighbors[slot];
          const uint64_t candidate = d + WeightOf(graph, u, slot);
          if (candidate < dist[v]) {
            dist[v] = candidate;
            push(v, candidate);
          }
        }
      }
    }
  }
  return ToResult(graph, dist);
}

// Frontier-parallel delta-stepping. Each bucket batch is relaxed by the
// kernel lanes: a CAS-min loop settles dist[v] (relaxed order — the
// ParallelFor barrier publishes cross-batch, and the CAS itself arbitrates
// within a batch), and the winning lane queues v for its new bucket. A
// lane may read a tentative dist[u] that another lane is lowering in the
// same batch; the lowered value re-queues u, so the label-correcting fixed
// point — the unique shortest-distance vector — is unchanged.
KernelResult RunDeltaParallel(const CsrSnapshot& graph,
                              Span<const NodeId> sources, uint64_t delta,
                              const KernelOptions& opts) {
  const size_t n = graph.num_nodes();
  auto dist = std::make_unique<std::atomic<uint64_t>[]>(n);
  for (size_t v = 0; v < n; ++v) {
    dist[v].store(kInfinite, std::memory_order_relaxed);
  }

  std::vector<std::vector<DenseId>> buckets;
  std::mutex buckets_mu;
  const auto push_locked = [&buckets, delta](DenseId v, uint64_t d) {
    const size_t idx = static_cast<size_t>(d / delta);
    if (idx >= buckets.size()) buckets.resize(idx + 1);
    buckets[idx].push_back(v);
  };

  for (const DenseId s : ResolveSources(graph, sources)) {
    dist[s].store(0, std::memory_order_relaxed);
    push_locked(s, 0);
  }

  std::vector<DenseId> batch;
  for (size_t i = 0; i < buckets.size(); ++i) {
    while (!buckets[i].empty()) {
      batch.clear();
      batch.swap(buckets[i]);
      KernelParallelFor(opts, 0, batch.size(), [&](size_t begin,
                                                   size_t end) {
        // (vertex, settled distance) pairs this chunk won, merged into
        // the shared buckets once per chunk.
        std::vector<std::pair<DenseId, uint64_t>> won;
        for (size_t b = begin; b < end; ++b) {
          const DenseId u = batch[b];
          const uint64_t d = dist[u].load(std::memory_order_relaxed);
          if (d == kInfinite || d / delta != i) continue;
          const Span<const DenseId> neighbors = graph.Neighbors(u);
          for (size_t slot = 0; slot < neighbors.size(); ++slot) {
            const DenseId v = neighbors[slot];
            const uint64_t candidate = d + WeightOf(graph, u, slot);
            uint64_t current = dist[v].load(std::memory_order_relaxed);
            while (candidate < current) {
              if (dist[v].compare_exchange_weak(
                      current, candidate, std::memory_order_relaxed)) {
                won.emplace_back(v, candidate);
                break;
              }
            }
          }
        }
        if (!won.empty()) {
          std::lock_guard<std::mutex> lock(buckets_mu);
          for (const auto& [v, d] : won) push_locked(v, d);
        }
      });
    }
  }

  KernelResult result;
  result.per_node.assign(n, kUnreached);
  for (size_t v = 0; v < n; ++v) {
    const uint64_t d = dist[v].load(std::memory_order_relaxed);
    if (d == kInfinite) continue;
    result.per_node[v] = static_cast<double>(d);
    ++result.aggregate;
  }
  return result;
}

}  // namespace

KernelResult Run(const CsrSnapshot& graph, Span<const NodeId> sources,
                 const KernelOptions& opts) {
  if (opts.num_threads <= 1) return RunDijkstra(graph, sources);
  return RunDeltaParallel(graph, sources, opts.delta == 0 ? 1 : opts.delta,
                          opts);
}

KernelResult RunDeltaStepping(const CsrSnapshot& graph,
                              Span<const NodeId> sources, uint64_t delta,
                              const KernelOptions& opts) {
  if (delta == 0) delta = 1;
  if (opts.num_threads <= 1) {
    return RunDeltaSequential(graph, sources, delta);
  }
  return RunDeltaParallel(graph, sources, delta, opts);
}

}  // namespace cuckoograph::analytics::sssp
