#include "analytics/betweenness.h"

#include <numeric>
#include <vector>

namespace cuckoograph::analytics::betweenness {

KernelResult Run(const CsrSnapshot& graph, Span<const NodeId> sources,
                 const KernelOptions& opts) {
  (void)opts;  // sequential at any budget — see the header contract
  const size_t n = graph.num_nodes();
  KernelResult result;
  result.per_node.assign(n, 0.0);

  std::vector<DenseId> pivots;
  if (sources.empty()) {
    pivots.resize(n);
    std::iota(pivots.begin(), pivots.end(), 0);
  } else {
    pivots = ResolveSources(graph, sources);
  }

  // Brandes scratch, reused across pivots.
  std::vector<int64_t> dist(n);
  std::vector<double> sigma(n);   // shortest-path counts
  std::vector<double> delta(n);   // accumulated dependencies
  std::vector<std::vector<DenseId>> preds(n);
  std::vector<DenseId> order;     // BFS visit order
  order.reserve(n);

  for (const DenseId s : pivots) {
    dist.assign(n, -1);
    sigma.assign(n, 0.0);
    delta.assign(n, 0.0);
    for (auto& p : preds) p.clear();
    order.clear();

    dist[s] = 0;
    sigma[s] = 1.0;
    order.push_back(s);
    for (size_t head = 0; head < order.size(); ++head) {
      const DenseId u = order[head];
      for (const DenseId v : graph.Neighbors(u)) {
        if (dist[v] < 0) {
          dist[v] = dist[u] + 1;
          order.push_back(v);
        }
        if (dist[v] == dist[u] + 1) {
          sigma[v] += sigma[u];
          preds[v].push_back(u);
        }
      }
    }

    // Dependency accumulation in reverse BFS order.
    for (size_t i = order.size(); i-- > 1;) {
      const DenseId w = order[i];
      const double coefficient = (1.0 + delta[w]) / sigma[w];
      for (const DenseId v : preds[w]) delta[v] += sigma[v] * coefficient;
      result.per_node[w] += delta[w];
    }
    ++result.aggregate;
  }
  return result;
}

}  // namespace cuckoograph::analytics::betweenness
