// PageRank kernel (Figure 14, Section V-E5).
#ifndef CUCKOOGRAPH_ANALYTICS_PAGERANK_H_
#define CUCKOOGRAPH_ANALYTICS_PAGERANK_H_

#include <cstddef>

#include "analytics/kernel.h"

namespace cuckoograph::analytics::pagerank {

// Power iteration with uniform teleport and dangling mass redistributed
// uniformly. per_node = score (sums to 1), aggregate = iterations run.
KernelResult RunIterations(const CsrSnapshot& graph, size_t iterations,
                           double damping = 0.85);

// The figure's configuration: 100 iterations, damping 0.85. `sources` is
// ignored — PageRank scores the whole snapshot.
KernelResult Run(const CsrSnapshot& graph, Span<const NodeId> sources);

}  // namespace cuckoograph::analytics::pagerank

#endif  // CUCKOOGRAPH_ANALYTICS_PAGERANK_H_
