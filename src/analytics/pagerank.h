// PageRank kernel (Figure 14, Section V-E5).
#ifndef CUCKOOGRAPH_ANALYTICS_PAGERANK_H_
#define CUCKOOGRAPH_ANALYTICS_PAGERANK_H_

#include <cstddef>

#include "analytics/kernel.h"

namespace cuckoograph::analytics::pagerank {

// Power iteration with uniform teleport and dangling mass redistributed
// uniformly. per_node = score (sums to 1), aggregate = iterations run.
//
// A multi-thread budget runs the vertex-parallel scatter: lanes push rank
// shares through CAS-accumulated atomic doubles. The arithmetic is the
// sequential kernel's — only the order floating-point sums associate in
// changes, so scores agree with the 1-thread reference to ~1e-12 per node
// per 100 iterations (the differential suite allows 1e-9).
KernelResult RunIterations(const CsrSnapshot& graph, size_t iterations,
                           double damping = 0.85,
                           const KernelOptions& opts = {});

// The figure's configuration: 100 iterations, damping 0.85. `sources` is
// ignored — PageRank scores the whole snapshot.
KernelResult Run(const CsrSnapshot& graph, Span<const NodeId> sources,
                 const KernelOptions& opts = {});

}  // namespace cuckoograph::analytics::pagerank

#endif  // CUCKOOGRAPH_ANALYTICS_PAGERANK_H_
