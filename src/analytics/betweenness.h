// Betweenness-centrality kernel (Figure 15, Section V-E6): the Brandes
// algorithm over unweighted shortest paths.
#ifndef CUCKOOGRAPH_ANALYTICS_BETWEENNESS_H_
#define CUCKOOGRAPH_ANALYTICS_BETWEENNESS_H_

#include "analytics/kernel.h"

namespace cuckoograph::analytics::betweenness {

// per_node = directed betweenness (sum of pair dependencies, endpoints
// excluded, unnormalized). `sources` selects the Brandes pivots — the
// exact score needs every vertex, which an empty span requests; a subset
// yields the standard pivot approximation. aggregate = pivots used.
//
// Runs sequentially at any opts.num_threads: pivot dependency
// accumulation orders floating-point sums, and the kernel keeps the
// sequential order as its score contract. The options are accepted for
// the uniform kernel surface.
KernelResult Run(const CsrSnapshot& graph, Span<const NodeId> sources,
                 const KernelOptions& opts = {});

}  // namespace cuckoograph::analytics::betweenness

#endif  // CUCKOOGRAPH_ANALYTICS_BETWEENNESS_H_
