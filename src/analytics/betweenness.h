// Betweenness-centrality kernel (Figure 15, Section V-E6): the Brandes
// algorithm over unweighted shortest paths.
#ifndef CUCKOOGRAPH_ANALYTICS_BETWEENNESS_H_
#define CUCKOOGRAPH_ANALYTICS_BETWEENNESS_H_

#include "analytics/kernel.h"

namespace cuckoograph::analytics::betweenness {

// per_node = directed betweenness (sum of pair dependencies, endpoints
// excluded, unnormalized). `sources` selects the Brandes pivots — the
// exact score needs every vertex, which an empty span requests; a subset
// yields the standard pivot approximation. aggregate = pivots used.
KernelResult Run(const CsrSnapshot& graph, Span<const NodeId> sources);

}  // namespace cuckoograph::analytics::betweenness

#endif  // CUCKOOGRAPH_ANALYTICS_BETWEENNESS_H_
