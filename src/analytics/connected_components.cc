#include "analytics/connected_components.h"

#include <algorithm>
#include <vector>

namespace cuckoograph::analytics::connected_components {

namespace {

constexpr uint32_t kUnindexed = ~uint32_t{0};

// The explicit DFS stack: vertex plus the adjacency slot to resume at.
struct Frame {
  DenseId v;
  size_t next_child;
};

}  // namespace

KernelResult Run(const CsrSnapshot& graph, Span<const NodeId> sources,
                 const KernelOptions& opts) {
  (void)opts;  // sequential at any budget — see the header contract
  (void)sources;
  const size_t n = graph.num_nodes();
  KernelResult result;
  result.per_node.assign(n, 0.0);

  std::vector<uint32_t> index(n, kUnindexed);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<DenseId> scc_stack;
  std::vector<Frame> call;
  uint32_t next_index = 0;

  for (DenseId root = 0; root < n; ++root) {
    if (index[root] != kUnindexed) continue;
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = true;
    call.push_back(Frame{root, 0});

    while (!call.empty()) {
      const DenseId v = call.back().v;
      const Span<const DenseId> neighbors = graph.Neighbors(v);
      if (call.back().next_child < neighbors.size()) {
        const DenseId w = neighbors[call.back().next_child++];
        if (index[w] == kUnindexed) {
          index[w] = lowlink[w] = next_index++;
          scc_stack.push_back(w);
          on_stack[w] = true;
          call.push_back(Frame{w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }
      // v's subtree is done: fold its lowlink into the parent and pop the
      // completed SCC if v is its root.
      call.pop_back();
      if (!call.empty()) {
        lowlink[call.back().v] = std::min(lowlink[call.back().v], lowlink[v]);
      }
      if (lowlink[v] == index[v]) {
        while (true) {
          const DenseId w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[w] = false;
          result.per_node[w] = static_cast<double>(result.aggregate);
          if (w == v) break;
        }
        ++result.aggregate;
      }
    }
  }
  return result;
}

}  // namespace cuckoograph::analytics::connected_components
