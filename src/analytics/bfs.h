// BFS kernel (Figure 10, Section V-E1).
#ifndef CUCKOOGRAPH_ANALYTICS_BFS_H_
#define CUCKOOGRAPH_ANALYTICS_BFS_H_

#include "analytics/kernel.h"

namespace cuckoograph::analytics::bfs {

// Multi-source BFS. per_node = hop distance from the nearest source
// (kUnreached for vertices no source reaches), aggregate = vertices
// reached. An empty source set reaches nothing.
KernelResult Run(const CsrSnapshot& graph, Span<const NodeId> sources);

}  // namespace cuckoograph::analytics::bfs

#endif  // CUCKOOGRAPH_ANALYTICS_BFS_H_
