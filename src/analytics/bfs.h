// BFS kernel (Figure 10, Section V-E1).
#ifndef CUCKOOGRAPH_ANALYTICS_BFS_H_
#define CUCKOOGRAPH_ANALYTICS_BFS_H_

#include <vector>

#include "analytics/kernel.h"

namespace cuckoograph::analytics::bfs {

// parents[] value of vertices outside the BFS tree (sources are their own
// parent).
inline constexpr DenseId kNoParent = ~DenseId{0};

// Multi-source BFS. per_node = hop distance from the nearest source
// (kUnreached for vertices no source reaches), aggregate = vertices
// reached. An empty source set reaches nothing.
//
// opts.num_threads == 1 runs the sequential frontier loop — the exact
// reference. A larger budget runs the GAP-style direction-optimizing
// traversal: frontier-parallel top-down steps that hand off to
// vertex-parallel bottom-up steps (over a lazily built in-edge transpose)
// when the frontier's out-edge scout count crosses remaining_edges /
// alpha, and back when the frontier shrinks under num_nodes / beta. Both
// paths produce identical depths — level sets are deterministic; an
// AtomicVisitedBitmap fetch_or arbitrates which lane claims a vertex, not
// which level it lands in.
//
// `parents`, when non-null, receives a valid BFS tree: parents[s] == s for
// reached sources, otherwise parents[v] is some predecessor of v with
// depth[v] == depth[parent] + 1, and kNoParent for unreached vertices.
// Which predecessor wins is scheduling-dependent under a parallel budget —
// the differential suite checks tree validity, not a particular tree.
KernelResult Run(const CsrSnapshot& graph, Span<const NodeId> sources,
                 const KernelOptions& opts = {},
                 std::vector<DenseId>* parents = nullptr);

}  // namespace cuckoograph::analytics::bfs

#endif  // CUCKOOGRAPH_ANALYTICS_BFS_H_
