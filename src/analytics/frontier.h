// Traversal scratch shared by the kernels: a word-packed visited bitmap
// (plain and atomic flavors) and a two-slot frontier. All are sized to
// the snapshot's dense vertex space, so kernel state is flat arrays — no
// hashing on the hot path. The atomic bitmap is the parallel kernels'
// visit arbiter: fetch_or decides exactly one winner per vertex, which is
// what makes the direction-optimizing BFS's depths deterministic even
// though lane scheduling is not.
#ifndef CUCKOOGRAPH_ANALYTICS_FRONTIER_H_
#define CUCKOOGRAPH_ANALYTICS_FRONTIER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "analytics/csr_snapshot.h"
#include "common/span.h"

namespace cuckoograph::analytics {

class VisitedBitmap {
 public:
  explicit VisitedBitmap(size_t bits) : words_((bits + 63) / 64, 0) {}

  bool Test(DenseId i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Set(DenseId i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }

  // Sets bit `i`; returns true iff it was previously clear (the caller won
  // the visit).
  bool TestAndSet(DenseId i) {
    const uint64_t mask = uint64_t{1} << (i & 63);
    const bool fresh = (words_[i >> 6] & mask) == 0;
    words_[i >> 6] |= mask;
    return fresh;
  }

  void Clear() { words_.assign(words_.size(), 0); }

 private:
  std::vector<uint64_t> words_;
};

// The multi-threaded VisitedBitmap: TestAndSet arbitrates concurrent
// visits with one fetch_or, Set/Test are relaxed (the parallel kernels
// publish cross-step state through the ParallelFor barrier, not through
// individual bits).
class AtomicVisitedBitmap {
 public:
  explicit AtomicVisitedBitmap(size_t bits)
      : num_words_((bits + 63) / 64),
        words_(std::make_unique<std::atomic<uint64_t>[]>(num_words_)) {
    Clear();
  }

  bool Test(DenseId i) const {
    return (words_[i >> 6].load(std::memory_order_relaxed) >> (i & 63)) & 1;
  }

  void Set(DenseId i) {
    words_[i >> 6].fetch_or(uint64_t{1} << (i & 63),
                            std::memory_order_relaxed);
  }

  // Sets bit `i`; returns true iff it was previously clear (this caller
  // won the visit — exactly one concurrent TestAndSet per bit wins).
  bool TestAndSet(DenseId i) {
    const uint64_t mask = uint64_t{1} << (i & 63);
    return (words_[i >> 6].fetch_or(mask, std::memory_order_relaxed) &
            mask) == 0;
  }

  void Clear() {
    for (size_t w = 0; w < num_words_; ++w) {
      words_[w].store(0, std::memory_order_relaxed);
    }
  }

 private:
  size_t num_words_;
  std::unique_ptr<std::atomic<uint64_t>[]> words_;
};

// Current/next vertex queues with O(1) generation swap.
class Frontier {
 public:
  explicit Frontier(size_t capacity_hint = 0) {
    current_.reserve(capacity_hint);
    next_.reserve(capacity_hint);
  }

  void PushCurrent(DenseId v) { current_.push_back(v); }
  void PushNext(DenseId v) { next_.push_back(v); }

  Span<const DenseId> Current() const {
    return Span<const DenseId>(current_);
  }

  bool CurrentEmpty() const { return current_.empty(); }
  bool NextEmpty() const { return next_.empty(); }

  // Promotes next to current and empties next.
  void Advance() {
    current_.swap(next_);
    next_.clear();
  }

 private:
  std::vector<DenseId> current_;
  std::vector<DenseId> next_;
};

}  // namespace cuckoograph::analytics

#endif  // CUCKOOGRAPH_ANALYTICS_FRONTIER_H_
