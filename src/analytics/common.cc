#include "analytics/common.h"

#include <algorithm>
#include <cstddef>
#include <utility>

namespace cuckoograph::analytics {

std::vector<NodeId> TopDegreeNodes(const CsrSnapshot& graph, size_t k) {
  std::vector<std::pair<size_t, NodeId>> degrees;
  degrees.reserve(graph.num_nodes());
  for (DenseId u = 0; u < graph.num_nodes(); ++u) {
    degrees.emplace_back(graph.Degree(u), graph.ToOriginal(u));
  }
  const size_t take = std::min(k, degrees.size());
  std::partial_sort(degrees.begin(),
                    degrees.begin() + static_cast<std::ptrdiff_t>(take),
                    degrees.end(),
                    [](const auto& a, const auto& b) {
                      return a.first != b.first ? a.first > b.first
                                                : a.second < b.second;
                    });
  std::vector<NodeId> top;
  top.reserve(take);
  for (size_t i = 0; i < take; ++i) top.push_back(degrees[i].second);
  return top;
}

std::vector<Edge> InducedSubgraph(const CsrSnapshot& graph,
                                  const std::vector<NodeId>& nodes) {
  // Membership as a dense bitmap over the snapshot's vertex space; node
  // ids outside the snapshot are simply not members.
  std::vector<bool> keep(graph.num_nodes(), false);
  for (const NodeId id : nodes) {
    const DenseId dense = graph.ToDense(id);
    if (dense != CsrSnapshot::kAbsent) keep[dense] = true;
  }
  std::vector<Edge> edges;
  for (DenseId u = 0; u < graph.num_nodes(); ++u) {
    if (!keep[u]) continue;
    for (const DenseId v : graph.Neighbors(u)) {
      if (keep[v]) {
        edges.push_back(Edge{graph.ToOriginal(u), graph.ToOriginal(v)});
      }
    }
  }
  return edges;
}

}  // namespace cuckoograph::analytics
