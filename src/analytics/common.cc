#include "analytics/common.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

namespace cuckoograph::analytics {

std::vector<NodeId> TopDegreeNodes(const GraphStore& store, size_t k) {
  std::vector<std::pair<size_t, NodeId>> degrees;
  degrees.reserve(store.NumNodes());
  store.ForEachNode([&store, &degrees](NodeId u) {
    degrees.emplace_back(store.OutDegree(u), u);
  });
  const size_t take = std::min(k, degrees.size());
  std::partial_sort(degrees.begin(), degrees.begin() + take, degrees.end(),
                    [](const auto& a, const auto& b) {
                      return a.first != b.first ? a.first > b.first
                                                : a.second < b.second;
                    });
  std::vector<NodeId> top;
  top.reserve(take);
  for (size_t i = 0; i < take; ++i) top.push_back(degrees[i].second);
  return top;
}

std::vector<Edge> InducedSubgraph(const GraphStore& store,
                                  const std::vector<NodeId>& nodes) {
  const std::unordered_set<NodeId> keep(nodes.begin(), nodes.end());
  std::vector<Edge> edges;
  for (const NodeId u : nodes) {
    store.ForEachNeighbor(u, [&keep, &edges, u](NodeId v) {
      if (keep.count(v) != 0) edges.push_back(Edge{u, v});
    });
  }
  return edges;
}

}  // namespace cuckoograph::analytics
