// SSSP kernel (Figure 11, Section V-E2), over the snapshot's weights
// array (unit weights when the snapshot carries none — the unweighted
// degenerate case).
#ifndef CUCKOOGRAPH_ANALYTICS_SSSP_H_
#define CUCKOOGRAPH_ANALYTICS_SSSP_H_

#include <cstdint>

#include "analytics/kernel.h"

namespace cuckoograph::analytics::sssp {

// Multi-source Dijkstra (binary heap, lazy deletion). per_node = weighted
// distance from the nearest source (kUnreached when unreachable),
// aggregate = vertices reached.
KernelResult Run(const CsrSnapshot& graph, Span<const NodeId> sources);

// Delta-stepping variant: bucketed label-correcting with bucket width
// `delta`. Produces the same distances as Run; the bench compares the two
// on skewed streams.
KernelResult RunDeltaStepping(const CsrSnapshot& graph,
                              Span<const NodeId> sources,
                              uint64_t delta = 1);

}  // namespace cuckoograph::analytics::sssp

#endif  // CUCKOOGRAPH_ANALYTICS_SSSP_H_
