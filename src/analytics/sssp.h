// SSSP kernel (Figure 11, Section V-E2), over the snapshot's weights
// array (unit weights when the snapshot carries none — the unweighted
// degenerate case).
#ifndef CUCKOOGRAPH_ANALYTICS_SSSP_H_
#define CUCKOOGRAPH_ANALYTICS_SSSP_H_

#include <cstdint>

#include "analytics/kernel.h"

namespace cuckoograph::analytics::sssp {

// Multi-source shortest paths. per_node = weighted distance from the
// nearest source (kUnreached when unreachable), aggregate = vertices
// reached.
//
// opts.num_threads == 1 runs Dijkstra (binary heap, lazy deletion) — the
// exact reference. A larger budget runs frontier-parallel delta-stepping
// with bucket width opts.delta: each bucket batch relaxes in parallel,
// racing lanes settle each tentative distance with a CAS-min, and the
// fixed point is the unique shortest-distance vector — so distances match
// Dijkstra exactly, whatever the lane schedule or delta.
KernelResult Run(const CsrSnapshot& graph, Span<const NodeId> sources,
                 const KernelOptions& opts = {});

// Delta-stepping entry point with an explicit bucket width (the bench
// compares widths on skewed streams). Sequential label-correcting under a
// 1-thread budget, the parallel batch relaxation above otherwise; both
// produce Run's distances.
KernelResult RunDeltaStepping(const CsrSnapshot& graph,
                              Span<const NodeId> sources, uint64_t delta = 1,
                              const KernelOptions& opts = {});

}  // namespace cuckoograph::analytics::sssp

#endif  // CUCKOOGRAPH_ANALYTICS_SSSP_H_
