#include "analytics/pagerank.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace cuckoograph::analytics::pagerank {

namespace {

// CAS-accumulated double add — the scatter's per-target combiner.
void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

KernelResult RunSequential(const CsrSnapshot& graph, size_t iterations,
                           double damping) {
  const size_t n = graph.num_nodes();
  KernelResult result;
  if (n == 0) return result;

  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (size_t iter = 0; iter < iterations; ++iter) {
    double dangling = 0.0;
    for (DenseId u = 0; u < n; ++u) {
      if (graph.Degree(u) == 0) dangling += rank[u];
    }
    const double base =
        (1.0 - damping + damping * dangling) / static_cast<double>(n);
    next.assign(n, base);
    for (DenseId u = 0; u < n; ++u) {
      const size_t degree = graph.Degree(u);
      if (degree == 0) continue;
      const double share = damping * rank[u] / static_cast<double>(degree);
      for (const DenseId v : graph.Neighbors(u)) next[v] += share;
    }
    rank.swap(next);
    ++result.aggregate;
  }
  result.per_node = std::move(rank);
  return result;
}

KernelResult RunParallel(const CsrSnapshot& graph, size_t iterations,
                         double damping, const KernelOptions& opts) {
  const size_t n = graph.num_nodes();
  KernelResult result;
  if (n == 0) return result;

  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  auto next = std::make_unique<std::atomic<double>[]>(n);
  for (size_t iter = 0; iter < iterations; ++iter) {
    // Dangling mass: per-chunk partial sums folded under a mutex (a
    // deterministic-enough reduction; the tolerance covers association).
    double dangling = 0.0;
    std::mutex dangling_mu;
    KernelParallelFor(opts, 0, n, [&](size_t begin, size_t end) {
      double local = 0.0;
      for (size_t u = begin; u < end; ++u) {
        if (graph.Degree(static_cast<DenseId>(u)) == 0) local += rank[u];
      }
      std::lock_guard<std::mutex> lock(dangling_mu);
      dangling += local;
    });
    const double base =
        (1.0 - damping + damping * dangling) / static_cast<double>(n);
    KernelParallelFor(opts, 0, n, [&](size_t begin, size_t end) {
      for (size_t v = begin; v < end; ++v) {
        next[v].store(base, std::memory_order_relaxed);
      }
    });
    KernelParallelFor(opts, 0, n, [&](size_t begin, size_t end) {
      for (size_t u = begin; u < end; ++u) {
        const DenseId du = static_cast<DenseId>(u);
        const size_t degree = graph.Degree(du);
        if (degree == 0) continue;
        const double share =
            damping * rank[u] / static_cast<double>(degree);
        for (const DenseId v : graph.Neighbors(du)) {
          AtomicAdd(next[v], share);
        }
      }
    });
    KernelParallelFor(opts, 0, n, [&](size_t begin, size_t end) {
      for (size_t v = begin; v < end; ++v) {
        rank[v] = next[v].load(std::memory_order_relaxed);
      }
    });
    ++result.aggregate;
  }
  result.per_node = std::move(rank);
  return result;
}

}  // namespace

KernelResult RunIterations(const CsrSnapshot& graph, size_t iterations,
                           double damping, const KernelOptions& opts) {
  if (opts.num_threads <= 1) {
    return RunSequential(graph, iterations, damping);
  }
  return RunParallel(graph, iterations, damping, opts);
}

KernelResult Run(const CsrSnapshot& graph, Span<const NodeId> sources,
                 const KernelOptions& opts) {
  (void)sources;
  return RunIterations(graph, 100, 0.85, opts);
}

}  // namespace cuckoograph::analytics::pagerank
