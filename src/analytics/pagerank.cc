#include "analytics/pagerank.h"

#include <utility>
#include <vector>

namespace cuckoograph::analytics::pagerank {

KernelResult RunIterations(const CsrSnapshot& graph, size_t iterations,
                           double damping) {
  const size_t n = graph.num_nodes();
  KernelResult result;
  if (n == 0) return result;

  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (size_t iter = 0; iter < iterations; ++iter) {
    double dangling = 0.0;
    for (DenseId u = 0; u < n; ++u) {
      if (graph.Degree(u) == 0) dangling += rank[u];
    }
    const double base =
        (1.0 - damping + damping * dangling) / static_cast<double>(n);
    next.assign(n, base);
    for (DenseId u = 0; u < n; ++u) {
      const size_t degree = graph.Degree(u);
      if (degree == 0) continue;
      const double share = damping * rank[u] / static_cast<double>(degree);
      for (const DenseId v : graph.Neighbors(u)) next[v] += share;
    }
    rank.swap(next);
    ++result.aggregate;
  }
  result.per_node = std::move(rank);
  return result;
}

KernelResult Run(const CsrSnapshot& graph, Span<const NodeId> sources) {
  (void)sources;
  return RunIterations(graph, 100);
}

}  // namespace cuckoograph::analytics::pagerank
