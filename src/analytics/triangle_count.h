// Triangle-counting kernel (Figure 12, Section V-E3).
#ifndef CUCKOOGRAPH_ANALYTICS_TRIANGLE_COUNT_H_
#define CUCKOOGRAPH_ANALYTICS_TRIANGLE_COUNT_H_

#include "analytics/kernel.h"

namespace cuckoograph::analytics::triangle_count {

// Directed 3-cycles anchored per source: per_node[s] counts the pairs
// (v, w) of distinct vertices with s->v, v->w, and the closing edge w->s
// (probed by binary search over the CSR segment, the snapshot's analogue
// of the paper's edge-query probe). Sweeps every vertex when `sources` is
// empty — each 3-cycle then counts once per member. aggregate = the sum
// over the swept sources.
//
// A multi-thread budget anchors sources across lanes. Per-source counts
// are integers written disjointly and the aggregate is their exact sum,
// so the result is bit-identical to the sequential reference.
KernelResult Run(const CsrSnapshot& graph, Span<const NodeId> sources,
                 const KernelOptions& opts = {});

}  // namespace cuckoograph::analytics::triangle_count

#endif  // CUCKOOGRAPH_ANALYTICS_TRIANGLE_COUNT_H_
