// Shared helpers of the graph-analytics layer (Section V-E): top-degree
// node selection and induced-subgraph extraction, both written against the
// abstract GraphStore v2 cursors so every scheme can serve them. The
// kernels themselves (BFS, SSSP, TC, CC, PR, BC, LCC) are still open
// ROADMAP items.
#ifndef CUCKOOGRAPH_ANALYTICS_COMMON_H_
#define CUCKOOGRAPH_ANALYTICS_COMMON_H_

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "core/graph_store.h"

namespace cuckoograph::analytics {

// The `k` vertices with the highest out-degree, degree-descending with
// NodeId ascending as the tie-break (deterministic across schemes).
std::vector<NodeId> TopDegreeNodes(const GraphStore& store, size_t k);

// Every stored edge <u, v> with both endpoints in `nodes`.
std::vector<Edge> InducedSubgraph(const GraphStore& store,
                                  const std::vector<NodeId>& nodes);

}  // namespace cuckoograph::analytics

#endif  // CUCKOOGRAPH_ANALYTICS_COMMON_H_
