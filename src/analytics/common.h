// Shared helpers of the graph-analytics layer (Section V-E): top-degree
// node selection and induced-subgraph extraction. Both consume a
// CsrSnapshot — the analytics engine walks the virtual store exactly once,
// when the snapshot is materialized, and every selection/extraction after
// that is array arithmetic.
#ifndef CUCKOOGRAPH_ANALYTICS_COMMON_H_
#define CUCKOOGRAPH_ANALYTICS_COMMON_H_

#include <cstddef>
#include <vector>

#include "analytics/csr_snapshot.h"
#include "common/types.h"

namespace cuckoograph::analytics {

// The `k` vertices with the highest out-degree, as original node ids,
// degree-descending with NodeId ascending as the tie-break (deterministic
// across schemes, since the snapshot itself is).
std::vector<NodeId> TopDegreeNodes(const CsrSnapshot& graph, size_t k);

// Every snapshot edge <u, v> with both endpoints in `nodes`, in original
// ids — the edge list the comparison benches insert into each scheme.
std::vector<Edge> InducedSubgraph(const CsrSnapshot& graph,
                                  const std::vector<NodeId>& nodes);

}  // namespace cuckoograph::analytics

#endif  // CUCKOOGRAPH_ANALYTICS_COMMON_H_
