#include "analytics/bfs.h"

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "analytics/frontier.h"

namespace cuckoograph::analytics::bfs {

namespace {

// Direction-switch thresholds from the GAP benchmark suite: top-down hands
// off to bottom-up when the frontier's scout count (sum of out-degrees)
// exceeds the unexplored edge budget / kAlpha; bottom-up hands back when
// the awake count drops under num_nodes / kBeta.
constexpr uint64_t kAlpha = 15;
constexpr uint64_t kBeta = 18;

// The exact pre-parallel reference: sequential two-slot frontier loop.
KernelResult RunSequential(const CsrSnapshot& graph,
                           Span<const NodeId> sources,
                           std::vector<DenseId>* parents) {
  KernelResult result;
  result.per_node.assign(graph.num_nodes(), kUnreached);
  if (parents != nullptr) parents->assign(graph.num_nodes(), kNoParent);

  VisitedBitmap visited(graph.num_nodes());
  Frontier frontier(graph.num_nodes());
  for (const DenseId s : ResolveSources(graph, sources)) {
    visited.Set(s);
    result.per_node[s] = 0.0;
    if (parents != nullptr) (*parents)[s] = s;
    frontier.PushCurrent(s);
    ++result.aggregate;
  }

  double depth = 0.0;
  while (!frontier.CurrentEmpty()) {
    depth += 1.0;
    for (const DenseId u : frontier.Current()) {
      for (const DenseId v : graph.Neighbors(u)) {
        if (!visited.TestAndSet(v)) continue;
        result.per_node[v] = depth;
        if (parents != nullptr) (*parents)[v] = u;
        frontier.PushNext(v);
        ++result.aggregate;
      }
    }
    frontier.Advance();
  }
  return result;
}

// In-edge CSR (the snapshot transposed), built lazily on the first
// bottom-up step — a pure top-down run never pays for it. Segment order is
// scatter order, i.e. nondeterministic under a parallel build; bottom-up
// only asks "is any in-neighbor in the frontier", so depths are unaffected
// (which in-neighbor becomes the parent is not, and the contract says so).
struct InCsr {
  std::vector<size_t> offsets;   // num_nodes + 1
  std::vector<DenseId> sources;  // per-vertex in-neighbor segments
};

InCsr BuildTranspose(const CsrSnapshot& graph, const KernelOptions& opts) {
  const size_t n = graph.num_nodes();
  InCsr in;
  auto counts = std::make_unique<std::atomic<size_t>[]>(n);
  for (size_t v = 0; v < n; ++v) {
    counts[v].store(0, std::memory_order_relaxed);
  }
  KernelParallelFor(opts, 0, n, [&](size_t begin, size_t end) {
    for (size_t u = begin; u < end; ++u) {
      for (const DenseId v : graph.Neighbors(static_cast<DenseId>(u))) {
        counts[v].fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  in.offsets.assign(n + 1, 0);
  for (size_t v = 0; v < n; ++v) {
    in.offsets[v + 1] =
        in.offsets[v] + counts[v].load(std::memory_order_relaxed);
  }
  // Reuse counts[] as the scatter cursors.
  for (size_t v = 0; v < n; ++v) {
    counts[v].store(in.offsets[v], std::memory_order_relaxed);
  }
  in.sources.resize(graph.num_edges());
  KernelParallelFor(opts, 0, n, [&](size_t begin, size_t end) {
    for (size_t u = begin; u < end; ++u) {
      for (const DenseId v : graph.Neighbors(static_cast<DenseId>(u))) {
        const size_t slot = counts[v].fetch_add(1, std::memory_order_relaxed);
        in.sources[slot] = static_cast<DenseId>(u);
      }
    }
  });
  return in;
}

// One frontier-parallel top-down step: claims unvisited successors of the
// sparse frontier, appends them to `next`, and returns (discovered,
// scout), scout being the out-degree sum of the discoveries.
std::pair<uint64_t, uint64_t> TopDownStep(
    const CsrSnapshot& graph, const KernelOptions& opts,
    const std::vector<DenseId>& frontier, double depth,
    AtomicVisitedBitmap& visited, std::vector<double>& dist,
    std::vector<DenseId>& parent, std::vector<DenseId>& next) {
  std::atomic<uint64_t> discovered{0};
  std::atomic<uint64_t> scout{0};
  std::mutex next_mu;
  KernelParallelFor(opts, 0, frontier.size(), [&](size_t begin, size_t end) {
    std::vector<DenseId> local;
    uint64_t local_scout = 0;
    for (size_t i = begin; i < end; ++i) {
      const DenseId u = frontier[i];
      for (const DenseId v : graph.Neighbors(u)) {
        if (!visited.TestAndSet(v)) continue;
        dist[v] = depth;
        parent[v] = u;
        local_scout += graph.Degree(v);
        local.push_back(v);
      }
    }
    if (!local.empty()) {
      discovered.fetch_add(local.size(), std::memory_order_relaxed);
      scout.fetch_add(local_scout, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(next_mu);
      next.insert(next.end(), local.begin(), local.end());
    }
  });
  return {discovered.load(), scout.load()};
}

// One vertex-parallel bottom-up step: every unvisited vertex scans its
// in-neighbors for a frontier member and claims itself on the first hit.
// Returns the awake count (vertices discovered this step).
uint64_t BottomUpStep(const CsrSnapshot& graph, const KernelOptions& opts,
                      const InCsr& in, const AtomicVisitedBitmap& front,
                      double depth, AtomicVisitedBitmap& visited,
                      std::vector<double>& dist, std::vector<DenseId>& parent,
                      AtomicVisitedBitmap& next) {
  std::atomic<uint64_t> awake{0};
  KernelParallelFor(opts, 0, graph.num_nodes(),
                    [&](size_t begin, size_t end) {
                      uint64_t local_awake = 0;
                      for (size_t v = begin; v < end; ++v) {
                        const DenseId dv = static_cast<DenseId>(v);
                        if (visited.Test(dv)) continue;
                        for (size_t s = in.offsets[v]; s < in.offsets[v + 1];
                             ++s) {
                          const DenseId u = in.sources[s];
                          if (!front.Test(u)) continue;
                          visited.Set(dv);
                          dist[v] = depth;
                          parent[v] = u;
                          next.Set(dv);
                          ++local_awake;
                          break;
                        }
                      }
                      awake.fetch_add(local_awake,
                                      std::memory_order_relaxed);
                    });
  return awake.load();
}

KernelResult RunDirectionOptimizing(const CsrSnapshot& graph,
                                    Span<const NodeId> sources,
                                    const KernelOptions& opts,
                                    std::vector<DenseId>* parents_out) {
  const size_t n = graph.num_nodes();
  KernelResult result;
  result.per_node.assign(n, kUnreached);
  std::vector<DenseId> parent(n, kNoParent);

  AtomicVisitedBitmap visited(n);
  std::vector<DenseId> frontier;
  uint64_t scout_count = 0;
  for (const DenseId s : ResolveSources(graph, sources)) {
    visited.Set(s);
    result.per_node[s] = 0.0;
    parent[s] = s;
    frontier.push_back(s);
    scout_count += graph.Degree(s);
    ++result.aggregate;
  }

  InCsr in;  // built on the first bottom-up switch
  bool have_transpose = false;
  uint64_t edges_to_check = graph.num_edges();
  double depth = 0.0;
  std::vector<DenseId> next;
  while (!frontier.empty()) {
    if (scout_count > edges_to_check / kAlpha) {
      if (!have_transpose) {
        in = BuildTranspose(graph, opts);
        have_transpose = true;
      }
      AtomicVisitedBitmap front(n);
      for (const DenseId u : frontier) front.Set(u);
      uint64_t awake = frontier.size();
      uint64_t old_awake;
      do {
        old_awake = awake;
        AtomicVisitedBitmap next_front(n);
        depth += 1.0;
        awake = BottomUpStep(graph, opts, in, front, depth, visited,
                             result.per_node, parent, next_front);
        result.aggregate += awake;
        front = std::move(next_front);
      } while (awake > 0 &&
               (awake >= old_awake || awake > n / kBeta));
      frontier.clear();
      for (DenseId v = 0; v < n; ++v) {
        if (front.Test(v)) frontier.push_back(v);
      }
      scout_count = 1;  // force a fresh top-down estimate next pass
    } else {
      edges_to_check -= scout_count;
      next.clear();
      depth += 1.0;
      const auto [discovered, scout] =
          TopDownStep(graph, opts, frontier, depth, visited,
                      result.per_node, parent, next);
      result.aggregate += discovered;
      scout_count = scout;
      frontier.swap(next);
    }
  }
  if (parents_out != nullptr) *parents_out = std::move(parent);
  return result;
}

}  // namespace

KernelResult Run(const CsrSnapshot& graph, Span<const NodeId> sources,
                 const KernelOptions& opts, std::vector<DenseId>* parents) {
  if (opts.num_threads <= 1) return RunSequential(graph, sources, parents);
  return RunDirectionOptimizing(graph, sources, opts, parents);
}

}  // namespace cuckoograph::analytics::bfs
