#include "analytics/bfs.h"

#include "analytics/frontier.h"

namespace cuckoograph::analytics::bfs {

KernelResult Run(const CsrSnapshot& graph, Span<const NodeId> sources) {
  KernelResult result;
  result.per_node.assign(graph.num_nodes(), kUnreached);

  VisitedBitmap visited(graph.num_nodes());
  Frontier frontier(graph.num_nodes());
  for (const DenseId s : ResolveSources(graph, sources)) {
    visited.Set(s);
    result.per_node[s] = 0.0;
    frontier.PushCurrent(s);
    ++result.aggregate;
  }

  double depth = 0.0;
  while (!frontier.CurrentEmpty()) {
    depth += 1.0;
    for (const DenseId u : frontier.Current()) {
      for (const DenseId v : graph.Neighbors(u)) {
        if (!visited.TestAndSet(v)) continue;
        result.per_node[v] = depth;
        frontier.PushNext(v);
        ++result.aggregate;
      }
    }
    frontier.Advance();
  }
  return result;
}

}  // namespace cuckoograph::analytics::bfs
