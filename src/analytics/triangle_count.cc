#include "analytics/triangle_count.h"

#include <numeric>

namespace cuckoograph::analytics::triangle_count {

namespace {

uint64_t CyclesThrough(const CsrSnapshot& graph, DenseId s) {
  uint64_t cycles = 0;
  for (const DenseId v : graph.Neighbors(s)) {
    if (v == s) continue;
    for (const DenseId w : graph.Neighbors(v)) {
      if (w == s || w == v) continue;
      if (graph.HasEdge(w, s)) ++cycles;
    }
  }
  return cycles;
}

}  // namespace

KernelResult Run(const CsrSnapshot& graph, Span<const NodeId> sources) {
  KernelResult result;
  result.per_node.assign(graph.num_nodes(), 0.0);
  if (sources.empty()) {
    for (DenseId s = 0; s < graph.num_nodes(); ++s) {
      const uint64_t cycles = CyclesThrough(graph, s);
      result.per_node[s] = static_cast<double>(cycles);
      result.aggregate += cycles;
    }
    return result;
  }
  for (const DenseId s : ResolveSources(graph, sources)) {
    const uint64_t cycles = CyclesThrough(graph, s);
    result.per_node[s] = static_cast<double>(cycles);
    result.aggregate += cycles;
  }
  return result;
}

}  // namespace cuckoograph::analytics::triangle_count
