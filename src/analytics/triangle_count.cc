#include "analytics/triangle_count.h"

#include <atomic>
#include <vector>

namespace cuckoograph::analytics::triangle_count {

namespace {

uint64_t CyclesThrough(const CsrSnapshot& graph, DenseId s) {
  uint64_t cycles = 0;
  for (const DenseId v : graph.Neighbors(s)) {
    if (v == s) continue;
    for (const DenseId w : graph.Neighbors(v)) {
      if (w == s || w == v) continue;
      if (graph.HasEdge(w, s)) ++cycles;
    }
  }
  return cycles;
}

}  // namespace

KernelResult Run(const CsrSnapshot& graph, Span<const NodeId> sources,
                 const KernelOptions& opts) {
  KernelResult result;
  result.per_node.assign(graph.num_nodes(), 0.0);
  std::atomic<uint64_t> total{0};
  const auto count_range = [&](Span<const DenseId> anchors, size_t begin,
                               size_t end) {
    uint64_t local = 0;
    for (size_t i = begin; i < end; ++i) {
      const DenseId s = anchors.empty() ? static_cast<DenseId>(i)
                                        : anchors[i];
      const uint64_t cycles = CyclesThrough(graph, s);
      result.per_node[s] = static_cast<double>(cycles);
      local += cycles;
    }
    total.fetch_add(local, std::memory_order_relaxed);
  };
  if (sources.empty()) {
    KernelParallelFor(opts, 0, graph.num_nodes(),
                      [&](size_t begin, size_t end) {
                        count_range({}, begin, end);
                      });
  } else {
    const std::vector<DenseId> resolved = ResolveSources(graph, sources);
    KernelParallelFor(opts, 0, resolved.size(),
                      [&](size_t begin, size_t end) {
                        count_range(Span<const DenseId>(resolved), begin,
                                    end);
                      });
  }
  result.aggregate = total.load();
  return result;
}

}  // namespace cuckoograph::analytics::triangle_count
