// The analytics kernels' uniform surface. Every kernel (bfs.h ... lcc.h)
// exposes exactly
//
//   KernelResult Run(const CsrSnapshot& graph, Span<const NodeId> sources,
//                    const KernelOptions& opts = {});
//
// in its own sub-namespace (analytics::bfs::Run, analytics::sssp::Run, ...)
// so the figure benches and tests drive all seven through one shape.
// `sources` are original node ids; ids absent from the snapshot are
// ignored, and kernels that sweep the whole snapshot (CC, PageRank) accept
// an empty span.
//
// KernelOptions carries the thread budget. num_threads = 1 (the default)
// runs the exact sequential reference implementation — bit-for-bit the
// pre-parallel behavior. num_threads > 1 engages the parallel variants
// where one exists (direction-optimizing BFS, frontier-parallel
// delta-stepping SSSP, vertex-parallel PageRank/TC/LCC); CC (Tarjan) and
// BC (Brandes) are deterministic sequential algorithms whose label/score
// contract depends on visit order, so they accept the options for API
// uniformity and run sequentially at any budget. The differential suite
// (tests/parallel_kernels_test.cc) proves every parallel variant
// result-compatible with its sequential reference.
#ifndef CUCKOOGRAPH_ANALYTICS_KERNEL_H_
#define CUCKOOGRAPH_ANALYTICS_KERNEL_H_

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "analytics/csr_snapshot.h"
#include "common/span.h"
#include "common/thread_pool.h"
#include "common/types.h"

namespace cuckoograph::analytics {

// Per-node value of vertices no kernel pass reached (BFS/SSSP distance of
// unreachable vertices).
inline constexpr double kUnreached = std::numeric_limits<double>::infinity();

struct KernelResult {
  // One value per dense snapshot id; the meaning is the kernel's (hop or
  // weighted distance, component id, PageRank score, centrality, LCC,
  // per-source triangle count). Empty only when the snapshot is empty.
  std::vector<double> per_node;
  // Kernel-specific scalar: vertices reached (BFS/SSSP), components (CC),
  // sum of per-source directed 3-cycle counts (TC — a full sweep counts
  // each cycle once per member, i.e. 3x per triangle), pivots used (BC),
  // iterations run (PR), vertices scored (LCC).
  uint64_t aggregate = 0;
};

// Per-call execution options, shared by every kernel and by the parallel
// snapshot builder's kernel-side callers.
struct KernelOptions {
  // Lanes a kernel may use; the calling thread counts as one, so
  // num_threads - 1 shared-pool workers join it. 1 (default) takes the
  // exact sequential reference path; 0 is treated as 1.
  size_t num_threads = 1;
  // Minimum vertices/frontier entries per parallel-for chunk — raises the
  // amortization floor on tiny inputs so lane handoff never dominates.
  size_t grain = 256;
  // Bucket width of the parallel delta-stepping SSSP (see sssp.h). Any
  // width produces the same distances; it only tunes work per phase.
  uint64_t delta = 8;
};

// Runs body(chunk_begin, chunk_end) over [begin, end) with the options'
// thread budget on the process-shared pool (growing it if needed).
// num_threads <= 1 degenerates to one inline call — the sequential loop.
template <typename Fn>
void KernelParallelFor(const KernelOptions& opts, size_t begin, size_t end,
                       Fn&& body) {
  const size_t threads = opts.num_threads == 0 ? 1 : opts.num_threads;
  if (threads > 1) ThreadPool::Shared().EnsureWorkers(threads - 1);
  ThreadPool::Shared().ParallelFor(begin, end,
                                   opts.grain == 0 ? 1 : opts.grain,
                                   threads, std::forward<Fn>(body));
}

// The uniform entry-point shape, for registries and bench tables. (BFS
// additionally takes an optional parent-tree out-param; registries bind
// it behind a lambda of this shape.)
using KernelFn = KernelResult (*)(const CsrSnapshot&, Span<const NodeId>,
                                  const KernelOptions&);

// Maps `sources` into dense ids, dropping absentees and duplicates while
// preserving first-occurrence order. Shared by every kernel's prologue.
std::vector<DenseId> ResolveSources(const CsrSnapshot& graph,
                                    Span<const NodeId> sources);

}  // namespace cuckoograph::analytics

#endif  // CUCKOOGRAPH_ANALYTICS_KERNEL_H_
