// The analytics kernels' uniform surface. Every kernel (bfs.h ... lcc.h)
// exposes exactly
//
//   KernelResult Run(const CsrSnapshot& graph, Span<const NodeId> sources);
//
// in its own sub-namespace (analytics::bfs::Run, analytics::sssp::Run, ...)
// so the figure benches and tests drive all seven through one shape.
// `sources` are original node ids; ids absent from the snapshot are
// ignored, and kernels that sweep the whole snapshot (CC, PageRank) accept
// an empty span.
#ifndef CUCKOOGRAPH_ANALYTICS_KERNEL_H_
#define CUCKOOGRAPH_ANALYTICS_KERNEL_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "analytics/csr_snapshot.h"
#include "common/span.h"
#include "common/types.h"

namespace cuckoograph::analytics {

// Per-node value of vertices no kernel pass reached (BFS/SSSP distance of
// unreachable vertices).
inline constexpr double kUnreached = std::numeric_limits<double>::infinity();

struct KernelResult {
  // One value per dense snapshot id; the meaning is the kernel's (hop or
  // weighted distance, component id, PageRank score, centrality, LCC,
  // per-source triangle count). Empty only when the snapshot is empty.
  std::vector<double> per_node;
  // Kernel-specific scalar: vertices reached (BFS/SSSP), components (CC),
  // sum of per-source directed 3-cycle counts (TC — a full sweep counts
  // each cycle once per member, i.e. 3x per triangle), pivots used (BC),
  // iterations run (PR), vertices scored (LCC).
  uint64_t aggregate = 0;
};

// The uniform entry-point shape, for registries and bench tables.
using KernelFn = KernelResult (*)(const CsrSnapshot&, Span<const NodeId>);

// Maps `sources` into dense ids, dropping absentees and duplicates while
// preserving first-occurrence order. Shared by every kernel's prologue.
std::vector<DenseId> ResolveSources(const CsrSnapshot& graph,
                                    Span<const NodeId> sources);

}  // namespace cuckoograph::analytics

#endif  // CUCKOOGRAPH_ANALYTICS_KERNEL_H_
