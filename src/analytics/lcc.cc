#include "analytics/lcc.h"

#include <vector>

namespace cuckoograph::analytics::lcc {

namespace {

double CoefficientOf(const CsrSnapshot& graph, DenseId u) {
  const Span<const DenseId> neighbors = graph.Neighbors(u);
  const size_t degree = neighbors.size();
  if (degree < 2) return 0.0;
  uint64_t links = 0;
  for (const DenseId v : neighbors) {
    for (const DenseId w : neighbors) {
      if (v != w && graph.HasEdge(v, w)) ++links;
    }
  }
  return static_cast<double>(links) /
         (static_cast<double>(degree) * static_cast<double>(degree - 1));
}

}  // namespace

KernelResult Run(const CsrSnapshot& graph, Span<const NodeId> sources,
                 const KernelOptions& opts) {
  KernelResult result;
  result.per_node.assign(graph.num_nodes(), 0.0);
  if (sources.empty()) {
    // Vertex-parallel sweep; per_node writes are disjoint by construction.
    KernelParallelFor(opts, 0, graph.num_nodes(),
                      [&](size_t begin, size_t end) {
                        for (size_t u = begin; u < end; ++u) {
                          result.per_node[u] =
                              CoefficientOf(graph, static_cast<DenseId>(u));
                        }
                      });
    result.aggregate = graph.num_nodes();
    return result;
  }
  const std::vector<DenseId> resolved = ResolveSources(graph, sources);
  KernelParallelFor(opts, 0, resolved.size(),
                    [&](size_t begin, size_t end) {
                      for (size_t i = begin; i < end; ++i) {
                        result.per_node[resolved[i]] =
                            CoefficientOf(graph, resolved[i]);
                      }
                    });
  result.aggregate = resolved.size();
  return result;
}

}  // namespace cuckoograph::analytics::lcc
