#include "analytics/lcc.h"

#include <numeric>
#include <vector>

namespace cuckoograph::analytics::lcc {

namespace {

double CoefficientOf(const CsrSnapshot& graph, DenseId u) {
  const Span<const DenseId> neighbors = graph.Neighbors(u);
  const size_t degree = neighbors.size();
  if (degree < 2) return 0.0;
  uint64_t links = 0;
  for (const DenseId v : neighbors) {
    for (const DenseId w : neighbors) {
      if (v != w && graph.HasEdge(v, w)) ++links;
    }
  }
  return static_cast<double>(links) /
         (static_cast<double>(degree) * static_cast<double>(degree - 1));
}

}  // namespace

KernelResult Run(const CsrSnapshot& graph, Span<const NodeId> sources) {
  KernelResult result;
  result.per_node.assign(graph.num_nodes(), 0.0);
  if (sources.empty()) {
    for (DenseId u = 0; u < graph.num_nodes(); ++u) {
      result.per_node[u] = CoefficientOf(graph, u);
      ++result.aggregate;
    }
    return result;
  }
  for (const DenseId u : ResolveSources(graph, sources)) {
    result.per_node[u] = CoefficientOf(graph, u);
    ++result.aggregate;
  }
  return result;
}

}  // namespace cuckoograph::analytics::lcc
