// Strongly-connected-components kernel (Figure 13, Section V-E4):
// Tarjan's algorithm, iterative so deep subgraphs cannot overflow the call
// stack.
#ifndef CUCKOOGRAPH_ANALYTICS_CONNECTED_COMPONENTS_H_
#define CUCKOOGRAPH_ANALYTICS_CONNECTED_COMPONENTS_H_

#include "analytics/kernel.h"

namespace cuckoograph::analytics::connected_components {

// per_node = SCC id (two vertices share an id iff they are mutually
// reachable; ids are dense in [0, aggregate) in completion order),
// aggregate = number of SCCs. `sources` is ignored — the kernel always
// sweeps the whole snapshot.
//
// Runs sequentially at any opts.num_threads: the label contract above is
// Tarjan completion order, which a parallel decomposition cannot
// reproduce. The options are accepted for the uniform kernel surface.
KernelResult Run(const CsrSnapshot& graph, Span<const NodeId> sources,
                 const KernelOptions& opts = {});

}  // namespace cuckoograph::analytics::connected_components

#endif  // CUCKOOGRAPH_ANALYTICS_CONNECTED_COMPONENTS_H_
