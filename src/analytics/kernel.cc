#include "analytics/kernel.h"

#include "analytics/frontier.h"

namespace cuckoograph::analytics {

std::vector<DenseId> ResolveSources(const CsrSnapshot& graph,
                                    Span<const NodeId> sources) {
  std::vector<DenseId> resolved;
  resolved.reserve(sources.size());
  VisitedBitmap seen(graph.num_nodes());
  for (const NodeId id : sources) {
    const DenseId dense = graph.ToDense(id);
    if (dense == CsrSnapshot::kAbsent) continue;
    if (seen.TestAndSet(dense)) resolved.push_back(dense);
  }
  return resolved;
}

}  // namespace cuckoograph::analytics
