// CsrSnapshot: the analytics engine's flat view of a dynamic store. The
// kernels (bfs.h ... lcc.h) never touch the virtual GraphStore: a snapshot
// is materialized once per (store, node-set) through the v2 block cursors,
// and traversal then runs over a compact CSR — offsets + neighbor array,
// an optional weights array pulled through GraphStore::EdgeWeight, and a
// dense node remapping so per-node kernel state is plain arrays instead of
// hash maps. This is the GAP/Ligra-style split: the store pays its
// snapshot/extract cost once, and the kernel runs at memory speed.
#ifndef CUCKOOGRAPH_ANALYTICS_CSR_SNAPSHOT_H_
#define CUCKOOGRAPH_ANALYTICS_CSR_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/span.h"
#include "common/types.h"
#include "core/graph_store.h"

namespace cuckoograph::analytics {

// Index into the snapshot's dense [0, num_nodes) vertex space.
using DenseId = uint32_t;

// Snapshot-build options (namespace scope so it is complete before the
// builders' default arguments are parsed).
struct SnapshotOptions {
  // Pull per-edge weights through GraphStore::EdgeWeight. The layer
  // itself accepts any store (an unweighted scheme reports weight 1 per
  // edge, degenerating weighted kernels to hop counts); whether a
  // weight-requiring figure runs a scheme or skips it on
  // !Capabilities().weighted is the bench's methodological call (fig11
  // skips, per Section V-E2).
  bool with_weights = false;
  // Lanes the build may use (the calling thread counts as one). 1 — the
  // default — is the exact sequential builder. A larger budget extracts
  // per-source adjacency and weights in parallel (safe on a quiesced
  // store: concurrent const reads race nothing once writers stop) and
  // constructs the CSR by parallel degree-count / prefix-sum / scatter /
  // per-segment sort. The result is byte-identical to the sequential
  // build — segment order is canonical and duplicate-weight accumulation
  // is an order-independent integer sum — which
  // tests/parallel_kernels_test.cc proves per scheme.
  size_t num_threads = 1;
  // Minimum items per parallel-for chunk (sources during extraction,
  // edges/vertices during construction).
  size_t grain = 1024;
};

class CsrSnapshot {
 public:
  // ToDense() result for node ids absent from the snapshot.
  static constexpr DenseId kAbsent = ~DenseId{0};

  using Options = SnapshotOptions;

  CsrSnapshot() = default;

  // Snapshot of every edge currently in `store`. The vertex universe is
  // every endpoint (sinks with no out-edges included), dense ids assigned
  // in ascending original-id order so the snapshot is identical across
  // schemes holding the same edge set.
  //
  // Quiesced-snapshot contract: the build drains the store's cursors, and
  // every cursor is invalidated by any mutation — so the store must be
  // externally quiesced (no concurrent writers) for the whole call, even
  // when Capabilities().concurrent_mutations holds (e.g. the sharded
  // front-end, whose per-shard locks serialize individual ops but not a
  // store-wide walk). The builder rechecks NumEdges() after the drain and
  // throws std::logic_error when it caught the store moving; a mutation
  // that leaves the count unchanged can evade the check, so the contract
  // is the guarantee, the throw is best-effort detection.
  static CsrSnapshot FromStore(const GraphStore& store,
                               SnapshotOptions opts = {});

  // Snapshot of the subgraph induced by `nodes`: every stored edge with
  // both endpoints in `nodes`. The vertex universe is exactly the
  // deduplicated `nodes` (degree-0 members included). Same
  // quiesced-snapshot contract and best-effort mutation recheck as the
  // full-store overload above.
  static CsrSnapshot FromStore(const GraphStore& store,
                               Span<const NodeId> nodes,
                               SnapshotOptions opts = {});

  // Snapshot of a plain edge list (tests, reference models). Duplicate
  // edges collapse; with `weights` (parallel to `edges`, or empty for unit
  // weights) duplicates accumulate, matching weighted-store arrivals.
  // Throws std::invalid_argument when `weights` is non-empty but not the
  // same length as `edges`. opts.with_weights is ignored (the explicit
  // `weights` span decides); opts.num_threads selects the parallel
  // builder, same byte-identical contract as FromStore.
  static CsrSnapshot FromEdges(Span<const Edge> edges,
                               Span<const uint64_t> weights = {},
                               SnapshotOptions opts = {});

  size_t num_nodes() const { return originals_.size(); }
  size_t num_edges() const { return neighbors_.size(); }
  bool has_weights() const { return !weights_.empty(); }

  size_t Degree(DenseId u) const { return offsets_[u + 1] - offsets_[u]; }

  // Successors of `u` as dense ids, ascending.
  Span<const DenseId> Neighbors(DenseId u) const {
    return Span<const DenseId>(neighbors_.data() + offsets_[u], Degree(u));
  }

  // Weights parallel to Neighbors(u). Only valid when has_weights().
  Span<const uint64_t> Weights(DenseId u) const {
    return Span<const uint64_t>(weights_.data() + offsets_[u], Degree(u));
  }

  // Binary search over the sorted adjacency segment.
  bool HasEdge(DenseId u, DenseId v) const;

  NodeId ToOriginal(DenseId dense) const { return originals_[dense]; }

  // Dense id of an original node id, or kAbsent. Binary search over the
  // ascending original-id table — no hash map is kept.
  DenseId ToDense(NodeId original) const;

  // Dense -> original table, ascending by original id.
  Span<const NodeId> originals() const {
    return Span<const NodeId>(originals_);
  }

  // The snapshot's edges in original ids, <u asc, v asc> — the round-trip
  // check and the induced-subgraph extraction both read edges back out
  // this way.
  std::vector<Edge> ExtractEdges() const;

  // Heap footprint of the CSR arrays.
  size_t MemoryBytes() const;

 private:
  static CsrSnapshot Build(std::vector<Edge> edges,
                           std::vector<uint64_t> weights,
                           std::vector<NodeId> universe,
                           const SnapshotOptions& opts);

  std::vector<size_t> offsets_;     // num_nodes + 1 entries
  std::vector<DenseId> neighbors_;  // per-vertex segments, ascending
  std::vector<uint64_t> weights_;   // parallel to neighbors_, or empty
  std::vector<NodeId> originals_;   // dense -> original, ascending
};

}  // namespace cuckoograph::analytics

#endif  // CUCKOOGRAPH_ANALYTICS_CSR_SNAPSHOT_H_
