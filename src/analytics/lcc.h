// Local-clustering-coefficient kernel (Figure 16, Section V-E7).
#ifndef CUCKOOGRAPH_ANALYTICS_LCC_H_
#define CUCKOOGRAPH_ANALYTICS_LCC_H_

#include "analytics/kernel.h"

namespace cuckoograph::analytics::lcc {

// per_node[u] = (ordered pairs (v, w) of distinct successors of u with
// edge v->w present) / (deg(u) * (deg(u) - 1)); 0 when deg(u) < 2. Scores
// `sources` (others stay 0), or every vertex when `sources` is empty.
// aggregate = vertices scored.
//
// A multi-thread budget scores vertices in parallel — each lane writes its
// own per_node slots and every coefficient is computed by one lane, so the
// scores are bit-identical to the sequential reference.
KernelResult Run(const CsrSnapshot& graph, Span<const NodeId> sources,
                 const KernelOptions& opts = {});

}  // namespace cuckoograph::analytics::lcc

#endif  // CUCKOOGRAPH_ANALYTICS_LCC_H_
