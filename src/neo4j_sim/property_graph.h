// A Neo4j-style property graph record store (Section V-G). Models the
// part of Neo4j's storage that the paper's integration targets: nodes and
// relationships are fixed records, each node's relationships hang off the
// node in a linked chain, and answering "which relationships connect u to
// v?" without an index means walking u's whole chain — the O(degree)
// adjacency scan ("expand") that Figure 18's un-indexed column pays.
// Records carry string property maps so relationship creation has the
// realistic record-allocation cost, not just two integer writes.
#ifndef CUCKOOGRAPH_NEO4J_SIM_PROPERTY_GRAPH_H_
#define CUCKOOGRAPH_NEO4J_SIM_PROPERTY_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace cuckoograph::neo4j_sim {

// Relationship identifier: the index of the record in creation order.
using RelId = uint32_t;
inline constexpr RelId kNoRel = ~RelId{0};

// Property container of nodes and relationships. Ordered map: iteration
// order is deterministic, and the roster per record is small.
using PropertyMap = std::map<std::string, std::string>;

struct RelationshipRecord {
  NodeId start = 0;
  NodeId end = 0;
  std::string type;
  // Next relationship in `start`'s out-chain (kNoRel terminates), newest
  // first — the linked-list traversal structure of Neo4j's record store.
  RelId next_from_start = kNoRel;
  PropertyMap properties;
};

struct NodeRecord {
  RelId first_out = kNoRel;  // head of the out-chain, newest first
  uint32_t out_degree = 0;
  PropertyMap properties;
};

class PropertyGraphStore {
 public:
  // Creates a new relationship record (parallel relationships between the
  // same pair are distinct records, as in Neo4j), creating either endpoint
  // node on first sight, and returns its id. Ids are dense and ascending
  // in creation order.
  RelId CreateRelationship(NodeId from, NodeId to,
                           std::string_view type = "RELATED");

  // Every relationship from -> to, newest first, found by scanning the
  // whole out-chain of `from` — the un-indexed lookup path. Each chain hop
  // increments scan_steps().
  std::vector<RelId> FindRelationships(NodeId from, NodeId to) const;

  bool HasNode(NodeId id) const { return nodes_.count(id) != 0; }
  size_t OutDegree(NodeId id) const;

  const RelationshipRecord& relationship(RelId id) const {
    return rels_[id];
  }

  // Property accessors. Setting a node property creates the node if
  // needed; getters return nullptr when the record or key is absent.
  void SetNodeProperty(NodeId id, std::string key, std::string value);
  const std::string* GetNodeProperty(NodeId id,
                                     const std::string& key) const;
  void SetRelationshipProperty(RelId id, std::string key, std::string value);
  const std::string* GetRelationshipProperty(RelId id,
                                             const std::string& key) const;

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumRelationships() const { return rels_.size(); }

  // Cumulative chain hops performed by FindRelationships since
  // construction — the Figure 18 bench reports it as evidence of how much
  // adjacency walking the un-indexed path does.
  size_t scan_steps() const { return scan_steps_; }

  // Heap footprint of the record arrays (property payloads included).
  size_t MemoryBytes() const;

 private:
  NodeRecord& EnsureNode(NodeId id);

  std::unordered_map<NodeId, NodeRecord> nodes_;
  std::vector<RelationshipRecord> rels_;
  mutable size_t scan_steps_ = 0;
};

}  // namespace cuckoograph::neo4j_sim

#endif  // CUCKOOGRAPH_NEO4J_SIM_PROPERTY_GRAPH_H_
