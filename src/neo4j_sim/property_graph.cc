#include "neo4j_sim/property_graph.h"

#include <utility>

namespace cuckoograph::neo4j_sim {
namespace {

size_t PropertyMapBytes(const PropertyMap& map) {
  size_t bytes = 0;
  for (const auto& [key, value] : map) {
    bytes += sizeof(PropertyMap::value_type) + key.capacity() +
             value.capacity();
  }
  return bytes;
}

}  // namespace

NodeRecord& PropertyGraphStore::EnsureNode(NodeId id) {
  return nodes_[id];  // value-initialized on first sight
}

RelId PropertyGraphStore::CreateRelationship(NodeId from, NodeId to,
                                             std::string_view type) {
  const RelId id = static_cast<RelId>(rels_.size());
  NodeRecord& start = EnsureNode(from);
  EnsureNode(to);
  RelationshipRecord record;
  record.start = from;
  record.end = to;
  record.type.assign(type);
  record.next_from_start = start.first_out;
  rels_.push_back(std::move(record));
  start.first_out = id;
  ++start.out_degree;
  return id;
}

std::vector<RelId> PropertyGraphStore::FindRelationships(NodeId from,
                                                         NodeId to) const {
  std::vector<RelId> found;
  const auto it = nodes_.find(from);
  if (it == nodes_.end()) return found;
  for (RelId rel = it->second.first_out; rel != kNoRel;
       rel = rels_[rel].next_from_start) {
    ++scan_steps_;
    if (rels_[rel].end == to) found.push_back(rel);
  }
  return found;
}

size_t PropertyGraphStore::OutDegree(NodeId id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? 0 : it->second.out_degree;
}

void PropertyGraphStore::SetNodeProperty(NodeId id, std::string key,
                                         std::string value) {
  EnsureNode(id).properties[std::move(key)] = std::move(value);
}

const std::string* PropertyGraphStore::GetNodeProperty(
    NodeId id, const std::string& key) const {
  const auto node = nodes_.find(id);
  if (node == nodes_.end()) return nullptr;
  const auto property = node->second.properties.find(key);
  return property == node->second.properties.end() ? nullptr
                                                   : &property->second;
}

void PropertyGraphStore::SetRelationshipProperty(RelId id, std::string key,
                                                 std::string value) {
  rels_[id].properties[std::move(key)] = std::move(value);
}

const std::string* PropertyGraphStore::GetRelationshipProperty(
    RelId id, const std::string& key) const {
  if (id >= rels_.size()) return nullptr;
  const auto property = rels_[id].properties.find(key);
  return property == rels_[id].properties.end() ? nullptr
                                                : &property->second;
}

size_t PropertyGraphStore::MemoryBytes() const {
  size_t bytes = rels_.capacity() * sizeof(RelationshipRecord);
  for (const RelationshipRecord& rel : rels_) {
    bytes += rel.type.capacity() + PropertyMapBytes(rel.properties);
  }
  // unordered_map: buckets plus one heap node per entry.
  bytes += nodes_.bucket_count() * sizeof(void*);
  for (const auto& [id, node] : nodes_) {
    (void)id;
    bytes += sizeof(std::pair<const NodeId, NodeRecord>) + sizeof(void*) +
             PropertyMapBytes(node.properties);
  }
  return bytes;
}

}  // namespace cuckoograph::neo4j_sim
