#include "neo4j_sim/indexed_property_graph.h"

namespace cuckoograph::neo4j_sim {

RelId IndexedPropertyGraph::CreateRelationship(NodeId from, NodeId to,
                                               std::string_view type) {
  const RelId id = store_.CreateRelationship(from, to, type);
  index_.InsertEdge(from, to);
  const uint64_t key = EdgeKey(Edge{from, to});
  const auto [it, inserted] = pair_head_.emplace(key, id);
  next_same_pair_.push_back(inserted ? kNoRel : it->second);
  it->second = id;
  return id;
}

IndexedPropertyGraph::RelationshipIterator
IndexedPropertyGraph::FindRelationships(NodeId from, NodeId to) const {
  if (!index_.QueryEdge(from, to)) {
    ++index_rejects_;
    return RelationshipIterator();
  }
  const auto it = pair_head_.find(EdgeKey(Edge{from, to}));
  return RelationshipIterator(this, it->second);
}

size_t IndexedPropertyGraph::CountRelationships(NodeId from,
                                                NodeId to) const {
  size_t count = 0;
  for (RelationshipIterator it = FindRelationships(from, to); it.Valid();
       it.Next()) {
    ++count;
  }
  return count;
}

size_t IndexedPropertyGraph::MemoryBytes() const {
  size_t bytes = store_.MemoryBytes() + index_.MemoryBytes();
  bytes += next_same_pair_.capacity() * sizeof(RelId);
  bytes += pair_head_.bucket_count() * sizeof(void*);
  bytes += pair_head_.size() *
           (sizeof(std::pair<const uint64_t, RelId>) + sizeof(void*));
  return bytes;
}

}  // namespace cuckoograph::neo4j_sim
