// The paper's Section V-G integration: the same property graph store,
// with a CuckooGraph edge index maintained alongside every relationship
// write. Lookups consult the index first — a negative answer costs one
// O(1) CuckooGraph probe and never touches the record store, and a
// positive answer jumps straight to the matching relationship chain
// instead of scanning the start node's whole adjacency. Creation pays the
// extra index insert; that is the Insertion-vs-Query trade Figure 18
// reports ("Ours+Neo4j" slower to load, much faster to look up).
#ifndef CUCKOOGRAPH_NEO4J_SIM_INDEXED_PROPERTY_GRAPH_H_
#define CUCKOOGRAPH_NEO4J_SIM_INDEXED_PROPERTY_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "core/cuckoo_graph.h"
#include "neo4j_sim/property_graph.h"

namespace cuckoograph::neo4j_sim {

class IndexedPropertyGraph {
 public:
  // Walks the relationships from -> to, newest first. Invalidated by any
  // mutation of the owning graph.
  class RelationshipIterator {
   public:
    RelationshipIterator() = default;

    bool Valid() const { return current_ != kNoRel; }
    RelId Id() const { return current_; }
    const RelationshipRecord& record() const {
      return owner_->store().relationship(current_);
    }
    void Next() { current_ = owner_->next_same_pair_[current_]; }

   private:
    friend class IndexedPropertyGraph;
    RelationshipIterator(const IndexedPropertyGraph* owner, RelId head)
        : owner_(owner), current_(head) {}

    const IndexedPropertyGraph* owner_ = nullptr;
    RelId current_ = kNoRel;
  };

  // CreateRelationship with the index maintained alongside: the record
  // store write, a CuckooGraph InsertEdge, and a per-pair chain link.
  RelId CreateRelationship(NodeId from, NodeId to,
                           std::string_view type = "RELATED");

  // Indexed lookup. The CuckooGraph probe answers absence in O(1); on a
  // hit the iterator starts at the pair's newest relationship and walks
  // only the parallel relationships of that exact pair — never the rest
  // of `from`'s adjacency.
  RelationshipIterator FindRelationships(NodeId from, NodeId to) const;

  // Pure index probe: is there at least one relationship from -> to?
  bool HasRelationship(NodeId from, NodeId to) const {
    return index_.QueryEdge(from, to);
  }

  // Number of parallel relationships from -> to (0 when none). Costs the
  // index probe plus one hop per parallel relationship.
  size_t CountRelationships(NodeId from, NodeId to) const;

  // The underlying record store; property reads/writes go through it
  // directly (properties are not indexed). Only exposed const — record
  // and chain topology must change through CreateRelationship so the
  // index cannot drift from the store.
  const PropertyGraphStore& store() const { return store_; }

  // The maintained CuckooGraph edge index.
  const CuckooGraph& index() const { return index_; }

  // Relationship property writes, forwarded to the record store.
  void SetRelationshipProperty(RelId id, std::string key,
                               std::string value) {
    store_.SetRelationshipProperty(id, std::move(key), std::move(value));
  }

  // Lookups answered negatively by the index alone (no record-store
  // access at all).
  size_t index_rejects() const { return index_rejects_; }

  // Record store plus index plus chain-table footprint.
  size_t MemoryBytes() const;

 private:
  PropertyGraphStore store_;
  CuckooGraph index_;
  // EdgeKey(from, to) -> the pair's newest relationship; `next_same_pair_`
  // (indexed by RelId) chains to older parallel relationships. Together
  // they are the index's payload: the CuckooGraph answers membership, and
  // the chain hands back the records.
  std::unordered_map<uint64_t, RelId> pair_head_;
  std::vector<RelId> next_same_pair_;
  mutable size_t index_rejects_ = 0;
};

}  // namespace cuckoograph::neo4j_sim

#endif  // CUCKOOGRAPH_NEO4J_SIM_INDEXED_PROPERTY_GRAPH_H_
