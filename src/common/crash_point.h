// Named crash points for the fault-injection test harness
// (tests/crash_point_harness.h): code that participates in a durability
// protocol calls CrashPoint("layer:moment") at the instants a crash-
// recovery matrix must cover, and a test-installed handler can kill the
// process right there. With no handler installed (every production run)
// a crash point costs one relaxed atomic load, so the hooks stay
// compiled in — the binary the crash tests prove is the binary that
// ships.
//
// Registered points (grep for CrashPoint( to verify the list):
//   core:mid_transformation    inline slots copied out, chain half-built
//   wal:post_append_pre_sync   record bytes written, fdatasync not issued
//   wal:mid_group_commit       commit thread woke, group fdatasync pending
//   snapshot:pre_rename        snapshot tmp durable, rename not issued
//   snapshot:post_rename       snapshot renamed, WAL not yet truncated
#ifndef CUCKOOGRAPH_COMMON_CRASH_POINT_H_
#define CUCKOOGRAPH_COMMON_CRASH_POINT_H_

#include <atomic>

namespace cuckoograph {

// Handler invoked at every crash point with the point's name. It may
// terminate the process (the harness raises SIGKILL); if it returns,
// execution continues normally.
using CrashPointHandler = void (*)(const char* point);

namespace internal {
inline std::atomic<CrashPointHandler> g_crash_point_handler{nullptr};
}  // namespace internal

// Installs (or, with nullptr, removes) the process-wide handler. Tests
// install it in a forked child before touching the store under test.
inline void SetCrashPointHandler(CrashPointHandler handler) {
  internal::g_crash_point_handler.store(handler, std::memory_order_release);
}

// Announces a named crash point. `point` must be a string literal (the
// handler may stash the pointer).
inline void CrashPoint(const char* point) {
  CrashPointHandler handler =
      internal::g_crash_point_handler.load(std::memory_order_acquire);
  if (handler != nullptr) handler(point);
}

}  // namespace cuckoograph

#endif  // CUCKOOGRAPH_COMMON_CRASH_POINT_H_
