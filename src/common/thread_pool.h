// A small fixed-worker thread pool with a grain-controlled parallel-for:
// the parallel substrate of the analytics engine (parallel CsrSnapshot
// builds, the direction-optimizing BFS, the frontier-parallel kernels).
// Deliberately work-stealing-free: ParallelFor hands out contiguous index
// chunks from one shared atomic cursor, so lanes never touch each other's
// queues and the scheduling cost per chunk is one fetch_add.
//
// Concurrency contract:
//  - Submit/ParallelFor may be called from any thread, including from
//    inside a running task (ParallelFor from a task uses only the calling
//    lane — it never blocks waiting for pool capacity, so nesting cannot
//    deadlock).
//  - ParallelFor is a barrier: it returns only after every index of
//    [begin, end) has been processed exactly once, and rethrows the first
//    exception a chunk body threw (remaining chunks are abandoned, running
//    ones finish first).
//  - The destructor runs every task still queued, then joins the workers;
//    nothing submitted before destruction is dropped.
//
// The process-wide Shared() pool exists so repeated kernel calls reuse
// warm threads instead of paying thread spawn per call (the KernelOptions
// path in src/analytics/ routes through it); it grows its worker set on
// demand and never shrinks.
#ifndef CUCKOOGRAPH_COMMON_THREAD_POOL_H_
#define CUCKOOGRAPH_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cuckoograph {

class ThreadPool {
 public:
  // Spawns `num_workers` workers (0 is valid: every ParallelFor then runs
  // inline on the caller, the degenerate single-threaded pool).
  explicit ThreadPool(size_t num_workers);

  // Runs every still-queued task, then joins. No task submitted before
  // destruction began is dropped.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const;

  // Grows the worker set to at least `n` workers (never shrinks). Safe to
  // call concurrently with running work.
  void EnsureWorkers(size_t n);

  // Enqueues a fire-and-forget task. Use ParallelFor when completion or
  // exceptions matter; Submit is the low-level primitive underneath it.
  void Submit(std::function<void()> task);

  // Splits [begin, end) into contiguous chunks of at least `grain`
  // indices and runs `body(chunk_begin, chunk_end)` over them on up to
  // `parallelism` lanes (the calling thread is one lane; at most
  // parallelism - 1 workers join it). Blocks until every index was
  // processed exactly once; rethrows the first exception thrown by a
  // chunk body after all lanes have stopped. parallelism <= 1, an empty
  // range, or a range no larger than `grain` runs inline on the caller —
  // byte-for-byte the sequential loop.
  template <typename Fn>
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   size_t parallelism, Fn&& body) {
    if (end <= begin) return;
    if (grain == 0) grain = 1;
    if (parallelism <= 1 || end - begin <= grain) {
      body(begin, end);
      return;
    }
    DoParallelFor(begin, end, grain, parallelism,
                  std::function<void(size_t, size_t)>(
                      std::forward<Fn>(body)));
  }

  // The process-wide pool the analytics kernels share: created on first
  // use, grown (via EnsureWorkers) to the largest parallelism ever
  // requested, destroyed at process exit. Intentionally oversubscribable —
  // on a box with fewer cores than requested lanes the chunks interleave,
  // which is exactly what the TSan differential suites want.
  static ThreadPool& Shared();

 private:
  void SpawnWorkersLocked(size_t n);
  void WorkerLoop();
  void DoParallelFor(size_t begin, size_t end, size_t grain,
                     size_t parallelism,
                     const std::function<void(size_t, size_t)>& body);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;       // wakes idle workers
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace cuckoograph

#endif  // CUCKOOGRAPH_COMMON_THREAD_POOL_H_
