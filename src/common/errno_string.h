// Thread-safe errno formatting. The server layers report socket errors
// through strings; std::strerror writes into static storage and is
// flagged by concurrency-mt-unsafe (two workers failing at once can
// tear each other's message), so everything goes through strerror_r
// here. The overloaded adapter absorbs the two strerror_r signatures —
// glibc's GNU variant returns the message pointer, the XSI variant
// returns an int and fills the buffer — without a feature-test maze.
#ifndef CUCKOOGRAPH_COMMON_ERRNO_STRING_H_
#define CUCKOOGRAPH_COMMON_ERRNO_STRING_H_

#include <string.h>

#include <string>

namespace cuckoograph {
namespace internal {

inline const char* StrErrorAdapt(const char* result, const char* /*buf*/) {
  return result;  // GNU strerror_r: the message (not necessarily buf)
}
inline const char* StrErrorAdapt(int result, const char* buf) {
  return result == 0 ? buf : "Unknown error";  // XSI strerror_r
}

}  // namespace internal

// The message for `err` (an errno value), safe from any thread.
inline std::string ErrnoString(int err) {
  char buf[256];
  buf[0] = '\0';
  return internal::StrErrorAdapt(::strerror_r(err, buf, sizeof(buf)), buf);
}

}  // namespace cuckoograph

#endif  // CUCKOOGRAPH_COMMON_ERRNO_STRING_H_
