// Core value types shared by every layer: vertex identifiers and the edge
// record the dataset generators emit and the stores consume.
#ifndef CUCKOOGRAPH_COMMON_TYPES_H_
#define CUCKOOGRAPH_COMMON_TYPES_H_

#include <cstdint>

namespace cuckoograph {

// Vertex identifier. 32 bits covers every dataset in Table IV; the stores
// never interpret the value, so 0 and ~0u are both valid vertices.
using NodeId = uint32_t;

// One directed edge <u, v> of an arrival stream. Streams may repeat an
// edge; the weighted store accumulates repetitions as edge weight.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;
};

inline bool operator==(const Edge& a, const Edge& b) {
  return a.u == b.u && a.v == b.v;
}

inline bool operator!=(const Edge& a, const Edge& b) { return !(a == b); }

// Packs an edge into one 64-bit key, e.g. for dedup sets.
inline uint64_t EdgeKey(const Edge& e) {
  return (static_cast<uint64_t>(e.u) << 32) | static_cast<uint64_t>(e.v);
}

}  // namespace cuckoograph

#endif  // CUCKOOGRAPH_COMMON_TYPES_H_
