// A minimal C++17 stand-in for std::span<T>: a non-owning pointer + length
// view, used by the GraphStore batch operations so callers can pass vectors,
// arrays, or sub-ranges without copying.
#ifndef CUCKOOGRAPH_COMMON_SPAN_H_
#define CUCKOOGRAPH_COMMON_SPAN_H_

#include <cstddef>
#include <vector>

namespace cuckoograph {

template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(T* data, size_t size) : data_(data), size_(size) {}

  // From a vector (or const vector, when T is const).
  template <typename U>
  Span(std::vector<U>& v) : data_(v.data()), size_(v.size()) {}
  template <typename U>
  Span(const std::vector<U>& v) : data_(v.data()), size_(v.size()) {}

  // From an array.
  template <size_t N>
  constexpr Span(T (&array)[N]) : data_(array), size_(N) {}

  constexpr T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr T& operator[](size_t i) const { return data_[i]; }
  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + size_; }

  constexpr Span subspan(size_t offset, size_t count) const {
    return Span(data_ + offset, count);
  }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace cuckoograph

#endif  // CUCKOOGRAPH_COMMON_SPAN_H_
