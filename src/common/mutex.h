// Capability-annotated lock wrappers: the repo's std::mutex /
// std::shared_mutex, carrying the Clang Thread Safety Analysis
// attributes the standard-library types lack. Locked structures declare
// their data CUCKOOGRAPH_GUARDED_BY(mu) against one of these types and
// clang then rejects, at compile time, any access path that does not
// hold the right capability (see docs/ARCHITECTURE.md, "Locking
// discipline & annotations"; the negative-compile test under
// tests/annotation_enforcement/ proves the rejection actually fires).
//
// The API is deliberately the Abseil shape — Lock/Unlock/ReaderLock and
// RAII MutexLock / WriterMutexLock / ReaderMutexLock — because that is
// the annotation discipline clang's analysis was built around.
#ifndef CUCKOOGRAPH_COMMON_MUTEX_H_
#define CUCKOOGRAPH_COMMON_MUTEX_H_

#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace cuckoograph {

// An exclusive lock (std::mutex) the analysis can see.
class CUCKOOGRAPH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CUCKOOGRAPH_ACQUIRE() { mu_.lock(); }
  bool TryLock() CUCKOOGRAPH_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void Unlock() CUCKOOGRAPH_RELEASE() { mu_.unlock(); }

  // Tells the analysis "this is held here" on paths it cannot follow
  // (e.g. a callback invoked under a lock taken elsewhere). Purely a
  // static assertion — no runtime check.
  void AssertHeld() const CUCKOOGRAPH_ASSERT_CAPABILITY(this) {}

 private:
  std::mutex mu_;
};

// A reader-writer lock (std::shared_mutex): Lock/Unlock are the
// exclusive (writer) side, ReaderLock/ReaderUnlock the shared side.
class CUCKOOGRAPH_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() CUCKOOGRAPH_ACQUIRE() { mu_.lock(); }
  bool TryLock() CUCKOOGRAPH_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void Unlock() CUCKOOGRAPH_RELEASE() { mu_.unlock(); }

  void ReaderLock() CUCKOOGRAPH_ACQUIRE_SHARED() { mu_.lock_shared(); }
  bool ReaderTryLock() CUCKOOGRAPH_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }
  void ReaderUnlock() CUCKOOGRAPH_RELEASE_SHARED() { mu_.unlock_shared(); }

  void AssertHeld() const CUCKOOGRAPH_ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() const CUCKOOGRAPH_ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

// RAII exclusive hold of a Mutex for the enclosing scope.
class CUCKOOGRAPH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) CUCKOOGRAPH_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~MutexLock() CUCKOOGRAPH_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// RAII exclusive (writer) hold of a SharedMutex.
class CUCKOOGRAPH_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) CUCKOOGRAPH_ACQUIRE(mu)
      : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() CUCKOOGRAPH_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// RAII shared (reader) hold of a SharedMutex.
class CUCKOOGRAPH_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) CUCKOOGRAPH_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() CUCKOOGRAPH_RELEASE() { mu_->ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

}  // namespace cuckoograph

#endif  // CUCKOOGRAPH_COMMON_MUTEX_H_
