// SplitMix64: the tiny deterministic generator used by the dataset
// generators, the cuckoo kick-out victim selection, and the benches. Fully
// reproducible: the same seed always yields the same sequence.
#ifndef CUCKOOGRAPH_COMMON_RNG_H_
#define CUCKOOGRAPH_COMMON_RNG_H_

#include <cstdint>

#include "common/types.h"

namespace cuckoograph {

class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform value in [0, bound); returns 0 when bound == 0.
  uint64_t NextBelow64(uint64_t bound) {
    return bound == 0 ? 0 : Next() % bound;
  }

  // NodeId-typed convenience for workload generation.
  NodeId NextBelow(uint64_t bound) {
    return static_cast<NodeId>(NextBelow64(bound));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

}  // namespace cuckoograph

#endif  // CUCKOOGRAPH_COMMON_RNG_H_
