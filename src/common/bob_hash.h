// BobHash: Bob Jenkins' lookup3-style 32-bit mixer over 64-bit keys. The
// cuckoo tables need two independent hash functions per table; seeding two
// BobHash instances with different constants provides them.
#ifndef CUCKOOGRAPH_COMMON_BOB_HASH_H_
#define CUCKOOGRAPH_COMMON_BOB_HASH_H_

#include <cstdint>

namespace cuckoograph {

class BobHash {
 public:
  explicit BobHash(uint32_t seed = 0) : seed_(seed) {}

  uint32_t operator()(uint64_t key) const {
    // Jenkins' final() mix on (low word, high word, seed).
    uint32_t a = 0xdeadbeef + static_cast<uint32_t>(key) + seed_;
    uint32_t b = 0xdeadbeef + static_cast<uint32_t>(key >> 32) + seed_;
    uint32_t c = seed_ ^ 0x9e3779b9;
    c ^= b;
    c -= Rot(b, 14);
    a ^= c;
    a -= Rot(c, 11);
    b ^= a;
    b -= Rot(a, 25);
    c ^= b;
    c -= Rot(b, 16);
    a ^= c;
    a -= Rot(c, 4);
    b ^= a;
    b -= Rot(a, 14);
    c ^= b;
    c -= Rot(b, 24);
    return c;
  }

  uint32_t seed() const { return seed_; }

 private:
  static uint32_t Rot(uint32_t x, int k) {
    return (x << k) | (x >> (32 - k));
  }

  uint32_t seed_;
};

}  // namespace cuckoograph

#endif  // CUCKOOGRAPH_COMMON_BOB_HASH_H_
