// Wall-clock timing for the benches, plus the Mops throughput helper.
#ifndef CUCKOOGRAPH_COMMON_TIMER_H_
#define CUCKOOGRAPH_COMMON_TIMER_H_

#include <chrono>
#include <cstddef>

namespace cuckoograph {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void Reset() { start_ = std::chrono::steady_clock::now(); }

  double ElapsedSeconds() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Million operations per second; 0 when the interval is too small to
// measure (avoids inf in the bench tables).
inline double Mops(size_t operations, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(operations) / seconds / 1e6;
}

}  // namespace cuckoograph

#endif  // CUCKOOGRAPH_COMMON_TIMER_H_
