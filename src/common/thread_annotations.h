// Portable Clang Thread Safety Analysis macros. Under clang (which
// implements -Wthread-safety) these expand to the capability attributes
// that turn the locking discipline documented in docs/ARCHITECTURE.md
// into compile-time proofs; under GCC and every other compiler they
// expand to nothing, so annotated code builds everywhere and the
// analysis runs wherever clang does (the static-analysis CI job builds
// with -Wthread-safety -Werror).
//
// The vocabulary (matching the upstream attribute names):
//  - CUCKOOGRAPH_CAPABILITY / _SCOPED_CAPABILITY mark a lock type and a
//    RAII locker type (see common/mutex.h for the annotated wrappers).
//  - CUCKOOGRAPH_GUARDED_BY(mu) on a field means "hold mu to touch
//    this" — shared for reads, exclusive for writes.
//  - CUCKOOGRAPH_REQUIRES / _REQUIRES_SHARED on a function mean the
//    caller must already hold the named capability.
//  - CUCKOOGRAPH_ACQUIRE / _RELEASE (+ _SHARED variants) annotate the
//    lock type's own methods.
//  - CUCKOOGRAPH_EXCLUDES declares "must NOT be held" (non-reentrancy).
#ifndef CUCKOOGRAPH_COMMON_THREAD_ANNOTATIONS_H_
#define CUCKOOGRAPH_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CUCKOOGRAPH_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CUCKOOGRAPH_THREAD_ANNOTATION
#define CUCKOOGRAPH_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define CUCKOOGRAPH_CAPABILITY(x) \
  CUCKOOGRAPH_THREAD_ANNOTATION(capability(x))

#define CUCKOOGRAPH_SCOPED_CAPABILITY \
  CUCKOOGRAPH_THREAD_ANNOTATION(scoped_lockable)

#define CUCKOOGRAPH_GUARDED_BY(x) \
  CUCKOOGRAPH_THREAD_ANNOTATION(guarded_by(x))

#define CUCKOOGRAPH_PT_GUARDED_BY(x) \
  CUCKOOGRAPH_THREAD_ANNOTATION(pt_guarded_by(x))

#define CUCKOOGRAPH_ACQUIRED_BEFORE(...) \
  CUCKOOGRAPH_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define CUCKOOGRAPH_ACQUIRED_AFTER(...) \
  CUCKOOGRAPH_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define CUCKOOGRAPH_REQUIRES(...) \
  CUCKOOGRAPH_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define CUCKOOGRAPH_REQUIRES_SHARED(...) \
  CUCKOOGRAPH_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define CUCKOOGRAPH_ACQUIRE(...) \
  CUCKOOGRAPH_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define CUCKOOGRAPH_ACQUIRE_SHARED(...) \
  CUCKOOGRAPH_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define CUCKOOGRAPH_RELEASE(...) \
  CUCKOOGRAPH_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define CUCKOOGRAPH_RELEASE_SHARED(...) \
  CUCKOOGRAPH_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define CUCKOOGRAPH_RELEASE_GENERIC(...) \
  CUCKOOGRAPH_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

#define CUCKOOGRAPH_TRY_ACQUIRE(...) \
  CUCKOOGRAPH_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define CUCKOOGRAPH_TRY_ACQUIRE_SHARED(...) \
  CUCKOOGRAPH_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

#define CUCKOOGRAPH_EXCLUDES(...) \
  CUCKOOGRAPH_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define CUCKOOGRAPH_ASSERT_CAPABILITY(x) \
  CUCKOOGRAPH_THREAD_ANNOTATION(assert_capability(x))

#define CUCKOOGRAPH_ASSERT_SHARED_CAPABILITY(x) \
  CUCKOOGRAPH_THREAD_ANNOTATION(assert_shared_capability(x))

#define CUCKOOGRAPH_RETURN_CAPABILITY(x) \
  CUCKOOGRAPH_THREAD_ANNOTATION(lock_returned(x))

#define CUCKOOGRAPH_NO_THREAD_SAFETY_ANALYSIS \
  CUCKOOGRAPH_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---- ThreadSanitizer interaction -------------------------------------------
// A seqlock reader intentionally races the writer on the protected data:
// it probes without the lock and *discards* any value whose sequence
// validation fails. TSan cannot model "read, then validate, then keep or
// discard", so the handful of optimistic probe functions are excluded
// from instrumentation. Everything else — the sequence word, the epoch
// slots, the locked fallback — uses real atomics/mutexes and stays fully
// TSan-checked.
#if defined(__SANITIZE_THREAD__)
#define CUCKOOGRAPH_NO_SANITIZE_THREAD __attribute__((no_sanitize_thread))
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CUCKOOGRAPH_NO_SANITIZE_THREAD __attribute__((no_sanitize("thread")))
#endif
#endif
#ifndef CUCKOOGRAPH_NO_SANITIZE_THREAD
#define CUCKOOGRAPH_NO_SANITIZE_THREAD
#endif

// Forces inlining so tiny probe helpers dissolve into their (possibly
// TSan-excluded) callers instead of surviving as instrumented calls.
#if defined(__GNUC__) || defined(__clang__)
#define CUCKOOGRAPH_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define CUCKOOGRAPH_ALWAYS_INLINE inline
#endif

#endif  // CUCKOOGRAPH_COMMON_THREAD_ANNOTATIONS_H_
