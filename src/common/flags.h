// Tiny argv parser used by every bench binary. Accepts "--name=value",
// "--name value", and bare "--name" switches; typed getters fall back to
// the caller's default when the flag is absent or unparsable.
#ifndef CUCKOOGRAPH_COMMON_FLAGS_H_
#define CUCKOOGRAPH_COMMON_FLAGS_H_

#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

namespace cuckoograph {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--", 2) != 0) continue;
      std::string body(arg + 2);
      const size_t eq = body.find('=');
      if (eq != std::string::npos) {
        values_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[body] = argv[++i];
      } else {
        values_[body] = "";
      }
    }
  }

  bool Has(const std::string& name) const {
    return values_.count(name) != 0;
  }

  std::string GetString(const std::string& name,
                        const std::string& default_value) const {
    const auto it = values_.find(name);
    return it == values_.end() ? default_value : it->second;
  }

  long long GetInt(const std::string& name, long long default_value) const {
    const auto it = values_.find(name);
    if (it == values_.end() || it->second.empty()) return default_value;
    char* end = nullptr;
    const long long parsed = std::strtoll(it->second.c_str(), &end, 10);
    return (end == nullptr || *end != '\0') ? default_value : parsed;
  }

  double GetDouble(const std::string& name, double default_value) const {
    const auto it = values_.find(name);
    if (it == values_.end() || it->second.empty()) return default_value;
    char* end = nullptr;
    const double parsed = std::strtod(it->second.c_str(), &end);
    return (end == nullptr || *end != '\0') ? default_value : parsed;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace cuckoograph

#endif  // CUCKOOGRAPH_COMMON_FLAGS_H_
