#include "common/thread_pool.h"

#include <exception>
#include <utility>

namespace cuckoograph {

namespace {

// Set while a pool worker is executing tasks. A ParallelFor issued from
// inside a task must not wait on pool capacity (the only free lane might
// be the very worker that is waiting), so it runs inline instead.
thread_local bool t_inside_worker = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_workers) {
  std::lock_guard<std::mutex> lock(mu_);
  SpawnWorkersLocked(num_workers);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  // Anything that slipped into the queue after the last worker drained it
  // (a task submitted by another task mid-shutdown) still runs, on this
  // thread, so nothing submitted is ever dropped.
  while (!queue_.empty()) {
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    task();
  }
}

size_t ThreadPool::num_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

void ThreadPool::EnsureWorkers(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (n > workers_.size()) SpawnWorkersLocked(n - workers_.size());
}

void ThreadPool::SpawnWorkersLocked(size_t n) {
  workers_.reserve(workers_.size() + n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  t_inside_worker = true;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) break;  // stopping_ and nothing left to drain
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task();
    lock.lock();
  }
}

void ThreadPool::DoParallelFor(size_t begin, size_t end, size_t grain,
                               size_t parallelism,
                               const std::function<void(size_t, size_t)>&
                                   body) {
  if (t_inside_worker) {  // nested call: this lane is the budget
    body(begin, end);
    return;
  }

  const size_t n = end - begin;
  size_t lanes = parallelism;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (lanes > workers_.size() + 1) lanes = workers_.size() + 1;
  }
  // Chunks outnumber lanes so an uneven body still balances, but never
  // undercut the grain (the caller's amortization floor).
  size_t chunk = (n + lanes * 4 - 1) / (lanes * 4);
  if (chunk < grain) chunk = grain;
  const size_t num_chunks = (n + chunk - 1) / chunk;
  if (lanes > num_chunks) lanes = num_chunks;
  if (lanes <= 1) {
    body(begin, end);
    return;
  }

  // Shared lane state, on this frame: the barrier below outlives every
  // reference a lane task holds.
  struct ForState {
    std::atomic<size_t> next_chunk{0};
    std::mutex mu;
    std::condition_variable done_cv;
    size_t outstanding_tasks;
    std::exception_ptr first_error;  // guarded by mu
  } state;
  state.outstanding_tasks = lanes - 1;

  const auto run_lane = [begin, end, chunk, num_chunks, &body, &state] {
    while (true) {
      const size_t c =
          state.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const size_t b = begin + c * chunk;
      const size_t e = b + chunk < end ? b + chunk : end;
      try {
        body(b, e);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.mu);
        if (!state.first_error) {
          state.first_error = std::current_exception();
        }
        // Abandon the chunks nobody claimed yet; lanes mid-chunk finish.
        state.next_chunk.store(num_chunks, std::memory_order_relaxed);
        return;
      }
    }
  };

  for (size_t t = 0; t + 1 < lanes; ++t) {
    Submit([&run_lane, &state] {
      run_lane();
      std::lock_guard<std::mutex> lock(state.mu);
      if (--state.outstanding_tasks == 0) state.done_cv.notify_one();
    });
  }
  run_lane();

  std::unique_lock<std::mutex> lock(state.mu);
  state.done_cv.wait(lock, [&state] { return state.outstanding_tasks == 0; });
  if (state.first_error) std::rethrow_exception(state.first_error);
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(0);
  return pool;
}

}  // namespace cuckoograph
