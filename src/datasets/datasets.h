// Synthetic stand-ins for the Table IV dataset roster. Each generator is
// deterministic (same name and scale always produce the same stream) and
// parameterized so that `scale` linearly controls the stream length while
// the dataset's character (duplication ratio, skew, density) is preserved.
#ifndef CUCKOOGRAPH_DATASETS_DATASETS_H_
#define CUCKOOGRAPH_DATASETS_DATASETS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"

namespace cuckoograph::datasets {

struct Dataset {
  std::string name;
  // True for streams with meaningful edge multiplicity (handled by the
  // weighted store in the paper's experiments).
  bool weighted = false;
  std::vector<Edge> stream;
};

struct DatasetStats {
  size_t nodes = 0;
  size_t stream_edges = 0;
  size_t distinct_edges = 0;
  double avg_degree = 0.0;       // average total degree, 2|E|/|V|
  size_t max_total_degree = 0;   // max in-degree + out-degree
  double density = 0.0;          // |E| / (|V| * (|V| - 1))
};

// The Table IV roster, in presentation order.
const std::vector<std::string>& AllDatasetNames();

// Generates dataset `name` with the stream length scaled by `scale`
// (1.0 reproduces the paper's full size). Unknown names return an empty
// stream. Scale is clamped to (0, 1].
Dataset MakeByName(const std::string& name, double scale);

// Distinct edges of a stream, first-occurrence order preserved.
std::vector<Edge> DedupEdges(const std::vector<Edge>& stream);

// Measured Table IV columns for a generated dataset.
DatasetStats ComputeStats(const Dataset& dataset);

}  // namespace cuckoograph::datasets

#endif  // CUCKOOGRAPH_DATASETS_DATASETS_H_
