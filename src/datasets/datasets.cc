#include "datasets/datasets.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"

namespace cuckoograph::datasets {
namespace {

// Full-scale (scale == 1.0) arrival counts, sized after Table IV.
constexpr size_t kCaidaArrivals = 27'000'000;
constexpr size_t kNotreDameArrivals = 1'500'000;
constexpr size_t kStackOverflowArrivals = 63'500'000;
constexpr size_t kWikiTalkArrivals = 25'000'000;
constexpr size_t kWeiboArrivals = 260'000'000;
constexpr size_t kDenseArrivals = 57'500'000;
constexpr size_t kSparseArrivals = 30'000'000;

size_t ScaledArrivals(size_t base, double scale) {
  const double clamped = std::min(1.0, std::max(1e-9, scale));
  const double arrivals = static_cast<double>(base) * clamped;
  return std::max<size_t>(1, static_cast<size_t>(std::llround(arrivals)));
}

// Skewed node pick: alpha > 1 concentrates probability on low ids.
NodeId ZipfNode(SplitMix64& rng, size_t n, double alpha) {
  const double r = std::pow(rng.NextDouble(), alpha);
  const size_t id = static_cast<size_t>(r * static_cast<double>(n));
  return static_cast<NodeId>(std::min(id, n - 1));
}

// Power-law interaction stream: both endpoints drawn with the given skews
// from an `arrivals / nodes_divisor`-sized vertex set.
Dataset PowerLawStream(const std::string& name, bool weighted, size_t base,
                       double scale, size_t nodes_divisor, double alpha_u,
                       double alpha_v, uint64_t seed) {
  Dataset dataset;
  dataset.name = name;
  dataset.weighted = weighted;
  const size_t arrivals = ScaledArrivals(base, scale);
  const size_t nodes = std::max<size_t>(2, arrivals / nodes_divisor);
  SplitMix64 rng(seed);
  dataset.stream.reserve(arrivals);
  for (size_t i = 0; i < arrivals; ++i) {
    const NodeId u = ZipfNode(rng, nodes, alpha_u);
    NodeId v = ZipfNode(rng, nodes, alpha_v);
    if (v == u) v = static_cast<NodeId>((v + 1) % nodes);
    dataset.stream.push_back(Edge{u, v});
  }
  return dataset;
}

// CAIDA-like IP trace: a bounded set of flows, each repeated many times
// (the stream is ~32x its distinct edge set), with elephant flows.
Dataset CaidaStream(double scale) {
  Dataset dataset;
  dataset.name = "CAIDA";
  dataset.weighted = true;
  const size_t arrivals = ScaledArrivals(kCaidaArrivals, scale);
  const size_t pool_size = std::max<size_t>(1, arrivals / 32);
  SplitMix64 rng(0xC41DAULL);
  std::vector<Edge> pool;
  pool.reserve(pool_size);
  for (size_t i = 0; i < pool_size; ++i) {
    const NodeId u = rng.NextBelow(pool_size);
    NodeId v = rng.NextBelow(pool_size);
    if (v == u) v = static_cast<NodeId>((v + 1) % pool_size);
    pool.push_back(Edge{u, v});
  }
  dataset.stream.reserve(arrivals);
  for (size_t i = 0; i < arrivals; ++i) {
    const size_t flow = static_cast<size_t>(
        ZipfNode(rng, pool_size, /*alpha=*/2.0));
    dataset.stream.push_back(pool[flow]);
  }
  return dataset;
}

// DenseGraph: a ~0.9-density directed graph on ceil(sqrt(|E|/0.9)) nodes.
Dataset DenseStream(double scale) {
  Dataset dataset;
  dataset.name = "DenseGraph";
  dataset.weighted = false;
  const size_t arrivals = ScaledArrivals(kDenseArrivals, scale);
  const size_t nodes = std::max<size_t>(
      2, static_cast<size_t>(
             std::ceil(std::sqrt(static_cast<double>(arrivals) / 0.9))));
  SplitMix64 rng(0xDE45EULL);
  dataset.stream.reserve(arrivals);
  for (size_t u = 0; u < nodes && dataset.stream.size() < arrivals; ++u) {
    for (size_t v = 0; v < nodes && dataset.stream.size() < arrivals; ++v) {
      if (u == v) continue;
      if (rng.NextDouble() < 0.9) {
        dataset.stream.push_back(
            Edge{static_cast<NodeId>(u), static_cast<NodeId>(v)});
      }
    }
  }
  return dataset;
}

// SparseGraph: uniform random pairs over a node set half the stream size.
Dataset SparseStream(double scale) {
  Dataset dataset;
  dataset.name = "SparseGraph";
  dataset.weighted = false;
  const size_t arrivals = ScaledArrivals(kSparseArrivals, scale);
  const size_t nodes = std::max<size_t>(2, arrivals / 2);
  SplitMix64 rng(0x54A45EULL);
  dataset.stream.reserve(arrivals);
  for (size_t i = 0; i < arrivals; ++i) {
    const NodeId u = rng.NextBelow(nodes);
    NodeId v = rng.NextBelow(nodes);
    if (v == u) v = static_cast<NodeId>((v + 1) % nodes);
    dataset.stream.push_back(Edge{u, v});
  }
  return dataset;
}

}  // namespace

const std::vector<std::string>& AllDatasetNames() {
  static const std::vector<std::string> names = {
      "CAIDA",      "NotreDame",  "StackOverflow", "WikiTalk",
      "Weibo",      "DenseGraph", "SparseGraph"};
  return names;
}

Dataset MakeByName(const std::string& name, double scale) {
  if (name == "CAIDA") return CaidaStream(scale);
  if (name == "NotreDame") {
    return PowerLawStream(name, false, kNotreDameArrivals, scale,
                          /*nodes_divisor=*/5, 1.6, 1.6, 0x0DA4EULL);
  }
  if (name == "StackOverflow") {
    return PowerLawStream(name, true, kStackOverflowArrivals, scale,
                          /*nodes_divisor=*/25, 1.8, 1.8, 0x50F10ULL);
  }
  if (name == "WikiTalk") {
    return PowerLawStream(name, true, kWikiTalkArrivals, scale,
                          /*nodes_divisor=*/10, 2.2, 1.3, 0x311C1ULL);
  }
  if (name == "Weibo") {
    return PowerLawStream(name, false, kWeiboArrivals, scale,
                          /*nodes_divisor=*/160, 1.3, 1.1, 0x3E1B0ULL);
  }
  if (name == "DenseGraph") return DenseStream(scale);
  if (name == "SparseGraph") return SparseStream(scale);
  Dataset empty;
  empty.name = name;
  return empty;
}

std::vector<Edge> DedupEdges(const std::vector<Edge>& stream) {
  std::vector<Edge> distinct;
  std::unordered_set<uint64_t> seen;
  seen.reserve(stream.size());
  for (const Edge& e : stream) {
    if (seen.insert(EdgeKey(e)).second) distinct.push_back(e);
  }
  return distinct;
}

DatasetStats ComputeStats(const Dataset& dataset) {
  DatasetStats stats;
  stats.stream_edges = dataset.stream.size();
  std::unordered_set<uint64_t> seen;
  seen.reserve(dataset.stream.size());
  std::unordered_map<NodeId, size_t> degree;
  for (const Edge& e : dataset.stream) {
    if (!seen.insert(EdgeKey(e)).second) continue;
    ++stats.distinct_edges;
    ++degree[e.u];
    ++degree[e.v];
  }
  stats.nodes = degree.size();
  for (const auto& [node, deg] : degree) {
    (void)node;
    stats.max_total_degree = std::max(stats.max_total_degree, deg);
  }
  if (stats.nodes > 0) {
    stats.avg_degree = 2.0 * static_cast<double>(stats.distinct_edges) /
                       static_cast<double>(stats.nodes);
  }
  if (stats.nodes > 1) {
    stats.density = static_cast<double>(stats.distinct_edges) /
                    (static_cast<double>(stats.nodes) *
                     static_cast<double>(stats.nodes - 1));
  }
  return stats;
}

}  // namespace cuckoograph::datasets
