// CRC32C (Castagnoli polynomial, the checksum RocksDB/LevelDB frame
// their WALs with): a portable table-driven implementation. Hardware
// CRC instructions would be faster, but the WAL's cost is dominated by
// the write/fdatasync pair, so the scalar table is plenty — and it is
// identical on every platform, which is what an on-disk format needs.
#ifndef CUCKOOGRAPH_PERSIST_CRC32C_H_
#define CUCKOOGRAPH_PERSIST_CRC32C_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace cuckoograph::persist {

namespace internal {

inline const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace internal

// CRC32C of `n` bytes. Extend a running checksum by passing the prior
// result as `seed` (byte-stream concatenation semantics).
inline uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0) {
  const auto& table = internal::Crc32cTable();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace cuckoograph::persist

#endif  // CUCKOOGRAPH_PERSIST_CRC32C_H_
