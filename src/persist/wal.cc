#include "persist/wal.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/crash_point.h"
#include "common/errno_string.h"
#include "persist/crc32c.h"

namespace cuckoograph::persist {
namespace {

constexpr size_t kFrameHeaderBytes = 8;    // u32 len + u32 crc
constexpr size_t kPayloadHeaderBytes = 13; // u64 lsn + u8 op + u32 count
// Sanity cap on one record's payload (~33M edges). Anything larger is a
// corrupt length field, not a real batch.
constexpr uint32_t kMaxPayloadBytes = 1u << 28;

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v);
  b[1] = static_cast<char>(v >> 8);
  b[2] = static_cast<char>(v >> 16);
  b[3] = static_cast<char>(v >> 24);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const char* p) {
  const auto* b = reinterpret_cast<const uint8_t*>(p);
  return static_cast<uint32_t>(b[0]) | static_cast<uint32_t>(b[1]) << 8 |
         static_cast<uint32_t>(b[2]) << 16 | static_cast<uint32_t>(b[3]) << 24;
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

void SetDetail(std::string* detail, const char* what) {
  if (detail != nullptr) *detail = what;
}

}  // namespace

std::string EncodeWalRecord(uint64_t lsn, WalOp op, Span<const Edge> edges) {
  const uint64_t payload_len =
      kPayloadHeaderBytes + static_cast<uint64_t>(edges.size()) * 8;
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload_len);
  PutU32(&frame, static_cast<uint32_t>(payload_len));
  PutU32(&frame, 0);  // crc patched below, once the payload exists
  PutU64(&frame, lsn);
  frame.push_back(static_cast<char>(op));
  PutU32(&frame, static_cast<uint32_t>(edges.size()));
  for (const Edge& e : edges) {
    PutU32(&frame, e.u);
    PutU32(&frame, e.v);
  }
  const uint32_t crc =
      Crc32c(frame.data() + kFrameHeaderBytes, frame.size() - kFrameHeaderBytes);
  frame[4] = static_cast<char>(crc);
  frame[5] = static_cast<char>(crc >> 8);
  frame[6] = static_cast<char>(crc >> 16);
  frame[7] = static_cast<char>(crc >> 24);
  return frame;
}

WalDecodeStatus DecodeWalRecord(std::string_view bytes, WalRecord* record,
                                size_t* consumed, std::string* detail) {
  *consumed = 0;
  if (bytes.size() < kFrameHeaderBytes) {
    SetDetail(detail, "frame header cut short");
    return WalDecodeStatus::kNeedMore;
  }
  const uint32_t payload_len = GetU32(bytes.data());
  const uint32_t expected_crc = GetU32(bytes.data() + 4);
  if (payload_len < kPayloadHeaderBytes) {
    SetDetail(detail, "payload length below record minimum");
    return WalDecodeStatus::kCorrupt;
  }
  if (payload_len > kMaxPayloadBytes) {
    SetDetail(detail, "payload length above sanity cap");
    return WalDecodeStatus::kCorrupt;
  }
  if (bytes.size() - kFrameHeaderBytes < payload_len) {
    SetDetail(detail, "payload cut short");
    return WalDecodeStatus::kNeedMore;
  }
  const char* payload = bytes.data() + kFrameHeaderBytes;
  if (Crc32c(payload, payload_len) != expected_crc) {
    SetDetail(detail, "payload crc mismatch");
    return WalDecodeStatus::kCorrupt;
  }
  const uint64_t lsn = GetU64(payload);
  const uint8_t op = static_cast<uint8_t>(payload[8]);
  if (op != static_cast<uint8_t>(WalOp::kInsertEdges) &&
      op != static_cast<uint8_t>(WalOp::kDeleteEdges)) {
    SetDetail(detail, "unknown op byte");
    return WalDecodeStatus::kCorrupt;
  }
  const uint32_t count = GetU32(payload + 9);
  if (payload_len !=
      kPayloadHeaderBytes + static_cast<uint64_t>(count) * 8) {
    SetDetail(detail, "edge count disagrees with payload length");
    return WalDecodeStatus::kCorrupt;
  }
  record->lsn = lsn;
  record->op = static_cast<WalOp>(op);
  record->edges.clear();
  record->edges.reserve(count);
  const char* cursor = payload + kPayloadHeaderBytes;
  for (uint32_t i = 0; i < count; ++i, cursor += 8) {
    record->edges.push_back(Edge{GetU32(cursor), GetU32(cursor + 4)});
  }
  *consumed = kFrameHeaderBytes + payload_len;
  return WalDecodeStatus::kOk;
}

bool ReadWalFile(const std::string& path, WalReadResult* out,
                 std::string* error) {
  out->records.clear();
  out->valid_bytes = 0;
  out->clean = true;
  out->detail.clear();
  if (!FileExists(path)) return true;  // never written: an empty log
  std::string bytes;
  if (!ReadFileBytes(path, &bytes, error)) return false;
  std::string_view view = bytes;
  uint64_t prev_lsn = 0;
  while (!view.empty()) {
    WalRecord record;
    size_t consumed = 0;
    std::string why;
    const WalDecodeStatus status =
        DecodeWalRecord(view, &record, &consumed, &why);
    if (status != WalDecodeStatus::kOk) {
      out->clean = false;
      out->detail = (status == WalDecodeStatus::kNeedMore ? "torn tail: "
                                                          : "corrupt tail: ") +
                    why;
      break;
    }
    if (record.lsn <= prev_lsn) {
      // A frame that checksums but regresses the LSN is stale garbage
      // (e.g. recycled bytes after an incomplete truncation) — stop
      // trusting the file here.
      out->clean = false;
      out->detail = "corrupt tail: lsn not increasing";
      break;
    }
    prev_lsn = record.lsn;
    out->records.push_back(std::move(record));
    out->valid_bytes += consumed;
    view.remove_prefix(consumed);
  }
  return true;
}

WalWriter::~WalWriter() { Close(); }

bool WalWriter::Open(const std::string& path, WalSyncMode mode,
                     uint64_t next_lsn, const WritableFileFactory& factory,
                     std::string* error) {
  std::unique_ptr<WritableFile> file =
      factory ? factory(path, /*truncate=*/false, error)
              : OpenWritableFile(path, /*truncate=*/false, error);
  if (file == nullptr) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    file_ = std::move(file);
    mode_ = mode;
    next_lsn_ = next_lsn;
    appended_lsn_ = next_lsn - 1;
    synced_lsn_ = next_lsn - 1;
    stop_ = false;
    failed_ = false;
    error_.clear();
  }
  if (mode == WalSyncMode::kGroup) {
    committer_ = std::thread([this] { CommitLoop(); });
  }
  return true;
}

void WalWriter::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (file_ == nullptr && !committer_.joinable()) return;
    stop_ = true;
  }
  appended_cv_.notify_all();
  if (committer_.joinable()) committer_.join();
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    // Final covering sync so a clean Close() is as durable as kAlways
    // (a kNone writer closing cleanly still flushes — only a crash
    // loses its tail).
    if (!failed_ && synced_lsn_ < appended_lsn_) {
      if (file_->Sync()) {
        ++stats_.syncs;
        synced_lsn_ = appended_lsn_;
      }
    }
    file_->Close();
    file_.reset();
  }
  synced_cv_.notify_all();
}

uint64_t WalWriter::Append(WalOp op, Span<const Edge> edges) {
  std::unique_lock<std::mutex> lock(mu_);
  if (failed_ || stop_ || file_ == nullptr) return 0;
  const uint64_t lsn = next_lsn_;
  const std::string frame = EncodeWalRecord(lsn, op, edges);
  if (!WriteFully(file_.get(), frame.data(), frame.size())) {
    FailLocked("wal append");
    return 0;
  }
  ++next_lsn_;
  appended_lsn_ = lsn;
  ++stats_.records_appended;
  stats_.bytes_appended += frame.size();
  CrashPoint("wal:post_append_pre_sync");
  switch (mode_) {
    case WalSyncMode::kNone:
      return lsn;
    case WalSyncMode::kAlways:
      if (!file_->Sync()) {
        FailLocked("wal fdatasync");
        return 0;
      }
      ++stats_.syncs;
      synced_lsn_ = lsn;
      return lsn;
    case WalSyncMode::kGroup:
      appended_cv_.notify_one();
      synced_cv_.wait(lock, [&] { return synced_lsn_ >= lsn || failed_; });
      return synced_lsn_ >= lsn ? lsn : 0;
  }
  return 0;  // unreachable
}

bool WalWriter::SyncNow() {
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_ || file_ == nullptr) return false;
  if (synced_lsn_ >= appended_lsn_) return true;
  if (!file_->Sync()) {
    FailLocked("wal fdatasync");
    return false;
  }
  ++stats_.syncs;
  synced_lsn_ = appended_lsn_;
  return true;
}

bool WalWriter::TruncateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_ || file_ == nullptr) return false;
  if (!file_->Truncate(0)) {
    FailLocked("wal truncate");
    return false;
  }
  // An empty file has nothing left to sync.
  synced_lsn_ = appended_lsn_;
  ++stats_.truncations;
  synced_cv_.notify_all();
  return true;
}

uint64_t WalWriter::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

bool WalWriter::failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

std::string WalWriter::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

WalStats WalWriter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void WalWriter::CommitLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    appended_cv_.wait(lock, [&] {
      return stop_ || failed_ || appended_lsn_ > synced_lsn_;
    });
    if (failed_) {
      synced_cv_.notify_all();
      if (stop_) return;
      appended_cv_.wait(lock, [&] { return stop_; });
      return;
    }
    if (appended_lsn_ <= synced_lsn_) {
      if (stop_) return;
      continue;
    }
    const uint64_t target = appended_lsn_;
    const uint64_t covered = target - synced_lsn_;
    // Sync outside the lock: appends landing during the fdatasync queue
    // up and ride the next group. Close() joins this thread before it
    // releases file_, so the raw pointer stays valid.
    WritableFile* file = file_.get();
    lock.unlock();
    CrashPoint("wal:mid_group_commit");
    const bool ok = file->Sync();
    lock.lock();
    if (!ok) {
      FailLocked("wal group fdatasync");
      synced_cv_.notify_all();
      continue;
    }
    ++stats_.syncs;
    if (covered > 1) ++stats_.group_commits;
    if (target > synced_lsn_) synced_lsn_ = target;
    synced_cv_.notify_all();
  }
}

void WalWriter::FailLocked(const char* what) {
  failed_ = true;
  error_ = std::string(what) + ": " + ErrnoString(errno);
  synced_cv_.notify_all();
  appended_cv_.notify_all();
}

}  // namespace cuckoograph::persist
