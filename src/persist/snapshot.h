// Checkpoint snapshots for the durability subsystem: a compact on-disk
// dump of one quiesced CsrSnapshot (the same flat CSR the analytics
// kernels run over), stamped with the last WAL LSN it covers. Together
// with the WAL this is the Redis RDB+AOF hybrid: recovery loads the
// newest valid snapshot and replays only the WAL records with a higher
// LSN.
//
// Publication is atomic: the writer streams to `snapshot.tmp`, fsyncs
// it, renames it to its final `snapshot-<lsn>.cgsnap` name, and fsyncs
// the directory — a crash at any instant leaves either the old
// snapshot set or the new one, never a half-written file under a
// trusted name. A whole-file CRC32C trailer catches the remaining ways
// a file can lie (bit rot, a truncated copy), and the recovery scan
// simply skips invalid files and falls back to the next-newest.
//
// File layout (integers little-endian):
//   magic "CGSNAP1\0" | u32 version | u32 flags (bit0 = weights)
//   u64 last_lsn | u64 num_nodes | u64 num_edges
//   originals[num_nodes] u32      dense id -> original node id
//   degrees[num_nodes]   u32      out-degree per dense id
//   neighbors[num_edges] u32      dense successor ids, per-vertex runs
//   weights[num_edges]   u64      only when flags bit0
//   u32 crc32c(everything above)
#ifndef CUCKOOGRAPH_PERSIST_SNAPSHOT_H_
#define CUCKOOGRAPH_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analytics/csr_snapshot.h"
#include "common/types.h"
#include "persist/file_io.h"

namespace cuckoograph::persist {

// What recovery gets back out of a snapshot file: the edge set in
// original node ids (<u asc, v asc>, the CsrSnapshot extraction order)
// plus the LSN watermark that tells replay where to pick up.
struct SnapshotContents {
  uint64_t last_lsn = 0;
  std::vector<Edge> edges;
  // Parallel to `edges` when the snapshotted store was weighted;
  // empty otherwise.
  std::vector<uint64_t> weights;
};

// The final name a snapshot of watermark `last_lsn` publishes under
// (zero-padded so lexicographic order is LSN order).
std::string SnapshotFileName(uint64_t last_lsn);

// Serializes `csr` (covering WAL LSNs <= last_lsn) into
// `dir/SnapshotFileName(last_lsn)` via the tmp+fsync+rename+dirsync
// sequence. `factory` may be null for the POSIX default. On failure the
// tmp file may remain; it is never trusted by the scan.
bool WriteSnapshotFile(const std::string& dir,
                       const analytics::CsrSnapshot& csr, uint64_t last_lsn,
                       const WritableFileFactory& factory, std::string* error);

// Parses and CRC-verifies one snapshot file. False with *error on any
// I/O failure or validation miss — a snapshot is all-or-nothing,
// unlike the WAL there is no usable prefix.
bool LoadSnapshotFile(const std::string& path, SnapshotContents* out,
                      std::string* error);

// Scans `dir` for published snapshots, newest watermark first, and
// loads the first one that validates. Returns false only when the
// directory itself is unreadable; "no valid snapshot" is found=false.
struct SnapshotScanResult {
  bool found = false;
  std::string path;            // the file `contents` came from
  SnapshotContents contents;
  std::vector<std::string> skipped;  // invalid/corrupt files passed over
};
bool FindNewestValidSnapshot(const std::string& dir, SnapshotScanResult* out,
                             std::string* error);

// Unlinks every published snapshot in `dir` older than `keep_path`
// (the just-published file). Best effort.
void PruneOldSnapshots(const std::string& dir, const std::string& keep_path);

}  // namespace cuckoograph::persist

#endif  // CUCKOOGRAPH_PERSIST_SNAPSHOT_H_
