// DurableStore: the durability decorator over any GraphStore. The paper's
// structure is an in-memory index; this wrapper gives any scheme the
// classic logging discipline on top without touching the scheme itself:
//
//   mutation  = WAL append (log-before-apply, ack per WalSyncMode)
//               -> delegate to the wrapped store
//   checkpoint = quiesce mutators -> dump a CsrSnapshot-format file
//               (tmp + atomic rename) -> truncate the WAL
//   recovery   = newest valid snapshot + replay of WAL records with a
//               higher LSN, truncating any torn/corrupt tail
//
// Recovery is prefix-consistent by construction: the recovered store
// equals the store after some prefix of the logged mutation sequence,
// and in kAlways/kGroup modes that prefix covers every acknowledged
// write. tests/durability_crash_test.cc proves this by SIGKILLing a
// child at injected crash points and recovering in the parent.
//
// Concurrency: mutators take a shared lock and the checkpoint takes the
// exclusive side, so a checkpoint sees a quiesced store (the CsrSnapshot
// builder's contract) while normal mutations only contend on the WAL's
// internal mutex. Reads pass straight through to the wrapped store.
#ifndef CUCKOOGRAPH_PERSIST_DURABLE_STORE_H_
#define CUCKOOGRAPH_PERSIST_DURABLE_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/mutex.h"
#include "common/span.h"
#include "common/types.h"
#include "core/config.h"
#include "core/graph_store.h"
#include "persist/file_io.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

namespace cuckoograph::persist {

struct DurableOptions {
  // Directory holding the WAL and snapshots. Created if missing; any
  // state already there is recovered into the wrapped store on Open.
  std::string dir;

  WalSyncMode sync_mode = WalSyncMode::kGroup;

  // Auto-checkpoint after this many WAL records; 0 disables (explicit
  // Checkpoint() always works).
  size_t checkpoint_every_records = 65536;

  // Fault-injection seam; null uses the POSIX files.
  WritableFileFactory file_factory;

  // The wrapper created `dir` for itself (the factory's temp-dir
  // instances) and removes the whole tree in its destructor.
  bool owns_dir = false;
};

// Maps the Config durability knobs (wal_sync_mode,
// wal_checkpoint_records) onto DurableOptions for `dir` — the standard
// way to open a durable store that should honor a tuned Config.
inline DurableOptions MakeDurableOptions(const Config& config,
                                         std::string dir) {
  DurableOptions opts;
  opts.dir = std::move(dir);
  opts.sync_mode = config.wal_sync_mode;
  opts.checkpoint_every_records = config.wal_checkpoint_records;
  return opts;
}

// What Open() found on disk — surfaced through durable_stats() so tests
// and the benches can assert on the recovery path taken.
struct RecoveryInfo {
  bool snapshot_loaded = false;
  uint64_t snapshot_lsn = 0;
  uint64_t snapshot_edges = 0;
  uint64_t replayed_records = 0;
  uint64_t replayed_edges = 0;
  // A torn/corrupt WAL tail was found and truncated (never trusted).
  bool wal_tail_truncated = false;
  std::string detail;
};

struct DurableStats {
  WalStats wal;
  uint64_t checkpoints = 0;
  RecoveryInfo recovery;
  std::string last_checkpoint_error;
};

class DurableStore final : public GraphStore {
 public:
  // Opens the durability directory, recovers any existing state into
  // `inner`, and starts logging. Null with *error on failure (`inner`
  // is consumed either way). `display_name` is what name() reports —
  // the factory passes its scheme name ("cuckoo-durable", ...).
  static std::unique_ptr<DurableStore> Open(std::unique_ptr<GraphStore> inner,
                                            std::string display_name,
                                            const DurableOptions& opts,
                                            std::string* error);

  // Closes the WAL (final covering sync) and, when opts.owns_dir,
  // removes the directory tree.
  ~DurableStore() override;

  std::string_view name() const override { return name_; }

  // The wrapped scheme's capabilities with the durable bit set.
  StoreCapabilities Capabilities() const override;

  // Mutators log first, then delegate; they throw std::runtime_error
  // once the WAL has failed (a store that can no longer keep its
  // durability promise must not keep acknowledging writes).
  bool InsertEdge(NodeId u, NodeId v) override;
  bool DeleteEdge(NodeId u, NodeId v) override;
  size_t InsertEdges(Span<const Edge> edges) override;
  size_t DeleteEdges(Span<const Edge> edges) override;

  bool QueryEdge(NodeId u, NodeId v) const override;
  uint64_t EdgeWeight(NodeId u, NodeId v) const override;
  size_t QueryEdges(Span<const Edge> edges) const override;
  std::unique_ptr<NeighborCursor> Neighbors(NodeId u) const override;
  std::unique_ptr<NeighborCursor> Nodes() const override;
  size_t OutDegree(NodeId u) const override;
  size_t NumEdges() const override;
  size_t NumNodes() const override;
  size_t MemoryBytes() const override;

  // Explicit checkpoint: snapshot + WAL truncation, regardless of the
  // auto cadence. False with *error on failure (the store keeps
  // running on the old snapshot + longer WAL).
  bool Checkpoint(std::string* error);

  // fdatasyncs everything appended so far (meaningful under kNone).
  bool SyncWal();

  DurableStats durable_stats() const;
  const RecoveryInfo& recovery() const { return recovery_; }
  const GraphStore& inner() const { return *inner_; }
  const std::string& dir() const { return opts_.dir; }

 private:
  DurableStore(std::unique_ptr<GraphStore> inner, std::string display_name,
               DurableOptions opts);

  // Appends one record; throws std::runtime_error on WAL failure.
  void LogOrThrow(WalOp op, Span<const Edge> edges);

  // Auto-checkpoint trigger, called after the mutator released its
  // shared hold (the checkpoint needs the exclusive side).
  void MaybeCheckpoint();
  bool CheckpointLocked(std::string* error);

  std::unique_ptr<GraphStore> inner_;
  std::string name_;
  DurableOptions opts_;
  WalWriter wal_;
  RecoveryInfo recovery_;

  // Shared: mutators (log + apply). Exclusive: checkpoint (quiesces the
  // store for the CsrSnapshot build). Reads take neither.
  mutable SharedMutex checkpoint_mu_;
  std::atomic<uint64_t> records_since_checkpoint_{0};
  std::atomic<uint64_t> checkpoints_{0};

  mutable Mutex error_mu_;
  std::string last_checkpoint_error_ CUCKOOGRAPH_GUARDED_BY(error_mu_);
};

}  // namespace cuckoograph::persist

#endif  // CUCKOOGRAPH_PERSIST_DURABLE_STORE_H_
