// The persistence layer's thin POSIX file seam. Every byte the WAL and
// the snapshot writer put on disk goes through the WritableFile
// interface so the fault-injection suite (tests/durability_crash_test.cc)
// can interpose a shim that short-writes, runs out of space, or lies —
// proving the callers' retry/validation loops against the failures real
// kernels produce. Production code uses the PosixWritableFile returned
// by OpenWritableFile; everything here retries EINTR internally.
#ifndef CUCKOOGRAPH_PERSIST_FILE_IO_H_
#define CUCKOOGRAPH_PERSIST_FILE_IO_H_

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace cuckoograph::persist {

// A byte sink with POSIX write semantics. Implementations set errno on
// failure (Write returning -1, the bool methods returning false), which
// is what the callers' error messages report.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  // Accepts up to `n` bytes; may accept fewer (a short write). Returns
  // the count accepted, or -1 with errno set. Callers loop — see
  // WriteFully.
  virtual ssize_t Write(const void* data, size_t n) = 0;

  // Flushes written data to stable storage (fdatasync).
  virtual bool Sync() = 0;

  // Truncates the file to `size` bytes; subsequent writes append at the
  // new end (the WAL truncates to zero at a checkpoint).
  virtual bool Truncate(uint64_t size) = 0;

  // Closes the underlying descriptor; further calls are invalid.
  virtual bool Close() = 0;
};

// Writes all `n` bytes through `file`, looping over short writes and
// EINTR. Returns false (errno set) on any hard failure; the file may
// then hold a partial frame — exactly the torn tail recovery tolerates.
bool WriteFully(WritableFile* file, const void* data, size_t n);

// Opens `path` for writing (O_CREAT; `truncate` picks O_TRUNC vs
// O_APPEND). Null with *error set on failure.
std::unique_ptr<WritableFile> OpenWritableFile(const std::string& path,
                                               bool truncate,
                                               std::string* error);

// How the WAL/snapshot writers obtain their files; tests substitute a
// factory returning fault-injecting shims.
using WritableFileFactory = std::function<std::unique_ptr<WritableFile>(
    const std::string& path, bool truncate, std::string* error)>;

// ---- Small filesystem helpers (POSIX, EINTR-retried) ----------------------

bool FileExists(const std::string& path);

// Reads the whole file into *out. False with *error on any failure
// (including a missing file — probe with FileExists first).
bool ReadFileBytes(const std::string& path, std::string* out,
                   std::string* error);

// mkdir -p: creates `path` and any missing parents.
bool EnsureDir(const std::string& path, std::string* error);

// fsyncs a directory so a rename/creation inside it is durable.
bool SyncDir(const std::string& path, std::string* error);

// rename(2); atomic within a filesystem. Caller syncs the directory.
bool RenameFile(const std::string& from, const std::string& to,
                std::string* error);

bool RemoveFile(const std::string& path);

// truncate(2) by path (recovery chops torn WAL tails with this).
bool TruncateFile(const std::string& path, uint64_t size,
                  std::string* error);

// Entry names (no "."/"..") in `path`; empty on error.
std::vector<std::string> ListDir(const std::string& path);

// mkdtemp under $TMPDIR (or /tmp): "<tmp>/<prefix>XXXXXX". Empty string
// with *error on failure.
std::string MakeTempDir(const std::string& prefix, std::string* error);

// Unlinks every regular entry in `path`, then rmdirs it (the owned
// temp-dir cleanup of factory-made durable stores). Best effort.
void RemoveDirTree(const std::string& path);

}  // namespace cuckoograph::persist

#endif  // CUCKOOGRAPH_PERSIST_FILE_IO_H_
