// The write-ahead log (redo log) of the durability subsystem
// (persist/durable_store.h). Classic ARIES-style discipline, shaped like
// the LevelDB/RocksDB log and the Redis AOF:
//
//  - every mutation batch is one length-prefixed, CRC32C-framed record
//    (an InsertEdges span of 10k edges logs once, not 10k times);
//  - records carry a monotonically increasing LSN so recovery can replay
//    exactly the tail a snapshot does not already cover;
//  - "log before apply": DurableStore appends the record, then mutates
//    the wrapped store, then acknowledges — per the sync mode, the ack
//    also waits for an fdatasync covering the record;
//  - group commit: in WalSyncMode::kGroup a dedicated commit thread
//    coalesces every append that arrived while the previous fdatasync
//    ran into one covering sync, so N concurrent writers pay ~1 sync,
//    not N (the PostgreSQL group-commit shape);
//  - the reader never trusts bytes a CRC does not vouch for: a torn or
//    corrupt tail ends decoding at the last whole record, and recovery
//    truncates the file there.
//
// Record frame (all integers little-endian on disk):
//   u32 payload_len | u32 crc32c(payload) | payload
//   payload = u64 lsn | u8 op | u32 edge_count | edge_count * (u32 u, u32 v)
#ifndef CUCKOOGRAPH_PERSIST_WAL_H_
#define CUCKOOGRAPH_PERSIST_WAL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/span.h"
#include "common/types.h"
#include "core/config.h"
#include "persist/file_io.h"

namespace cuckoograph::persist {

enum class WalOp : uint8_t {
  kInsertEdges = 1,
  kDeleteEdges = 2,
};

struct WalRecord {
  uint64_t lsn = 0;
  WalOp op = WalOp::kInsertEdges;
  std::vector<Edge> edges;
};

// ---- Record codec (exposed for the reader and the fuzz suite) -------------

// Encodes one framed record.
std::string EncodeWalRecord(uint64_t lsn, WalOp op, Span<const Edge> edges);

enum class WalDecodeStatus {
  kOk,        // *record filled, *consumed bytes eaten from the front
  kNeedMore,  // bytes end mid-frame (a torn tail, or more input pending)
  kCorrupt,   // framing or CRC violation at the front of `bytes`
};

// Decodes the record at the front of `bytes`. Never throws and never
// reads past `bytes`; on kCorrupt/kNeedMore, *detail says why.
WalDecodeStatus DecodeWalRecord(std::string_view bytes, WalRecord* record,
                                size_t* consumed, std::string* detail);

// ---- Whole-file reader -----------------------------------------------------

struct WalReadResult {
  std::vector<WalRecord> records;
  // Offset of the first byte not covered by a whole valid record — the
  // truncation point recovery applies when !clean.
  uint64_t valid_bytes = 0;
  // False when trailing bytes were torn or corrupt (records holds the
  // clean prefix either way).
  bool clean = true;
  std::string detail;
};

// Decodes every whole valid record of the file. A missing file is an
// empty clean log. Returns false (with *error) only on I/O failure;
// torn/corrupt tails are reported through *out, not as errors.
bool ReadWalFile(const std::string& path, WalReadResult* out,
                 std::string* error);

// ---- Appender --------------------------------------------------------------

struct WalStats {
  uint64_t records_appended = 0;
  uint64_t bytes_appended = 0;
  uint64_t syncs = 0;          // fdatasync calls issued
  uint64_t group_commits = 0;  // syncs that covered more than one record
  uint64_t truncations = 0;    // checkpoint resets
};

// The append side of the log. Append() is thread-safe; open/close are
// not (the owning DurableStore serializes them).
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Opens `path` for appending (creating it if needed) and, in kGroup
  // mode, starts the commit thread. `next_lsn` seeds the LSN counter
  // (recovery passes max(snapshot, replayed) + 1). `factory` may be
  // null for the POSIX default.
  bool Open(const std::string& path, WalSyncMode mode, uint64_t next_lsn,
            const WritableFileFactory& factory, std::string* error);

  // Stops the commit thread (after a final covering sync), closes the
  // file. Idempotent.
  void Close();

  // Appends one record and blocks until it is durable per the sync
  // mode: kAlways syncs inline, kGroup waits for the commit thread's
  // covering group sync, kNone returns after the buffered write.
  // Returns the record's LSN, or 0 on failure (see last_error()); a
  // failed writer refuses all further appends, because bytes after a
  // partial frame would be unreachable to the reader anyway.
  uint64_t Append(WalOp op, Span<const Edge> edges);

  // Explicit fdatasync of everything appended so far.
  bool SyncNow();

  // Empties the log file (the checkpoint path: the snapshot now covers
  // every logged record). LSNs keep increasing across truncations.
  bool TruncateAll();

  // Next LSN Append() would assign.
  uint64_t next_lsn() const;

  bool failed() const;
  std::string last_error() const;
  WalStats stats() const;

 private:
  void CommitLoop();
  void FailLocked(const char* what);  // requires mu_

  mutable std::mutex mu_;
  std::condition_variable appended_cv_;  // wakes the commit thread
  std::condition_variable synced_cv_;    // wakes group-commit waiters
  std::unique_ptr<WritableFile> file_;
  WalSyncMode mode_ = WalSyncMode::kGroup;
  uint64_t next_lsn_ = 1;
  uint64_t appended_lsn_ = 0;  // highest LSN whose bytes are written
  uint64_t synced_lsn_ = 0;    // highest LSN covered by an fdatasync
  bool stop_ = false;
  bool failed_ = false;
  std::string error_;
  WalStats stats_;
  std::thread committer_;
};

}  // namespace cuckoograph::persist

#endif  // CUCKOOGRAPH_PERSIST_WAL_H_
