#include "persist/file_io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <utility>

#include "common/errno_string.h"

namespace cuckoograph::persist {
namespace {

std::string PathError(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + ErrnoString(errno);
}

int OpenRetry(const char* path, int flags, mode_t mode) {
  int fd;
  do {
    fd = ::open(path, flags, mode);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

bool CloseRetry(int fd) {
  // POSIX leaves the fd state unspecified after EINTR; Linux closes it,
  // so retrying would race another thread's fresh fd. Close once.
  return ::close(fd) == 0 || errno == EINTR;
}

class PosixWritableFile final : public WritableFile {
 public:
  explicit PosixWritableFile(int fd) : fd_(fd) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) CloseRetry(fd_);
  }

  ssize_t Write(const void* data, size_t n) override {
    ssize_t written;
    do {
      written = ::write(fd_, data, n);
    } while (written < 0 && errno == EINTR);
    return written;
  }

  bool Sync() override {
    int rc;
    do {
      rc = ::fdatasync(fd_);
    } while (rc < 0 && errno == EINTR);
    return rc == 0;
  }

  bool Truncate(uint64_t size) override {
    int rc;
    do {
      rc = ::ftruncate(fd_, static_cast<off_t>(size));
    } while (rc < 0 && errno == EINTR);
    return rc == 0;
  }

  bool Close() override {
    if (fd_ < 0) return true;
    const bool ok = CloseRetry(fd_);
    fd_ = -1;
    return ok;
  }

 private:
  int fd_;
};

}  // namespace

bool WriteFully(WritableFile* file, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  size_t done = 0;
  while (done < n) {
    const ssize_t written = file->Write(p + done, n - done);
    if (written < 0) return false;
    if (written == 0) {
      // A zero-byte acceptance would spin forever; report it as ENOSPC,
      // the closest honest description.
      errno = ENOSPC;
      return false;
    }
    done += static_cast<size_t>(written);
  }
  return true;
}

std::unique_ptr<WritableFile> OpenWritableFile(const std::string& path,
                                               bool truncate,
                                               std::string* error) {
  const int flags =
      O_CREAT | O_WRONLY | O_CLOEXEC | (truncate ? O_TRUNC : O_APPEND);
  const int fd = OpenRetry(path.c_str(), flags, 0644);
  if (fd < 0) {
    if (error != nullptr) *error = PathError("open", path);
    return nullptr;
  }
  return std::make_unique<PosixWritableFile>(fd);
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

bool ReadFileBytes(const std::string& path, std::string* out,
                   std::string* error) {
  const int fd = OpenRetry(path.c_str(), O_RDONLY | O_CLOEXEC, 0);
  if (fd < 0) {
    if (error != nullptr) *error = PathError("open", path);
    return false;
  }
  out->clear();
  char buffer[64 * 1024];
  while (true) {
    ssize_t n;
    do {
      n = ::read(fd, buffer, sizeof(buffer));
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      if (error != nullptr) *error = PathError("read", path);
      CloseRetry(fd);
      return false;
    }
    if (n == 0) break;
    out->append(buffer, static_cast<size_t>(n));
  }
  CloseRetry(fd);
  return true;
}

bool EnsureDir(const std::string& path, std::string* error) {
  if (path.empty()) {
    if (error != nullptr) *error = "EnsureDir: empty path";
    return false;
  }
  // Walk the components, creating each missing prefix.
  size_t pos = 0;
  while (pos != std::string::npos) {
    pos = path.find('/', pos + 1);
    const std::string prefix =
        pos == std::string::npos ? path : path.substr(0, pos);
    if (prefix.empty()) continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      if (error != nullptr) *error = PathError("mkdir", prefix);
      return false;
    }
  }
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    if (error != nullptr) *error = path + " exists and is not a directory";
    return false;
  }
  return true;
}

bool SyncDir(const std::string& path, std::string* error) {
  const int fd = OpenRetry(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC,
                           0);
  if (fd < 0) {
    if (error != nullptr) *error = PathError("open(dir)", path);
    return false;
  }
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc < 0 && errno == EINTR);
  CloseRetry(fd);
  if (rc != 0) {
    if (error != nullptr) *error = PathError("fsync(dir)", path);
    return false;
  }
  return true;
}

bool RenameFile(const std::string& from, const std::string& to,
                std::string* error) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    if (error != nullptr) {
      *error = "rename " + from + " -> " + to + ": " + ErrnoString(errno);
    }
    return false;
  }
  return true;
}

bool RemoveFile(const std::string& path) {
  return ::unlink(path.c_str()) == 0;
}

bool TruncateFile(const std::string& path, uint64_t size,
                  std::string* error) {
  int rc;
  do {
    rc = ::truncate(path.c_str(), static_cast<off_t>(size));
  } while (rc < 0 && errno == EINTR);
  if (rc != 0) {
    if (error != nullptr) *error = PathError("truncate", path);
    return false;
  }
  return true;
}

std::vector<std::string> ListDir(const std::string& path) {
  std::vector<std::string> names;
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return names;
  while (dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(dir);
  return names;
}

std::string MakeTempDir(const std::string& prefix, std::string* error) {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr ? base : "/tmp");
  if (!tmpl.empty() && tmpl.back() != '/') tmpl += '/';
  tmpl += prefix + "XXXXXX";
  std::string buffer = tmpl;  // mkdtemp mutates in place
  if (::mkdtemp(buffer.data()) == nullptr) {
    if (error != nullptr) *error = PathError("mkdtemp", tmpl);
    return std::string();
  }
  return buffer;
}

void RemoveDirTree(const std::string& path) {
  for (const std::string& name : ListDir(path)) {
    const std::string child = path + "/" + name;
    if (::unlink(child.c_str()) != 0 && errno == EISDIR) {
      RemoveDirTree(child);
    }
  }
  ::rmdir(path.c_str());
}

}  // namespace cuckoograph::persist
