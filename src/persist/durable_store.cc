#include "persist/durable_store.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "analytics/csr_snapshot.h"

namespace cuckoograph::persist {
namespace {

constexpr const char* kWalName = "wal.log";

// Re-creates a snapshot's edge set in `inner`. A weighted store gets
// each edge's arrival multiplicity back the way it accumulated live:
// repeated insertions.
void RestoreSnapshot(GraphStore* inner, const SnapshotContents& contents) {
  if (contents.weights.empty() || !inner->Capabilities().weighted) {
    inner->InsertEdges(Span<const Edge>(contents.edges));
    return;
  }
  for (size_t i = 0; i < contents.edges.size(); ++i) {
    const Edge& e = contents.edges[i];
    const uint64_t weight = std::max<uint64_t>(1, contents.weights[i]);
    for (uint64_t k = 0; k < weight; ++k) inner->InsertEdge(e.u, e.v);
  }
}

}  // namespace

std::unique_ptr<DurableStore> DurableStore::Open(
    std::unique_ptr<GraphStore> inner, std::string display_name,
    const DurableOptions& opts, std::string* error) {
  if (inner == nullptr) {
    if (error != nullptr) *error = "DurableStore::Open: null inner store";
    return nullptr;
  }
  if (!EnsureDir(opts.dir, error)) return nullptr;

  std::unique_ptr<DurableStore> store(
      new DurableStore(std::move(inner), std::move(display_name), opts));

  // Phase 1: newest valid snapshot, if any.
  SnapshotScanResult scan;
  if (!FindNewestValidSnapshot(opts.dir, &scan, error)) return nullptr;
  uint64_t base_lsn = 0;
  if (scan.found) {
    RestoreSnapshot(store->inner_.get(), scan.contents);
    base_lsn = scan.contents.last_lsn;
    store->recovery_.snapshot_loaded = true;
    store->recovery_.snapshot_lsn = base_lsn;
    store->recovery_.snapshot_edges = scan.contents.edges.size();
  }
  for (const std::string& skipped : scan.skipped) {
    if (!store->recovery_.detail.empty()) store->recovery_.detail += "; ";
    store->recovery_.detail += "skipped snapshot " + skipped;
  }

  // Phase 2: replay the WAL tail the snapshot does not cover. Records at
  // or below the snapshot's watermark are already in it (a crash between
  // snapshot rename and WAL truncation leaves exactly those behind).
  const std::string wal_path = opts.dir + "/" + kWalName;
  WalReadResult wal_contents;
  if (!ReadWalFile(wal_path, &wal_contents, error)) return nullptr;
  uint64_t max_lsn = base_lsn;
  for (const WalRecord& record : wal_contents.records) {
    max_lsn = std::max(max_lsn, record.lsn);
    if (record.lsn <= base_lsn) continue;
    const Span<const Edge> edges(record.edges);
    if (record.op == WalOp::kInsertEdges) {
      store->inner_->InsertEdges(edges);
    } else {
      store->inner_->DeleteEdges(edges);
    }
    ++store->recovery_.replayed_records;
    store->recovery_.replayed_edges += record.edges.size();
  }

  // Phase 3: never trust bytes past the last valid record — chop them
  // before appending, or the reader would stop at the garbage forever.
  if (!wal_contents.clean) {
    if (!TruncateFile(wal_path, wal_contents.valid_bytes, error)) {
      return nullptr;
    }
    store->recovery_.wal_tail_truncated = true;
    if (!store->recovery_.detail.empty()) store->recovery_.detail += "; ";
    store->recovery_.detail += wal_contents.detail;
  }

  // Phase 4: start logging where the history left off.
  if (!store->wal_.Open(wal_path, opts.sync_mode, max_lsn + 1,
                        opts.file_factory, error)) {
    return nullptr;
  }
  return store;
}

DurableStore::DurableStore(std::unique_ptr<GraphStore> inner,
                           std::string display_name, DurableOptions opts)
    : inner_(std::move(inner)),
      name_(std::move(display_name)),
      opts_(std::move(opts)) {}

DurableStore::~DurableStore() {
  wal_.Close();
  if (opts_.owns_dir) RemoveDirTree(opts_.dir);
}

StoreCapabilities DurableStore::Capabilities() const {
  StoreCapabilities caps = inner_->Capabilities();
  caps.durable = true;
  return caps;
}

void DurableStore::LogOrThrow(WalOp op, Span<const Edge> edges) {
  if (wal_.Append(op, edges) == 0) {
    throw std::runtime_error(std::string(name_) +
                             ": wal append failed, refusing to acknowledge "
                             "writes (" +
                             wal_.last_error() + ")");
  }
  records_since_checkpoint_.fetch_add(1, std::memory_order_relaxed);
}

bool DurableStore::InsertEdge(NodeId u, NodeId v) {
  const Edge edge{u, v};
  bool inserted;
  {
    ReaderMutexLock lock(&checkpoint_mu_);
    LogOrThrow(WalOp::kInsertEdges, Span<const Edge>(&edge, 1));
    inserted = inner_->InsertEdge(u, v);
  }
  MaybeCheckpoint();
  return inserted;
}

bool DurableStore::DeleteEdge(NodeId u, NodeId v) {
  const Edge edge{u, v};
  bool deleted;
  {
    ReaderMutexLock lock(&checkpoint_mu_);
    LogOrThrow(WalOp::kDeleteEdges, Span<const Edge>(&edge, 1));
    deleted = inner_->DeleteEdge(u, v);
  }
  MaybeCheckpoint();
  return deleted;
}

size_t DurableStore::InsertEdges(Span<const Edge> edges) {
  if (edges.empty()) return 0;
  size_t inserted;
  {
    ReaderMutexLock lock(&checkpoint_mu_);
    LogOrThrow(WalOp::kInsertEdges, edges);
    inserted = inner_->InsertEdges(edges);
  }
  MaybeCheckpoint();
  return inserted;
}

size_t DurableStore::DeleteEdges(Span<const Edge> edges) {
  if (edges.empty()) return 0;
  size_t deleted;
  {
    ReaderMutexLock lock(&checkpoint_mu_);
    LogOrThrow(WalOp::kDeleteEdges, edges);
    deleted = inner_->DeleteEdges(edges);
  }
  MaybeCheckpoint();
  return deleted;
}

bool DurableStore::QueryEdge(NodeId u, NodeId v) const {
  return inner_->QueryEdge(u, v);
}

uint64_t DurableStore::EdgeWeight(NodeId u, NodeId v) const {
  return inner_->EdgeWeight(u, v);
}

size_t DurableStore::QueryEdges(Span<const Edge> edges) const {
  return inner_->QueryEdges(edges);
}

std::unique_ptr<NeighborCursor> DurableStore::Neighbors(NodeId u) const {
  return inner_->Neighbors(u);
}

std::unique_ptr<NeighborCursor> DurableStore::Nodes() const {
  return inner_->Nodes();
}

size_t DurableStore::OutDegree(NodeId u) const { return inner_->OutDegree(u); }

size_t DurableStore::NumEdges() const { return inner_->NumEdges(); }

size_t DurableStore::NumNodes() const { return inner_->NumNodes(); }

size_t DurableStore::MemoryBytes() const { return inner_->MemoryBytes(); }

bool DurableStore::Checkpoint(std::string* error) {
  WriterMutexLock lock(&checkpoint_mu_);
  return CheckpointLocked(error);
}

bool DurableStore::SyncWal() { return wal_.SyncNow(); }

void DurableStore::MaybeCheckpoint() {
  const size_t threshold = opts_.checkpoint_every_records;
  if (threshold == 0) return;
  if (records_since_checkpoint_.load(std::memory_order_relaxed) < threshold) {
    return;
  }
  WriterMutexLock lock(&checkpoint_mu_);
  // Another mutator may have checkpointed while this one waited.
  if (records_since_checkpoint_.load(std::memory_order_relaxed) < threshold) {
    return;
  }
  std::string error;
  if (!CheckpointLocked(&error)) {
    MutexLock error_lock(&error_mu_);
    last_checkpoint_error_ = error;
  }
}

bool DurableStore::CheckpointLocked(std::string* error) {
  analytics::CsrSnapshot csr;
  try {
    analytics::SnapshotOptions snapshot_opts;
    snapshot_opts.with_weights = inner_->Capabilities().weighted;
    csr = analytics::CsrSnapshot::FromStore(*inner_, snapshot_opts);
  } catch (const std::exception& e) {
    if (error != nullptr) {
      *error = std::string("checkpoint snapshot build: ") + e.what();
    }
    return false;
  }
  // Under the exclusive lock nothing is mid-mutation, so every assigned
  // LSN is applied and the snapshot covers all of them.
  const uint64_t last_lsn = wal_.next_lsn() - 1;
  if (!WriteSnapshotFile(opts_.dir, csr, last_lsn, opts_.file_factory,
                         error)) {
    // Back off instead of retrying on every subsequent mutation.
    records_since_checkpoint_.store(0, std::memory_order_relaxed);
    return false;
  }
  if (!wal_.TruncateAll()) {
    if (error != nullptr) {
      *error = "wal truncate after snapshot: " + wal_.last_error();
    }
    records_since_checkpoint_.store(0, std::memory_order_relaxed);
    return false;
  }
  PruneOldSnapshots(opts_.dir, opts_.dir + "/" + SnapshotFileName(last_lsn));
  records_since_checkpoint_.store(0, std::memory_order_relaxed);
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

DurableStats DurableStore::durable_stats() const {
  DurableStats stats;
  stats.wal = wal_.stats();
  stats.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  stats.recovery = recovery_;
  {
    MutexLock lock(&error_mu_);
    stats.last_checkpoint_error = last_checkpoint_error_;
  }
  return stats;
}

}  // namespace cuckoograph::persist
