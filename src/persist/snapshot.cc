#include "persist/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/crash_point.h"
#include "persist/crc32c.h"

namespace cuckoograph::persist {
namespace {

constexpr char kMagic[8] = {'C', 'G', 'S', 'N', 'A', 'P', '1', '\0'};
constexpr uint32_t kVersion = 1;
constexpr uint32_t kFlagWeights = 1u << 0;
constexpr size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8 + 8;
constexpr const char* kSnapshotPrefix = "snapshot-";
constexpr const char* kSnapshotSuffix = ".cgsnap";
constexpr const char* kTmpName = "snapshot.tmp";
// Sanity cap on counts decoded from a header (covers files truncated in
// a way the CRC read would otherwise try to allocate for).
constexpr uint64_t kMaxCount = 1ull << 33;

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v);
  b[1] = static_cast<char>(v >> 8);
  b[2] = static_cast<char>(v >> 16);
  b[3] = static_cast<char>(v >> 24);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const char* p) {
  const auto* b = reinterpret_cast<const uint8_t*>(p);
  return static_cast<uint32_t>(b[0]) | static_cast<uint32_t>(b[1]) << 8 |
         static_cast<uint32_t>(b[2]) << 16 | static_cast<uint32_t>(b[3]) << 24;
}

uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

bool Fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

// Parses "snapshot-<digits>.cgsnap"; false for anything else (including
// the tmp file, which must never be trusted).
bool ParseSnapshotName(const std::string& name, uint64_t* lsn) {
  const size_t prefix_len = std::strlen(kSnapshotPrefix);
  const size_t suffix_len = std::strlen(kSnapshotSuffix);
  if (name.size() <= prefix_len + suffix_len) return false;
  if (name.compare(0, prefix_len, kSnapshotPrefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, kSnapshotSuffix) !=
      0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *lsn = value;
  return true;
}

}  // namespace

std::string SnapshotFileName(uint64_t last_lsn) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%s%020llu%s", kSnapshotPrefix,
                static_cast<unsigned long long>(last_lsn), kSnapshotSuffix);
  return buffer;
}

bool WriteSnapshotFile(const std::string& dir,
                       const analytics::CsrSnapshot& csr, uint64_t last_lsn,
                       const WritableFileFactory& factory,
                       std::string* error) {
  const size_t num_nodes = csr.num_nodes();
  const size_t num_edges = csr.num_edges();
  std::string bytes;
  bytes.reserve(kHeaderBytes + num_nodes * 8 + num_edges * 4 +
                (csr.has_weights() ? num_edges * 8 : 0) + 4);
  bytes.append(kMagic, sizeof(kMagic));
  PutU32(&bytes, kVersion);
  PutU32(&bytes, csr.has_weights() ? kFlagWeights : 0);
  PutU64(&bytes, last_lsn);
  PutU64(&bytes, num_nodes);
  PutU64(&bytes, num_edges);
  for (const NodeId original : csr.originals()) PutU32(&bytes, original);
  for (size_t u = 0; u < num_nodes; ++u) {
    PutU32(&bytes, static_cast<uint32_t>(
                       csr.Degree(static_cast<analytics::DenseId>(u))));
  }
  for (size_t u = 0; u < num_nodes; ++u) {
    for (const analytics::DenseId v :
         csr.Neighbors(static_cast<analytics::DenseId>(u))) {
      PutU32(&bytes, v);
    }
  }
  if (csr.has_weights()) {
    for (size_t u = 0; u < num_nodes; ++u) {
      for (const uint64_t w :
           csr.Weights(static_cast<analytics::DenseId>(u))) {
        PutU64(&bytes, w);
      }
    }
  }
  PutU32(&bytes, Crc32c(bytes.data(), bytes.size()));

  const std::string tmp_path = dir + "/" + kTmpName;
  const std::string final_path = dir + "/" + SnapshotFileName(last_lsn);
  std::unique_ptr<WritableFile> file =
      factory ? factory(tmp_path, /*truncate=*/true, error)
              : OpenWritableFile(tmp_path, /*truncate=*/true, error);
  if (file == nullptr) return false;
  if (!WriteFully(file.get(), bytes.data(), bytes.size())) {
    file->Close();
    return Fail(error, "snapshot tmp write failed");
  }
  if (!file->Sync()) {
    file->Close();
    return Fail(error, "snapshot tmp fsync failed");
  }
  if (!file->Close()) return Fail(error, "snapshot tmp close failed");
  CrashPoint("snapshot:pre_rename");
  if (!RenameFile(tmp_path, final_path, error)) return false;
  if (!SyncDir(dir, error)) return false;
  CrashPoint("snapshot:post_rename");
  return true;
}

bool LoadSnapshotFile(const std::string& path, SnapshotContents* out,
                      std::string* error) {
  std::string bytes;
  if (!ReadFileBytes(path, &bytes, error)) return false;
  if (bytes.size() < kHeaderBytes + 4) {
    return Fail(error, path + ": shorter than header + crc");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Fail(error, path + ": bad magic");
  }
  const uint32_t version = GetU32(bytes.data() + 8);
  if (version != kVersion) {
    return Fail(error, path + ": unsupported version");
  }
  const uint32_t flags = GetU32(bytes.data() + 12);
  const bool has_weights = (flags & kFlagWeights) != 0;
  const uint64_t last_lsn = GetU64(bytes.data() + 16);
  const uint64_t num_nodes = GetU64(bytes.data() + 24);
  const uint64_t num_edges = GetU64(bytes.data() + 32);
  if (num_nodes > kMaxCount || num_edges > kMaxCount) {
    return Fail(error, path + ": node/edge count above sanity cap");
  }
  const uint64_t body = num_nodes * 8 + num_edges * 4 +
                        (has_weights ? num_edges * 8 : 0);
  if (bytes.size() != kHeaderBytes + body + 4) {
    return Fail(error, path + ": size disagrees with header counts");
  }
  const uint32_t stored_crc = GetU32(bytes.data() + bytes.size() - 4);
  if (Crc32c(bytes.data(), bytes.size() - 4) != stored_crc) {
    return Fail(error, path + ": crc mismatch");
  }

  const char* originals = bytes.data() + kHeaderBytes;
  const char* degrees = originals + num_nodes * 4;
  const char* neighbors = degrees + num_nodes * 4;
  const char* weights = neighbors + num_edges * 4;

  uint64_t degree_sum = 0;
  for (uint64_t u = 0; u < num_nodes; ++u) {
    degree_sum += GetU32(degrees + u * 4);
  }
  if (degree_sum != num_edges) {
    return Fail(error, path + ": degree sum disagrees with edge count");
  }

  out->last_lsn = last_lsn;
  out->edges.clear();
  out->edges.reserve(num_edges);
  out->weights.clear();
  if (has_weights) out->weights.reserve(num_edges);
  uint64_t cursor = 0;
  for (uint64_t u = 0; u < num_nodes; ++u) {
    const NodeId original_u = GetU32(originals + u * 4);
    const uint32_t degree = GetU32(degrees + u * 4);
    for (uint32_t i = 0; i < degree; ++i, ++cursor) {
      const uint32_t dense_v = GetU32(neighbors + cursor * 4);
      if (dense_v >= num_nodes) {
        return Fail(error, path + ": neighbor dense id out of range");
      }
      out->edges.push_back(
          Edge{original_u, GetU32(originals + uint64_t{dense_v} * 4)});
      if (has_weights) {
        out->weights.push_back(GetU64(weights + cursor * 8));
      }
    }
  }
  return true;
}

bool FindNewestValidSnapshot(const std::string& dir, SnapshotScanResult* out,
                             std::string* error) {
  out->found = false;
  out->path.clear();
  out->contents = SnapshotContents{};
  out->skipped.clear();
  std::vector<std::pair<uint64_t, std::string>> candidates;
  for (const std::string& name : ListDir(dir)) {
    uint64_t lsn = 0;
    if (ParseSnapshotName(name, &lsn)) candidates.emplace_back(lsn, name);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [lsn, name] : candidates) {
    const std::string path = dir + "/" + name;
    std::string why;
    if (LoadSnapshotFile(path, &out->contents, &why)) {
      out->found = true;
      out->path = path;
      return true;
    }
    out->skipped.push_back(name + " (" + why + ")");
  }
  (void)error;
  return true;
}

void PruneOldSnapshots(const std::string& dir, const std::string& keep_path) {
  for (const std::string& name : ListDir(dir)) {
    uint64_t lsn = 0;
    if (!ParseSnapshotName(name, &lsn)) continue;
    const std::string path = dir + "/" + name;
    if (path != keep_path) RemoveFile(path);
  }
}

}  // namespace cuckoograph::persist
