// NeighborCursor adapters shared by the baseline stores: a cursor over a
// contiguous NodeId array, and cursors over the keys/elements of standard
// associative containers.
#ifndef CUCKOOGRAPH_BASELINES_CURSORS_H_
#define CUCKOOGRAPH_BASELINES_CURSORS_H_

#include <cstddef>

#include "common/types.h"
#include "core/graph_store.h"

namespace cuckoograph::baselines {

// Streams a contiguous [begin, end) range of NodeIds (an adjacency vector).
class VectorNeighborCursor final : public NeighborCursor {
 public:
  VectorNeighborCursor(const NodeId* begin, const NodeId* end)
      : pos_(begin), end_(end) {}

  size_t Next(NodeId* out, size_t capacity) override {
    size_t written = 0;
    while (written < capacity && pos_ != end_) out[written++] = *pos_++;
    return written;
  }

 private:
  const NodeId* pos_;
  const NodeId* end_;
};

// Streams the keys of a map-like container (std::map / std::unordered_map
// keyed by NodeId).
template <typename Map>
class MapKeyCursor final : public NeighborCursor {
 public:
  explicit MapKeyCursor(const Map& map)
      : it_(map.begin()), end_(map.end()) {}

  size_t Next(NodeId* out, size_t capacity) override {
    size_t written = 0;
    while (written < capacity && it_ != end_) out[written++] = (it_++)->first;
    return written;
  }

 private:
  typename Map::const_iterator it_;
  typename Map::const_iterator end_;
};

// Streams the elements of a set-like container of NodeIds.
template <typename Set>
class SetCursor final : public NeighborCursor {
 public:
  explicit SetCursor(const Set& set) : it_(set.begin()), end_(set.end()) {}

  size_t Next(NodeId* out, size_t capacity) override {
    size_t written = 0;
    while (written < capacity && it_ != end_) out[written++] = *it_++;
    return written;
  }

 private:
  typename Set::const_iterator it_;
  typename Set::const_iterator end_;
};

}  // namespace cuckoograph::baselines

#endif  // CUCKOOGRAPH_BASELINES_CURSORS_H_
