#include "baselines/sorted_vector_store.h"

#include <algorithm>

#include "baselines/cursors.h"

namespace cuckoograph::baselines {

bool SortedVectorStore::InsertEdge(NodeId u, NodeId v) {
  std::vector<NodeId>& vec = adj_[u];
  const auto pos = std::lower_bound(vec.begin(), vec.end(), v);
  if (pos != vec.end() && *pos == v) return false;
  vec.insert(pos, v);
  ++num_edges_;
  return true;
}

bool SortedVectorStore::QueryEdge(NodeId u, NodeId v) const {
  const auto it = adj_.find(u);
  if (it == adj_.end()) return false;
  return std::binary_search(it->second.begin(), it->second.end(), v);
}

bool SortedVectorStore::DeleteEdge(NodeId u, NodeId v) {
  const auto it = adj_.find(u);
  if (it == adj_.end()) return false;
  std::vector<NodeId>& vec = it->second;
  const auto pos = std::lower_bound(vec.begin(), vec.end(), v);
  if (pos == vec.end() || *pos != v) return false;
  vec.erase(pos);
  if (vec.empty()) adj_.erase(it);
  --num_edges_;
  return true;
}

size_t SortedVectorStore::InsertEdges(Span<const Edge> edges) {
  std::vector<Edge> batch(edges.begin(), edges.end());
  std::sort(batch.begin(), batch.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  size_t fresh = 0;
  size_t i = 0;
  while (i < batch.size()) {
    const NodeId u = batch[i].u;
    size_t j = i;
    while (j < batch.size() && batch[j].u == u) ++j;
    std::vector<NodeId>& vec = adj_[u];
    std::vector<NodeId> merged;
    merged.reserve(vec.size() + (j - i));
    size_t a = 0;  // read cursor into the existing sorted adjacency
    for (size_t k = i; k < j; ++k) {
      const NodeId v = batch[k].v;
      if (k > i && batch[k - 1].v == v) continue;  // duplicate in batch
      while (a < vec.size() && vec[a] < v) merged.push_back(vec[a++]);
      if (a < vec.size() && vec[a] == v) continue;  // already stored
      merged.push_back(v);
      ++fresh;
    }
    while (a < vec.size()) merged.push_back(vec[a++]);
    vec = std::move(merged);
    i = j;
  }
  num_edges_ += fresh;
  return fresh;
}

std::unique_ptr<NeighborCursor> SortedVectorStore::Neighbors(
    NodeId u) const {
  const auto it = adj_.find(u);
  if (it == adj_.end()) return std::make_unique<EmptyNeighborCursor>();
  return std::make_unique<VectorNeighborCursor>(
      it->second.data(), it->second.data() + it->second.size());
}

std::unique_ptr<NeighborCursor> SortedVectorStore::Nodes() const {
  return std::make_unique<MapKeyCursor<decltype(adj_)>>(adj_);
}

size_t SortedVectorStore::OutDegree(NodeId u) const {
  const auto it = adj_.find(u);
  return it == adj_.end() ? 0 : it->second.size();
}

size_t SortedVectorStore::MemoryBytes() const {
  // Red-black node overhead (three pointers + color word) per vertex,
  // plus each adjacency vector's heap block.
  size_t bytes = sizeof(*this);
  for (const auto& [u, vec] : adj_) {
    (void)u;
    bytes += sizeof(std::pair<const NodeId, std::vector<NodeId>>) +
             4 * sizeof(void*);
    bytes += vec.capacity() * sizeof(NodeId);
  }
  return bytes;
}

}  // namespace cuckoograph::baselines
