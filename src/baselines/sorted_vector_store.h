// Sortledton stand-in: an ordered vertex map whose adjacencies are sorted
// vectors. Queries binary-search (O(log |V|) + O(log deg)), single-edge
// insertions shift (O(deg)), and the batch InsertEdges override sorts the
// batch once and merges each vertex's run in one linear pass — the
// amortization the v2 batch API exists for.
#ifndef CUCKOOGRAPH_BASELINES_SORTED_VECTOR_STORE_H_
#define CUCKOOGRAPH_BASELINES_SORTED_VECTOR_STORE_H_

#include <cstddef>
#include <map>
#include <memory>
#include <string_view>
#include <vector>

#include "common/span.h"
#include "common/types.h"
#include "core/graph_store.h"

namespace cuckoograph::baselines {

class SortedVectorStore final : public GraphStore {
 public:
  std::string_view name() const override { return "SortedVector"; }
  StoreCapabilities Capabilities() const override {
    StoreCapabilities caps;
    caps.stable_iteration = true;  // neighbors stream in ascending order
    return caps;
  }

  bool InsertEdge(NodeId u, NodeId v) override;
  bool QueryEdge(NodeId u, NodeId v) const override;
  bool DeleteEdge(NodeId u, NodeId v) override;

  // Sort-then-merge batch insertion: O((B log B) + sum_u (deg(u) + B_u))
  // for a batch of B edges instead of O(sum_u B_u * deg(u)).
  size_t InsertEdges(Span<const Edge> edges) override;

  std::unique_ptr<NeighborCursor> Neighbors(NodeId u) const override;
  std::unique_ptr<NeighborCursor> Nodes() const override;
  size_t OutDegree(NodeId u) const override;

  size_t NumEdges() const override { return num_edges_; }
  size_t NumNodes() const override { return adj_.size(); }
  size_t MemoryBytes() const override;

 private:
  std::map<NodeId, std::vector<NodeId>> adj_;
  size_t num_edges_ = 0;
};

}  // namespace cuckoograph::baselines

#endif  // CUCKOOGRAPH_BASELINES_SORTED_VECTOR_STORE_H_
