// Spruce stand-in: a hash map of per-vertex hash sets. Every edge
// operation is O(1) expected, at the price of per-node allocation and the
// bucket-array overhead the Figure 9 memory curves expose.
#ifndef CUCKOOGRAPH_BASELINES_HASH_MAP_STORE_H_
#define CUCKOOGRAPH_BASELINES_HASH_MAP_STORE_H_

#include <cstddef>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "common/types.h"
#include "core/graph_store.h"

namespace cuckoograph::baselines {

class HashMapStore final : public GraphStore {
 public:
  std::string_view name() const override { return "HashMap"; }

  bool InsertEdge(NodeId u, NodeId v) override;
  bool QueryEdge(NodeId u, NodeId v) const override;
  bool DeleteEdge(NodeId u, NodeId v) override;

  std::unique_ptr<NeighborCursor> Neighbors(NodeId u) const override;
  std::unique_ptr<NeighborCursor> Nodes() const override;
  size_t OutDegree(NodeId u) const override;

  size_t NumEdges() const override { return num_edges_; }
  size_t NumNodes() const override { return adj_.size(); }
  size_t MemoryBytes() const override;

 private:
  std::unordered_map<NodeId, std::unordered_set<NodeId>> adj_;
  size_t num_edges_ = 0;
};

}  // namespace cuckoograph::baselines

#endif  // CUCKOOGRAPH_BASELINES_HASH_MAP_STORE_H_
