#include "baselines/store_factory.h"

#include <stdexcept>
#include <utility>

#include "baselines/adjacency_list_store.h"
#include "baselines/hash_map_store.h"
#include "baselines/sorted_vector_store.h"
#include "core/cuckoo_graph.h"
#include "core/sharded_cuckoo_graph.h"
#include "core/weighted_cuckoo_graph.h"
#include "persist/durable_store.h"
#include "persist/file_io.h"

namespace cuckoograph {

namespace {

// Durable scheme -> wrapped scheme. The durable entries are decorators
// (persist/durable_store.h), not stores of their own.
const char* InnerSchemeFor(const std::string& durable_name) {
  if (durable_name == "cuckoo-durable") return "CuckooGraph";
  if (durable_name == "cuckoo-sharded-durable") return "cuckoo-sharded";
  return nullptr;
}

// Registry instantiation of a durable scheme: an owned mkdtemp dir
// (removed with the store) and no per-op fdatasync.
std::unique_ptr<GraphStore> MakeTempDirDurable(const std::string& name) {
  std::string error;
  persist::DurableOptions opts;
  opts.dir = persist::MakeTempDir("cuckoograph-" + name + "-", &error);
  if (opts.dir.empty()) {
    throw std::runtime_error("scheme '" + name + "': " + error);
  }
  opts.owns_dir = true;
  opts.sync_mode = WalSyncMode::kNone;
  auto store = persist::DurableStore::Open(
      MakeStoreByName(InnerSchemeFor(name)), name, opts, &error);
  if (store == nullptr) {
    throw std::runtime_error("scheme '" + name + "': " + error);
  }
  return store;
}

struct Registry {
  std::vector<std::pair<std::string, StoreFactory>> entries;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

bool AddEntry(std::string name, StoreFactory factory) {
  Registry& registry = GetRegistry();
  for (const auto& [existing, f] : registry.entries) {
    if (existing == name) return false;
  }
  registry.entries.emplace_back(std::move(name), std::move(factory));
  return true;
}

// The built-ins are registered lazily (not via cross-TU static
// initializers, whose order is unspecified and which static libraries may
// drop) so the bench column order is always the paper's: CuckooGraph,
// then the LiveGraph / Spruce / Sortledton stand-ins. Every public entry
// point (RegisterStore included, so StoreRegistrar statics cannot jump the
// queue) funnels through here first.
void EnsureBuiltins() {
  static const bool done = [] {
    AddEntry("CuckooGraph", [] { return std::make_unique<CuckooGraph>(); });
    AddEntry("AdjacencyList", [] {
      return std::make_unique<baselines::AdjacencyListStore>();
    });
    AddEntry("HashMap",
             [] { return std::make_unique<baselines::HashMapStore>(); });
    AddEntry("SortedVector", [] {
      return std::make_unique<baselines::SortedVectorStore>();
    });
    // The extended (weighted) store trails the paper's comparison columns;
    // weight-requiring benches (fig11 SSSP) find it via Capabilities().
    AddEntry("cuckoo-weighted",
             [] { return std::make_unique<WeightedCuckooGraph>(); });
    // The concurrent sharded front-end (Config::num_shards shards at the
    // default geometry); the only built-in advertising thread-safe ops.
    AddEntry("cuckoo-sharded",
             [] { return std::make_unique<ShardedCuckooGraph>(); });
    // WAL+snapshot decorators over the single-threaded and sharded
    // structures. Registry instances live in an owned temp dir with
    // syncs off, so the comparison benches measure the logging cost
    // without every cell paying an fdatasync; the durability benches
    // and crash tests open their own instances with explicit dirs and
    // sync modes through MakeDurableStoreByName.
    AddEntry("cuckoo-durable", [] {
      return MakeTempDirDurable("cuckoo-durable");
    });
    AddEntry("cuckoo-sharded-durable", [] {
      return MakeTempDirDurable("cuckoo-sharded-durable");
    });
    return true;
  }();
  (void)done;
}

std::string JoinSchemeNames() {
  std::string joined;
  for (const auto& [name, factory] : GetRegistry().entries) {
    if (!joined.empty()) joined += ", ";
    joined += name;
  }
  return joined;
}

// Registry lookup shared by MakeStoreByName and ParseSchemesFlag; throws
// the one canonical unknown-name error.
const StoreFactory& FindEntry(const std::string& name) {
  for (const auto& [candidate, factory] : GetRegistry().entries) {
    if (candidate == name) return factory;
  }
  throw std::invalid_argument("unknown scheme '" + name +
                              "'; valid schemes: " + JoinSchemeNames());
}

}  // namespace

bool RegisterStore(std::string name, StoreFactory factory) {
  EnsureBuiltins();
  return AddEntry(std::move(name), std::move(factory));
}

std::vector<std::string> AllSchemeNames() {
  EnsureBuiltins();
  std::vector<std::string> names;
  names.reserve(GetRegistry().entries.size());
  for (const auto& [name, factory] : GetRegistry().entries) {
    names.push_back(name);
  }
  return names;
}

std::unique_ptr<GraphStore> MakeStoreByName(const std::string& name) {
  EnsureBuiltins();
  return FindEntry(name)();
}

std::unique_ptr<persist::DurableStore> MakeDurableStoreByName(
    const std::string& name, const persist::DurableOptions& opts) {
  EnsureBuiltins();
  const char* inner = InnerSchemeFor(name);
  if (inner == nullptr) {
    throw std::invalid_argument(
        "unknown durable scheme '" + name +
        "'; valid durable schemes: cuckoo-durable, cuckoo-sharded-durable");
  }
  std::string error;
  auto store =
      persist::DurableStore::Open(MakeStoreByName(inner), name, opts, &error);
  if (store == nullptr) {
    throw std::runtime_error("open durable scheme '" + name + "': " + error);
  }
  return store;
}

std::vector<std::string> ParseSchemesFlag(const std::string& csv) {
  EnsureBuiltins();
  if (csv.empty()) return AllSchemeNames();
  std::vector<std::string> selected;
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const size_t end = comma == std::string::npos ? csv.size() : comma;
    const std::string name = csv.substr(start, end - start);
    if (!name.empty()) {
      FindEntry(name);  // throws on unknown names
      selected.push_back(name);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return selected;
}

}  // namespace cuckoograph
