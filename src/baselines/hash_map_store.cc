#include "baselines/hash_map_store.h"

#include "baselines/cursors.h"

namespace cuckoograph::baselines {

bool HashMapStore::InsertEdge(NodeId u, NodeId v) {
  if (!adj_[u].insert(v).second) return false;
  ++num_edges_;
  return true;
}

bool HashMapStore::QueryEdge(NodeId u, NodeId v) const {
  const auto it = adj_.find(u);
  return it != adj_.end() && it->second.count(v) != 0;
}

bool HashMapStore::DeleteEdge(NodeId u, NodeId v) {
  const auto it = adj_.find(u);
  if (it == adj_.end() || it->second.erase(v) == 0) return false;
  if (it->second.empty()) adj_.erase(it);
  --num_edges_;
  return true;
}

std::unique_ptr<NeighborCursor> HashMapStore::Neighbors(NodeId u) const {
  const auto it = adj_.find(u);
  if (it == adj_.end()) return std::make_unique<EmptyNeighborCursor>();
  return std::make_unique<SetCursor<std::unordered_set<NodeId>>>(it->second);
}

std::unique_ptr<NeighborCursor> HashMapStore::Nodes() const {
  return std::make_unique<MapKeyCursor<decltype(adj_)>>(adj_);
}

size_t HashMapStore::OutDegree(NodeId u) const {
  const auto it = adj_.find(u);
  return it == adj_.end() ? 0 : it->second.size();
}

size_t HashMapStore::MemoryBytes() const {
  // Outer map: bucket array + node per vertex. Inner sets: bucket array +
  // one heap node (id + next pointer, rounded to a pointer pair) per edge.
  size_t bytes = sizeof(*this);
  bytes += adj_.bucket_count() * sizeof(void*);
  for (const auto& [u, set] : adj_) {
    (void)u;
    bytes += sizeof(std::pair<const NodeId, std::unordered_set<NodeId>>) +
             2 * sizeof(void*);
    bytes += set.bucket_count() * sizeof(void*);
    bytes += set.size() * (sizeof(NodeId) + 2 * sizeof(void*));
  }
  return bytes;
}

}  // namespace cuckoograph::baselines
