// Registry-backed GraphStore factory: the comparison benches (Figures 6-9,
// Table III, the analytics figures) enumerate AllSchemeNames() for their
// columns and instantiate each scheme with MakeStoreByName().
//
// The factory registers the built-in schemes itself (CuckooGraph plus the
// three baseline stand-ins in the paper's column order, then the weighted
// "cuckoo-weighted" extended store); out-of-tree schemes self-register by
// defining a static StoreRegistrar in their translation unit:
//
//   static const StoreRegistrar kReg("MyStore", [] {
//     return std::make_unique<MyStore>();
//   });
//
// The registry is not synchronized: register from static initializers or
// from startup code before any concurrent use, exactly like the built-ins.
#ifndef CUCKOOGRAPH_BASELINES_STORE_FACTORY_H_
#define CUCKOOGRAPH_BASELINES_STORE_FACTORY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/graph_store.h"
#include "persist/durable_store.h"

namespace cuckoograph {

using StoreFactory = std::function<std::unique_ptr<GraphStore>()>;

// Adds a scheme to the registry. Returns false (keeping the existing
// entry) when the name is already taken.
bool RegisterStore(std::string name, StoreFactory factory);

// Scheme names in registration order, built-ins first.
std::vector<std::string> AllSchemeNames();

// Instantiates the named scheme. Throws std::invalid_argument with a
// message listing every valid scheme when the name is unknown.
std::unique_ptr<GraphStore> MakeStoreByName(const std::string& name);

// Opens the named durable scheme ("cuckoo-durable" or
// "cuckoo-sharded-durable") over caller-chosen DurableOptions — an
// explicit directory, sync mode, checkpoint cadence, fault-injection
// factory. This is how the durability benches and crash tests get a
// recoverable instance; the registry's own entries of the same names
// use an ephemeral owned temp dir with syncs off instead. Throws
// std::invalid_argument for a non-durable name, std::runtime_error when
// the directory cannot be opened/recovered.
std::unique_ptr<persist::DurableStore> MakeDurableStoreByName(
    const std::string& name, const persist::DurableOptions& opts);

// Parses a comma-separated scheme list (the benches' --schemes flag),
// validating each entry through the same unknown-name path as
// MakeStoreByName. An empty string selects every registered scheme.
std::vector<std::string> ParseSchemesFlag(const std::string& csv);

// Registers a scheme at static-initialization time.
struct StoreRegistrar {
  StoreRegistrar(std::string name, StoreFactory factory) {
    RegisterStore(std::move(name), std::move(factory));
  }
};

}  // namespace cuckoograph

#endif  // CUCKOOGRAPH_BASELINES_STORE_FACTORY_H_
