// LiveGraph stand-in: per-vertex append-only adjacency vectors behind a
// hash map. Insertion appends (after a duplicate scan, so the GraphStore
// idempotence contract holds), queries and deletions scan the vector —
// the O(deg(u)) edge-query behaviour of Table III's log-structured rows.
#ifndef CUCKOOGRAPH_BASELINES_ADJACENCY_LIST_STORE_H_
#define CUCKOOGRAPH_BASELINES_ADJACENCY_LIST_STORE_H_

#include <cstddef>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "core/graph_store.h"

namespace cuckoograph::baselines {

class AdjacencyListStore final : public GraphStore {
 public:
  std::string_view name() const override { return "AdjacencyList"; }

  bool InsertEdge(NodeId u, NodeId v) override;
  bool QueryEdge(NodeId u, NodeId v) const override;
  bool DeleteEdge(NodeId u, NodeId v) override;

  std::unique_ptr<NeighborCursor> Neighbors(NodeId u) const override;
  std::unique_ptr<NeighborCursor> Nodes() const override;
  size_t OutDegree(NodeId u) const override;

  size_t NumEdges() const override { return num_edges_; }
  size_t NumNodes() const override { return adj_.size(); }
  size_t MemoryBytes() const override;

 private:
  std::unordered_map<NodeId, std::vector<NodeId>> adj_;
  size_t num_edges_ = 0;
};

}  // namespace cuckoograph::baselines

#endif  // CUCKOOGRAPH_BASELINES_ADJACENCY_LIST_STORE_H_
