#include "baselines/adjacency_list_store.h"

#include <algorithm>

#include "baselines/cursors.h"

namespace cuckoograph::baselines {

bool AdjacencyListStore::InsertEdge(NodeId u, NodeId v) {
  std::vector<NodeId>& vec = adj_[u];
  if (std::find(vec.begin(), vec.end(), v) != vec.end()) return false;
  vec.push_back(v);
  ++num_edges_;
  return true;
}

bool AdjacencyListStore::QueryEdge(NodeId u, NodeId v) const {
  const auto it = adj_.find(u);
  if (it == adj_.end()) return false;
  const std::vector<NodeId>& vec = it->second;
  return std::find(vec.begin(), vec.end(), v) != vec.end();
}

bool AdjacencyListStore::DeleteEdge(NodeId u, NodeId v) {
  const auto it = adj_.find(u);
  if (it == adj_.end()) return false;
  std::vector<NodeId>& vec = it->second;
  const auto pos = std::find(vec.begin(), vec.end(), v);
  if (pos == vec.end()) return false;
  *pos = vec.back();
  vec.pop_back();
  if (vec.empty()) adj_.erase(it);
  --num_edges_;
  return true;
}

std::unique_ptr<NeighborCursor> AdjacencyListStore::Neighbors(
    NodeId u) const {
  const auto it = adj_.find(u);
  if (it == adj_.end()) return std::make_unique<EmptyNeighborCursor>();
  return std::make_unique<VectorNeighborCursor>(
      it->second.data(), it->second.data() + it->second.size());
}

std::unique_ptr<NeighborCursor> AdjacencyListStore::Nodes() const {
  return std::make_unique<MapKeyCursor<decltype(adj_)>>(adj_);
}

size_t AdjacencyListStore::OutDegree(NodeId u) const {
  const auto it = adj_.find(u);
  return it == adj_.end() ? 0 : it->second.size();
}

size_t AdjacencyListStore::MemoryBytes() const {
  // Hash-map node + two pointers of bucket overhead per vertex, plus each
  // adjacency vector's heap block.
  size_t bytes = sizeof(*this);
  bytes += adj_.bucket_count() * sizeof(void*);
  for (const auto& [u, vec] : adj_) {
    (void)u;
    bytes += sizeof(std::pair<const NodeId, std::vector<NodeId>>) +
             2 * sizeof(void*);
    bytes += vec.capacity() * sizeof(NodeId);
  }
  return bytes;
}

}  // namespace cuckoograph::baselines
