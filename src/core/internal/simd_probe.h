// Vectorized bucket probing for the cuckoo tables. A bucket probe compares
// one needle against every cell of a bucket; instead of a scalar loop per
// cell, these helpers compare a whole bucket per instruction and return a
// bitmask of matching cells (bit i = cell i matches).
//
// Backend selection is compile-time: SSE2 on x86-64, NEON on AArch64, and
// a portable scalar loop everywhere else or when CUCKOOGRAPH_SCALAR_PROBE
// is defined (the CMake option CUCKOOGRAPH_DISABLE_SIMD sets it). The
// *Scalar variants are always compiled so tests can cross-check the SIMD
// masks and benches can measure the win.
//
// Overread contract: the SIMD paths load 16 bytes at a time, so byte
// buffers handed to MatchByteMask must stay readable for kBytePadding
// bytes past the probed range (CuckooTable pads its fingerprint array),
// and key arrays handed to MatchKeyMask must hold kKeyLanes readable
// entries regardless of `count` (CuckooGraph sizes its inline-slot arrays
// at kKeyLanes). Bits past `count` are always masked off, so the padding
// contents never influence a result.
#ifndef CUCKOOGRAPH_CORE_INTERNAL_SIMD_PROBE_H_
#define CUCKOOGRAPH_CORE_INTERNAL_SIMD_PROBE_H_

#include <cstddef>
#include <cstdint>

#include "common/thread_annotations.h"
#include "common/types.h"

#if !defined(CUCKOOGRAPH_SCALAR_PROBE)
#if defined(__SSE2__) || (defined(_M_X64) && !defined(_M_ARM64EC))
#define CUCKOOGRAPH_PROBE_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define CUCKOOGRAPH_PROBE_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace cuckoograph::internal {

// Readable slack MatchByteMask may touch past the probed range.
inline constexpr size_t kBytePadding = 16;

// Fixed readable capacity MatchKeyMask assumes of its key array.
inline constexpr size_t kKeyLanes = 8;

// Largest bucket the byte probe can report in one mask.
inline constexpr size_t kMaxProbeWidth = 64;

inline constexpr uint64_t LowBits(size_t count) {
  return count >= 64 ? ~uint64_t{0} : (uint64_t{1} << count) - 1;
}

// ---- Always-compiled scalar reference paths --------------------------------

CUCKOOGRAPH_ALWAYS_INLINE uint64_t MatchByteMaskScalar(const uint8_t* bytes, size_t count,
                                    uint8_t needle) {
  uint64_t mask = 0;
  for (size_t i = 0; i < count; ++i) {
    mask |= static_cast<uint64_t>(bytes[i] == needle) << i;
  }
  return mask;
}

CUCKOOGRAPH_ALWAYS_INLINE uint32_t MatchKeyMaskScalar(const NodeId* keys, size_t count,
                                   NodeId needle) {
  uint32_t mask = 0;
  for (size_t i = 0; i < count; ++i) {
    mask |= static_cast<uint32_t>(keys[i] == needle) << i;
  }
  return mask;
}

// ---- Backend-selected paths ------------------------------------------------

#if defined(CUCKOOGRAPH_PROBE_SSE2)

inline const char* ProbeBackendName() { return "sse2"; }

// Bitmask of bytes[i] == needle over i in [0, count), count <= 64.
CUCKOOGRAPH_ALWAYS_INLINE uint64_t MatchByteMask(const uint8_t* bytes, size_t count,
                              uint8_t needle) {
  const __m128i splat = _mm_set1_epi8(static_cast<char>(needle));
  uint64_t mask = 0;
  for (size_t i = 0; i < count; i += 16) {
    const __m128i block =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + i));
    const uint32_t m = static_cast<uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(block, splat)));
    mask |= static_cast<uint64_t>(m) << i;
  }
  return mask & LowBits(count);
}

// Bitmask of keys[i] == needle over i in [0, count), count <= kKeyLanes.
CUCKOOGRAPH_ALWAYS_INLINE uint32_t MatchKeyMask(const NodeId* keys, size_t count,
                             NodeId needle) {
  const __m128i splat = _mm_set1_epi32(static_cast<int>(needle));
  const __m128i lo =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys));
  const __m128i hi =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + 4));
  const uint32_t mlo = static_cast<uint32_t>(
      _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(lo, splat))));
  const uint32_t mhi = static_cast<uint32_t>(
      _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(hi, splat))));
  return (mlo | (mhi << 4)) & static_cast<uint32_t>(LowBits(count));
}

#elif defined(CUCKOOGRAPH_PROBE_NEON)

inline const char* ProbeBackendName() { return "neon"; }

CUCKOOGRAPH_ALWAYS_INLINE uint64_t MatchByteMask(const uint8_t* bytes, size_t count,
                              uint8_t needle) {
  static const uint8_t kBitsPerLane[16] = {1, 2, 4, 8, 16, 32, 64, 128,
                                           1, 2, 4, 8, 16, 32, 64, 128};
  const uint8x16_t splat = vdupq_n_u8(needle);
  const uint8x16_t lane_bits = vld1q_u8(kBitsPerLane);
  uint64_t mask = 0;
  for (size_t i = 0; i < count; i += 16) {
    const uint8x16_t eq = vceqq_u8(vld1q_u8(bytes + i), splat);
    const uint8x16_t bits = vandq_u8(eq, lane_bits);
    const uint64_t lo = vaddv_u8(vget_low_u8(bits));
    const uint64_t hi = vaddv_u8(vget_high_u8(bits));
    mask |= (lo | (hi << 8)) << i;
  }
  return mask & LowBits(count);
}

CUCKOOGRAPH_ALWAYS_INLINE uint32_t MatchKeyMask(const NodeId* keys, size_t count,
                             NodeId needle) {
  static const uint32_t kBitsPerLane[4] = {1, 2, 4, 8};
  const uint32x4_t splat = vdupq_n_u32(needle);
  const uint32x4_t lane_bits = vld1q_u32(kBitsPerLane);
  const uint32x4_t lo = vandq_u32(vceqq_u32(vld1q_u32(keys), splat),
                                  lane_bits);
  const uint32x4_t hi = vandq_u32(vceqq_u32(vld1q_u32(keys + 4), splat),
                                  lane_bits);
  const uint32_t mask = vaddvq_u32(lo) | (vaddvq_u32(hi) << 4);
  return mask & static_cast<uint32_t>(LowBits(count));
}

#else

inline const char* ProbeBackendName() { return "scalar"; }

CUCKOOGRAPH_ALWAYS_INLINE uint64_t MatchByteMask(const uint8_t* bytes, size_t count,
                              uint8_t needle) {
  return MatchByteMaskScalar(bytes, count, needle);
}

CUCKOOGRAPH_ALWAYS_INLINE uint32_t MatchKeyMask(const NodeId* keys, size_t count,
                             NodeId needle) {
  return MatchKeyMaskScalar(keys, count, needle);
}

#endif

}  // namespace cuckoograph::internal

#endif  // CUCKOOGRAPH_CORE_INTERNAL_SIMD_PROBE_H_
