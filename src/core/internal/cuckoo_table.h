// One fixed-geometry cuckoo hash table: `num_buckets` buckets of
// `cells_per_bucket` cells, two hash choices per key, random-walk kick-out
// insertion. Shared by the top-level L-CHT (items are vertex entries) and
// the per-vertex S-CHT chain tables (items are neighbour records).
//
// Items must expose `NodeId CuckooKey() const`. Duplicate detection is the
// caller's job (FindSlot before Place); the table itself treats items as
// interchangeable, which keeps kick-out eviction simple: a failed Place
// leaves the last evicted survivor in *item, and since all items are
// equally placeable the caller may park or re-place whichever survivor it
// is handed.
//
// Probing is batched: alongside the cells the table keeps one fingerprint
// byte per cell (0 = empty, a nonzero key-derived byte otherwise), and
// FindSlot / free-cell scans compare a whole bucket's fingerprints per
// probe through simd_probe.h. Only cells whose fingerprint matches are
// verified against the full key, so a probe costs one vector compare plus
// (almost always) at most one key comparison.
//
// Storage layout for optimistic readers: the cells and fingerprints live
// behind a single heap-allocated, self-describing Block whose geometry is
// immutable after construction — only cell *contents* mutate in place.
// A table's Block pointer changes solely when a rebuild swaps in a fresh
// table (AdoptFrom) or a chain replacement retires it (RetireStorage), so
// a lock-free reader that acquires the pointer once (reader_block) always
// sees a (geometry, arrays) pair that is consistent by construction, and
// the replaced Block is handed to an epoch Reclaimer instead of being
// freed under the reader (see internal/epoch.h). Torn cell contents are
// the seqlock's problem: the reader validates its shard sequence before
// trusting anything it copied out of a Block.
#ifndef CUCKOOGRAPH_CORE_INTERNAL_CUCKOO_TABLE_H_
#define CUCKOOGRAPH_CORE_INTERNAL_CUCKOO_TABLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/bob_hash.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "core/internal/epoch.h"
#include "core/internal/simd_probe.h"

namespace cuckoograph::internal {

inline constexpr size_t kNoSlot = static_cast<size_t>(-1);

// Key -> nonzero fingerprint byte, from a fixed mixer so the same key maps
// to the same fingerprint in every table (the hashes vary per table pair,
// the fingerprint does not).
CUCKOOGRAPH_ALWAYS_INLINE uint8_t KeyFingerprint(NodeId key) {
  uint32_t x = static_cast<uint32_t>(key) * 0x9E3779B1u;
  x ^= x >> 15;
  const uint8_t f = static_cast<uint8_t>(x >> 24);
  return f == 0 ? 1 : f;
}

template <typename Item>
class CuckooTable {
 public:
  // Self-describing storage: geometry plus both arrays behind one
  // pointer. Immutable after construction except for cell contents.
  struct Block {
    Block(size_t buckets, size_t cpb)
        : num_buckets(buckets),
          cells_per_bucket(cpb),
          cells(buckets * cpb),
          fps(buckets * cpb + kBytePadding, 0) {}
    const size_t num_buckets;
    const size_t cells_per_bucket;
    std::vector<Item> cells;
    // One fingerprint byte per cell (0 = empty), padded by kBytePadding
    // so the vector probe may overread past the last bucket.
    std::vector<uint8_t> fps;
    size_t num_cells() const { return cells.size(); }
  };

  CuckooTable(size_t num_buckets, int cells_per_bucket)
      : block_(new Block(num_buckets,
                         static_cast<size_t>(cells_per_bucket))) {}

  ~CuckooTable() { delete block_.load(std::memory_order_relaxed); }

  CuckooTable(const CuckooTable&) = delete;
  CuckooTable& operator=(const CuckooTable&) = delete;

  CuckooTable(CuckooTable&& other) noexcept
      : block_(other.block_.exchange(nullptr, std::memory_order_relaxed)),
        size_(other.size_) {
    other.size_ = 0;
  }

  CuckooTable& operator=(CuckooTable&& other) noexcept {
    if (this != &other) {
      delete block_.load(std::memory_order_relaxed);
      block_.store(other.block_.exchange(nullptr,
                                         std::memory_order_relaxed),
                   std::memory_order_relaxed);
      size_ = other.size_;
      other.size_ = 0;
    }
    return *this;
  }

  size_t num_buckets() const { return b()->num_buckets; }
  size_t num_cells() const { return b()->num_cells(); }
  size_t size() const { return size_; }
  bool full() const { return size_ == b()->num_cells(); }

  Item& cell(size_t slot) { return b()->cells[slot]; }
  const Item& cell(size_t slot) const { return b()->cells[slot]; }
  bool used(size_t slot) const { return b()->fps[slot] != 0; }

  // ---- Optimistic-reader hooks ---------------------------------------------

  // Acquire-pins the current storage block: pairs with the release in
  // AdoptFrom, so a reader that sees a fresh block also sees its fully
  // constructed contents. May return null only for a moved-from /
  // retired table (readers null-check and bail to their fallback).
  const Block* reader_block() const {
    return block_.load(std::memory_order_acquire);
  }

  // FindSlot against one pinned block. Static so an optimistic reader
  // re-reads nothing through the table object mid-probe; bounds come
  // from the block itself, so the probe is crash-safe even while cell
  // contents are being torn by a concurrent writer (the caller's
  // sequence validation rejects any value read under such a race).
  CUCKOOGRAPH_NO_SANITIZE_THREAD
  static size_t FindSlotIn(const Block& block, NodeId key,
                           const BobHash& h1, const BobHash& h2) {
    const uint8_t fp = KeyFingerprint(key);
    const size_t b1 = BucketIn(block, h1, key);
    size_t slot = MatchInBucket(block, b1, fp, key);
    if (slot != kNoSlot) return slot;
    const size_t b2 = BucketIn(block, h2, key);
    if (b2 == b1) return kNoSlot;
    return MatchInBucket(block, b2, fp, key);
  }

  // Swaps in `fresh`'s storage (rebuild commit), retiring the old block
  // through `reclaimer` — or deleting it immediately when no optimistic
  // reader can exist (reclaimer == nullptr).
  void AdoptFrom(CuckooTable&& fresh, Reclaimer* reclaimer) {
    Block* old = block_.load(std::memory_order_relaxed);
    block_.store(
        fresh.block_.exchange(nullptr, std::memory_order_relaxed),
        std::memory_order_release);
    size_ = fresh.size_;
    fresh.size_ = 0;
    Dispose(old, reclaimer);
  }

  // Hands this table's block to the reclaimer and leaves the table
  // empty (moved-from); used when a chain replaces its table list.
  void RetireStorage(Reclaimer* reclaimer) {
    Block* old = block_.exchange(nullptr, std::memory_order_relaxed);
    size_ = 0;
    Dispose(old, reclaimer);
  }

  // ---- Writer-side operations ----------------------------------------------

  // Returns the slot holding `key`, or kNoSlot.
  size_t FindSlot(NodeId key, const BobHash& h1, const BobHash& h2) const {
    return FindSlotIn(*b(), key, h1, h2);
  }

  // Places *item, evicting at most max_kicks victims. On success returns
  // true. On failure returns false with the homeless survivor in *item
  // (see the header comment). *kicks is incremented per eviction.
  bool Place(Item* item, const BobHash& h1, const BobHash& h2, int max_kicks,
             SplitMix64* rng, uint64_t* kicks) {
    Block& block = *b();
    if (full()) return false;
    for (int attempt = 0; attempt <= max_kicks; ++attempt) {
      const NodeId key = item->CuckooKey();
      const size_t b1 = BucketIn(block, h1, key);
      const size_t b2 = BucketIn(block, h2, key);
      const size_t free_slot = FreeCellIn(block, b1, b2);
      if (free_slot != kNoSlot) {
        block.cells[free_slot] = *item;
        block.fps[free_slot] = KeyFingerprint(key);
        ++size_;
        return true;
      }
      if (attempt == max_kicks) break;
      // Kick a random victim out of one of the two candidate buckets.
      const size_t victim_bucket = (attempt & 1) != 0 ? b2 : b1;
      const size_t slot =
          victim_bucket + rng->NextBelow64(block.cells_per_bucket);
      std::swap(*item, block.cells[slot]);
      block.fps[slot] = KeyFingerprint(block.cells[slot].CuckooKey());
      ++*kicks;
    }
    return false;
  }

  void Erase(size_t slot) {
    b()->fps[slot] = 0;
    --size_;
  }

  template <typename Fn>
  void ForEach(Fn fn) const {
    const Block& block = *b();
    for (size_t s = 0; s < block.cells.size(); ++s) {
      if (block.fps[s] != 0) fn(block.cells[s]);
    }
  }

  size_t MemoryBytes() const {
    const Block& block = *b();
    return sizeof(Block) + block.cells.capacity() * sizeof(Item) +
           block.fps.capacity() * sizeof(uint8_t);
  }

 private:
  CUCKOOGRAPH_ALWAYS_INLINE static size_t BucketIn(const Block& block,
                                                   const BobHash& h,
                                                   NodeId key) {
    return (static_cast<size_t>(h(key)) % block.num_buckets) *
           block.cells_per_bucket;
  }

  // Fingerprint-probes bucket `b`, verifying candidates against the key.
  CUCKOOGRAPH_NO_SANITIZE_THREAD
  static size_t MatchInBucket(const Block& block, size_t b, uint8_t fp,
                              NodeId key) {
    uint64_t mask =
        MatchByteMask(block.fps.data() + b, block.cells_per_bucket, fp);
    while (mask != 0) {
      const size_t s = b + static_cast<size_t>(__builtin_ctzll(mask));
      if (block.cells[s].CuckooKey() == key) return s;
      mask &= mask - 1;
    }
    return kNoSlot;
  }

  static size_t FreeCellIn(const Block& block, size_t b1, size_t b2) {
    uint64_t mask =
        MatchByteMask(block.fps.data() + b1, block.cells_per_bucket, 0);
    if (mask != 0) return b1 + static_cast<size_t>(__builtin_ctzll(mask));
    if (b2 != b1) {
      mask = MatchByteMask(block.fps.data() + b2, block.cells_per_bucket,
                           0);
      if (mask != 0) return b2 + static_cast<size_t>(__builtin_ctzll(mask));
    }
    return kNoSlot;
  }

  static void Dispose(Block* old, Reclaimer* reclaimer) {
    if (old == nullptr) return;
    if (reclaimer != nullptr) {
      reclaimer->Retire([old] { delete old; });
    } else {
      delete old;
    }
  }

  // Writer-side view of the storage pointer. Writers are serialized by
  // the owner's lock, so relaxed is enough; the release that publishes
  // a fresh block to readers lives in AdoptFrom.
  Block* b() const { return block_.load(std::memory_order_relaxed); }

  std::atomic<Block*> block_;
  size_t size_ = 0;
};

}  // namespace cuckoograph::internal

#endif  // CUCKOOGRAPH_CORE_INTERNAL_CUCKOO_TABLE_H_
