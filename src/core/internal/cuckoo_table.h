// One fixed-geometry cuckoo hash table: `num_buckets` buckets of
// `cells_per_bucket` cells, two hash choices per key, random-walk kick-out
// insertion. Shared by the top-level L-CHT (items are vertex entries) and
// the per-vertex S-CHT chain tables (items are neighbour records).
//
// Items must expose `NodeId CuckooKey() const`. Duplicate detection is the
// caller's job (FindSlot before Place); the table itself treats items as
// interchangeable, which keeps kick-out eviction simple: a failed Place
// leaves the last evicted survivor in *item, and since all items are
// equally placeable the caller may park or re-place whichever survivor it
// is handed.
//
// Probing is batched: alongside the cells the table keeps one fingerprint
// byte per cell (0 = empty, a nonzero key-derived byte otherwise), and
// FindSlot / free-cell scans compare a whole bucket's fingerprints per
// probe through simd_probe.h. Only cells whose fingerprint matches are
// verified against the full key, so a probe costs one vector compare plus
// (almost always) at most one key comparison.
#ifndef CUCKOOGRAPH_CORE_INTERNAL_CUCKOO_TABLE_H_
#define CUCKOOGRAPH_CORE_INTERNAL_CUCKOO_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/bob_hash.h"
#include "common/rng.h"
#include "common/types.h"
#include "core/internal/simd_probe.h"

namespace cuckoograph::internal {

inline constexpr size_t kNoSlot = static_cast<size_t>(-1);

// Key -> nonzero fingerprint byte, from a fixed mixer so the same key maps
// to the same fingerprint in every table (the hashes vary per table pair,
// the fingerprint does not).
inline uint8_t KeyFingerprint(NodeId key) {
  uint32_t x = static_cast<uint32_t>(key) * 0x9E3779B1u;
  x ^= x >> 15;
  const uint8_t f = static_cast<uint8_t>(x >> 24);
  return f == 0 ? 1 : f;
}

template <typename Item>
class CuckooTable {
 public:
  CuckooTable(size_t num_buckets, int cells_per_bucket)
      : num_buckets_(num_buckets),
        cells_per_bucket_(static_cast<size_t>(cells_per_bucket)),
        cells_(num_buckets * static_cast<size_t>(cells_per_bucket)),
        fps_(cells_.size() + kBytePadding, 0) {}

  size_t num_buckets() const { return num_buckets_; }
  size_t num_cells() const { return cells_.size(); }
  size_t size() const { return size_; }
  bool full() const { return size_ == cells_.size(); }

  Item& cell(size_t slot) { return cells_[slot]; }
  const Item& cell(size_t slot) const { return cells_[slot]; }
  bool used(size_t slot) const { return fps_[slot] != 0; }

  // Returns the slot holding `key`, or kNoSlot.
  size_t FindSlot(NodeId key, const BobHash& h1, const BobHash& h2) const {
    const uint8_t fp = KeyFingerprint(key);
    const size_t b1 = Bucket(h1, key);
    size_t slot = MatchInBucket(b1, fp, key);
    if (slot != kNoSlot) return slot;
    const size_t b2 = Bucket(h2, key);
    if (b2 == b1) return kNoSlot;
    return MatchInBucket(b2, fp, key);
  }

  // Places *item, evicting at most max_kicks victims. On success returns
  // true. On failure returns false with the homeless survivor in *item
  // (see the header comment). *kicks is incremented per eviction.
  bool Place(Item* item, const BobHash& h1, const BobHash& h2, int max_kicks,
             SplitMix64* rng, uint64_t* kicks) {
    if (full()) return false;
    for (int attempt = 0; attempt <= max_kicks; ++attempt) {
      const NodeId key = item->CuckooKey();
      const size_t b1 = Bucket(h1, key);
      const size_t b2 = Bucket(h2, key);
      const size_t free_slot = FreeCellIn(b1, b2);
      if (free_slot != kNoSlot) {
        cells_[free_slot] = *item;
        fps_[free_slot] = KeyFingerprint(key);
        ++size_;
        return true;
      }
      if (attempt == max_kicks) break;
      // Kick a random victim out of one of the two candidate buckets.
      const size_t victim_bucket = (attempt & 1) != 0 ? b2 : b1;
      const size_t slot =
          victim_bucket + rng->NextBelow64(cells_per_bucket_);
      std::swap(*item, cells_[slot]);
      fps_[slot] = KeyFingerprint(cells_[slot].CuckooKey());
      ++*kicks;
    }
    return false;
  }

  void Erase(size_t slot) {
    fps_[slot] = 0;
    --size_;
  }

  template <typename Fn>
  void ForEach(Fn fn) const {
    for (size_t s = 0; s < cells_.size(); ++s) {
      if (fps_[s] != 0) fn(cells_[s]);
    }
  }

  size_t MemoryBytes() const {
    return cells_.capacity() * sizeof(Item) +
           fps_.capacity() * sizeof(uint8_t);
  }

 private:
  size_t Bucket(const BobHash& h, NodeId key) const {
    return (static_cast<size_t>(h(key)) % num_buckets_) * cells_per_bucket_;
  }

  // Fingerprint-probes bucket `b`, verifying candidates against the key.
  size_t MatchInBucket(size_t b, uint8_t fp, NodeId key) const {
    uint64_t mask = MatchByteMask(fps_.data() + b, cells_per_bucket_, fp);
    while (mask != 0) {
      const size_t s = b + static_cast<size_t>(__builtin_ctzll(mask));
      if (cells_[s].CuckooKey() == key) return s;
      mask &= mask - 1;
    }
    return kNoSlot;
  }

  size_t FreeCellIn(size_t b1, size_t b2) const {
    uint64_t mask = MatchByteMask(fps_.data() + b1, cells_per_bucket_, 0);
    if (mask != 0) return b1 + static_cast<size_t>(__builtin_ctzll(mask));
    if (b2 != b1) {
      mask = MatchByteMask(fps_.data() + b2, cells_per_bucket_, 0);
      if (mask != 0) return b2 + static_cast<size_t>(__builtin_ctzll(mask));
    }
    return kNoSlot;
  }

  size_t num_buckets_;
  size_t cells_per_bucket_;
  std::vector<Item> cells_;
  // One fingerprint byte per cell (0 = empty), padded by kBytePadding so
  // the vector probe may overread past the last bucket.
  std::vector<uint8_t> fps_;
  size_t size_ = 0;
};

}  // namespace cuckoograph::internal

#endif  // CUCKOOGRAPH_CORE_INTERNAL_CUCKOO_TABLE_H_
