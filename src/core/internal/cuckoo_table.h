// One fixed-geometry cuckoo hash table: `num_buckets` buckets of
// `cells_per_bucket` cells, two hash choices per key, random-walk kick-out
// insertion. Shared by the top-level L-CHT (items are vertex entries) and
// the per-vertex S-CHT chain tables (items are neighbour records).
//
// Items must expose `NodeId CuckooKey() const`. Duplicate detection is the
// caller's job (FindSlot before Place); the table itself treats items as
// interchangeable, which keeps kick-out eviction simple: a failed Place
// leaves the last evicted survivor in *item, and since all items are
// equally placeable the caller may park or re-place whichever survivor it
// is handed.
#ifndef CUCKOOGRAPH_CORE_INTERNAL_CUCKOO_TABLE_H_
#define CUCKOOGRAPH_CORE_INTERNAL_CUCKOO_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/bob_hash.h"
#include "common/rng.h"
#include "common/types.h"

namespace cuckoograph::internal {

inline constexpr size_t kNoSlot = static_cast<size_t>(-1);

template <typename Item>
class CuckooTable {
 public:
  CuckooTable(size_t num_buckets, int cells_per_bucket)
      : num_buckets_(num_buckets),
        cells_per_bucket_(static_cast<size_t>(cells_per_bucket)),
        cells_(num_buckets * static_cast<size_t>(cells_per_bucket)),
        used_(cells_.size(), 0) {}

  size_t num_buckets() const { return num_buckets_; }
  size_t num_cells() const { return cells_.size(); }
  size_t size() const { return size_; }
  bool full() const { return size_ == cells_.size(); }

  Item& cell(size_t slot) { return cells_[slot]; }
  const Item& cell(size_t slot) const { return cells_[slot]; }
  bool used(size_t slot) const { return used_[slot] != 0; }

  // Returns the slot holding `key`, or kNoSlot.
  size_t FindSlot(NodeId key, const BobHash& h1, const BobHash& h2) const {
    const size_t b1 = Bucket(h1, key);
    for (size_t s = b1; s < b1 + cells_per_bucket_; ++s) {
      if (used_[s] && cells_[s].CuckooKey() == key) return s;
    }
    const size_t b2 = Bucket(h2, key);
    if (b2 == b1) return kNoSlot;
    for (size_t s = b2; s < b2 + cells_per_bucket_; ++s) {
      if (used_[s] && cells_[s].CuckooKey() == key) return s;
    }
    return kNoSlot;
  }

  // Places *item, evicting at most max_kicks victims. On success returns
  // true. On failure returns false with the homeless survivor in *item
  // (see the header comment). *kicks is incremented per eviction.
  bool Place(Item* item, const BobHash& h1, const BobHash& h2, int max_kicks,
             SplitMix64* rng, uint64_t* kicks) {
    if (full()) return false;
    for (int attempt = 0; attempt <= max_kicks; ++attempt) {
      const NodeId key = item->CuckooKey();
      const size_t b1 = Bucket(h1, key);
      const size_t b2 = Bucket(h2, key);
      const size_t free_slot = FreeCellIn(b1, b2);
      if (free_slot != kNoSlot) {
        cells_[free_slot] = *item;
        used_[free_slot] = 1;
        ++size_;
        return true;
      }
      if (attempt == max_kicks) break;
      // Kick a random victim out of one of the two candidate buckets.
      const size_t victim_bucket = (attempt & 1) != 0 ? b2 : b1;
      const size_t slot =
          victim_bucket + rng->NextBelow64(cells_per_bucket_);
      std::swap(*item, cells_[slot]);
      ++*kicks;
    }
    return false;
  }

  void Erase(size_t slot) {
    used_[slot] = 0;
    --size_;
  }

  template <typename Fn>
  void ForEach(Fn fn) const {
    for (size_t s = 0; s < cells_.size(); ++s) {
      if (used_[s]) fn(cells_[s]);
    }
  }

  size_t MemoryBytes() const {
    return cells_.capacity() * sizeof(Item) +
           used_.capacity() * sizeof(uint8_t);
  }

 private:
  size_t Bucket(const BobHash& h, NodeId key) const {
    return (static_cast<size_t>(h(key)) % num_buckets_) * cells_per_bucket_;
  }

  size_t FreeCellIn(size_t b1, size_t b2) const {
    for (size_t s = b1; s < b1 + cells_per_bucket_; ++s) {
      if (!used_[s]) return s;
    }
    if (b2 != b1) {
      for (size_t s = b2; s < b2 + cells_per_bucket_; ++s) {
        if (!used_[s]) return s;
      }
    }
    return kNoSlot;
  }

  size_t num_buckets_;
  size_t cells_per_bucket_;
  std::vector<Item> cells_;
  std::vector<uint8_t> used_;
  size_t size_ = 0;
};

}  // namespace cuckoograph::internal

#endif  // CUCKOOGRAPH_CORE_INTERNAL_CUCKOO_TABLE_H_
