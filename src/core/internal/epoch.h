// Epoch-based reclamation for the optimistic (seqlock-validated) read
// path of the sharded store. An optimistic reader probes a shard's
// structures without holding the stripe lock, so a concurrent writer
// must never free memory the reader could still be dereferencing —
// instead, writers *retire* replaced allocations (old bucket blocks,
// whole S-CHT chains) into a limbo list, and the limbo list frees an
// entry only once every reader that could have seen it has exited.
//
// The protocol:
//  - A reader claims a slot in the EpochManager before its first probe,
//    publishing the global epoch it observed (EpochGuard). While the
//    slot is held, nothing retired at or after that epoch is freed.
//  - A writer retires an allocation by advancing the global epoch and
//    tagging the entry with the pre-advance value (LimboList::Push).
//  - Draining frees every entry whose retire epoch is older than the
//    oldest epoch any reader currently pins (LimboList::DrainUpTo with
//    EpochManager::MinPinned) — readers that pinned later can only have
//    reached the entry's *replacement*, because the writer unlinks an
//    allocation from the live structure before retiring it.
//
// Slots are claimed dynamically (no thread registration): TryPin scans a
// fixed slot array with a per-thread starting hint and CASes a free
// slot. When every slot is busy it fails, and the caller simply takes
// its locked fallback path — reclamation never blocks and never waits.
#ifndef CUCKOOGRAPH_CORE_INTERNAL_EPOCH_H_
#define CUCKOOGRAPH_CORE_INTERNAL_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace cuckoograph::internal {

// Deferred-deletion sink handed to structures whose mutations replace
// reader-visible allocations. The default (a null Reclaimer*) at the
// call sites means "free immediately" — correct whenever no lock-free
// reader exists (the single-threaded CuckooGraph on its own).
class Reclaimer {
 public:
  virtual ~Reclaimer() = default;

  // Defers running `deleter` until no optimistic reader that was active
  // at the time of the call can still hold a reference into the retired
  // allocation.
  virtual void Retire(std::function<void()> deleter) = 0;
};

// Validation token for one seqlock-protected optimistic probe. The owner
// of the sequence word (the shard) snapshots an even value into
// `observed` before probing; Valid() re-reads the word and succeeds only
// if no writer has started since — at which point everything copied out
// of the shard so far is the committed state as of the snapshot. The
// probe passes this down so it can validate *before* dereferencing any
// pointer it copied (a torn or mid-write pointer must never be chased).
struct SeqValidator {
  const std::atomic<uint64_t>* seq;
  uint64_t observed;

  bool Valid() const {
    // The fence orders every preceding (possibly non-atomic) probe read
    // before the re-read of the sequence word; pairs with the release
    // semantics of the writer's begin/end bumps.
    std::atomic_thread_fence(std::memory_order_acquire);
    return seq->load(std::memory_order_relaxed) == observed;
  }
};

class EpochManager {
 public:
  // Concurrent pinned readers supported; excess readers fall back to
  // their locked path (TryPin fails), so this bounds optimism, not
  // correctness.
  static constexpr size_t kSlots = 64;
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // Reader side: claim a free slot, publishing the current global epoch
  // in it. The seq_cst pin orders the slot publication before any of
  // the reader's subsequent probes, so a writer that scans the slots
  // after the pin is visible cannot free what the reader may reach.
  // Returns kNoSlot when every slot is busy.
  size_t TryPin() {
    const uint64_t epoch = global_.load(std::memory_order_seq_cst);
    const size_t start = PreferredSlot() % kSlots;
    for (size_t i = 0; i < kSlots; ++i) {
      const size_t at = (start + i) % kSlots;
      uint64_t expected = 0;
      if (slots_[at].epoch.compare_exchange_strong(
              expected, epoch, std::memory_order_seq_cst)) {
        PreferredSlot() = at;
        return at;
      }
    }
    return kNoSlot;
  }

  void Unpin(size_t slot) {
    slots_[slot].epoch.store(0, std::memory_order_release);
  }

  // Writer side: advance the global epoch, returning the pre-advance
  // value (the retire tag for allocations unlinked before this call).
  uint64_t Advance() {
    return global_.fetch_add(1, std::memory_order_seq_cst);
  }

  // Oldest epoch any reader currently pins (UINT64_MAX when none do).
  // An entry retired at epoch e may be freed once MinPinned() > e.
  uint64_t MinPinned() const {
    uint64_t min = UINT64_MAX;
    for (const Slot& slot : slots_) {
      const uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
      if (e != 0 && e < min) min = e;
    }
    return min;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{0};  // 0 = free
  };

  // Per-thread scan hint only — correctness never depends on it, so one
  // process-wide hint shared across EpochManager instances is fine.
  static size_t& PreferredSlot() {
    thread_local size_t hint = 0;
    return hint;
  }

  std::atomic<uint64_t> global_{1};  // 0 is reserved for "slot free"
  Slot slots_[kSlots];
};

// RAII slot pin around one optimistic read attempt (or a batch of them).
class EpochGuard {
 public:
  explicit EpochGuard(EpochManager* manager)
      : manager_(manager), slot_(manager->TryPin()) {}
  ~EpochGuard() {
    if (pinned()) manager_->Unpin(slot_);
  }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

  // False when every slot was busy: the caller must not probe
  // optimistically and should take its locked path instead.
  bool pinned() const { return slot_ != EpochManager::kNoSlot; }

 private:
  EpochManager* const manager_;
  const size_t slot_;
};

// Retired allocations awaiting a safe epoch. Not thread-safe on its own:
// the owner guards it with the same lock its writers hold (the sharded
// store annotates it GUARDED_BY the stripe lock).
class LimboList {
 public:
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  // Registers `deleter` for an allocation retired at `retire_epoch`.
  void Push(uint64_t retire_epoch, std::function<void()> deleter) {
    entries_.push_back(Entry{retire_epoch, std::move(deleter)});
  }

  // Frees every entry retired strictly before `min_pinned_epoch` (pass
  // EpochManager::MinPinned(); UINT64_MAX frees everything).
  void DrainUpTo(uint64_t min_pinned_epoch) {
    size_t kept = 0;
    for (Entry& entry : entries_) {
      if (entry.retire_epoch < min_pinned_epoch) {
        entry.deleter();
      } else {
        entries_[kept++] = std::move(entry);
      }
    }
    entries_.resize(kept);
  }

  // Frees everything unconditionally — destructor path only, when the
  // owner knows no reader remains.
  void DrainAll() { DrainUpTo(UINT64_MAX); }

 private:
  struct Entry {
    uint64_t retire_epoch;
    std::function<void()> deleter;
  };
  std::vector<Entry> entries_;
};

}  // namespace cuckoograph::internal

#endif  // CUCKOOGRAPH_CORE_INTERNAL_EPOCH_H_
