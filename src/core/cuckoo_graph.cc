#include "core/cuckoo_graph.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <memory>
#include <utility>
#include <vector>

#include "common/crash_point.h"
#include "common/thread_annotations.h"

namespace cuckoograph {

static_assert(CuckooGraph::kInlineSlots <=
                  static_cast<int>(internal::kKeyLanes),
              "inline slots must fit the SIMD key-probe lane count");

namespace internal {

// A per-vertex S-CHT chain: up to R nested cuckoo tables (head first) plus
// this table set's denylist. `size` counts every stored neighbour,
// denylist included.
//
// The reader_* members are the chain's *mirror* for lock-free readers:
// enumerating `tables` itself (a vector that grows and gets replaced) is
// not crash-safe without the lock, so writers republish the table count
// and each table's storage block into these atomics after every
// structural change (PublishChainMirror), and the denylist count after
// every denylist mutation. Mirror entries may be stale — they then point
// at retired-but-not-yet-freed blocks (epoch limbo), and the reader's
// sequence validation rejects whatever was read. A chain that outgrows
// the mirror (only possible with a non-default max_chain_tables > 8)
// stores kMirrorOverflow, telling readers to use their locked fallback.
struct Chain {
  static constexpr size_t kMirrorTables = 8;
  static constexpr uint32_t kMirrorOverflow = UINT32_MAX;

  std::vector<CuckooTable<CuckooGraph::Neighbor>> tables;
  // Reserved to denylist_limit at construction, mutated in place only
  // (stable data(); see the matching comment on l_denylist_).
  std::vector<CuckooGraph::Neighbor> denylist;
  size_t size = 0;

  std::atomic<uint32_t> reader_num_tables{0};
  std::atomic<uint32_t> reader_deny_count{0};
  std::array<std::atomic<const CuckooTable<CuckooGraph::Neighbor>::Block*>,
             kMirrorTables>
      reader_tables{};
};

}  // namespace internal

namespace {

Config Normalize(Config config) {
  config.l_initial_buckets = std::max<size_t>(1, config.l_initial_buckets);
  config.s_initial_buckets = std::max<size_t>(1, config.s_initial_buckets);
  // One probe mask covers a whole bucket, so d is capped at the mask width.
  config.cells_per_bucket =
      std::min<int>(internal::kMaxProbeWidth,
                    std::max(1, config.cells_per_bucket));
  config.max_kicks = std::max(1, config.max_kicks);
  config.max_chain_tables = std::max(1, config.max_chain_tables);
  config.denylist_limit = std::max(0, config.denylist_limit);
  config.expand_threshold =
      std::min(0.95, std::max(0.1, config.expand_threshold));
  return config;
}

}  // namespace

CuckooGraph::CuckooGraph(const Config& config)
    : config_(Normalize(config)),
      h1_(0x7feb352d),
      h2_(0x846ca68b),
      rng_(0x2545f4914f6cdd1dULL),
      l_(config_.l_initial_buckets, config_.cells_per_bucket) {
  l_denylist_.reserve(static_cast<size_t>(config_.denylist_limit));
}

CuckooGraph::~CuckooGraph() {
  l_.ForEach([](const VertexEntry& e) {
    if (e.has_chain) delete e.chain;
  });
  for (const VertexEntry& e : l_denylist_) {
    if (e.has_chain) delete e.chain;
  }
}

// ---- Public interface ------------------------------------------------------

bool CuckooGraph::InsertEdge(NodeId u, NodeId v) {
  return Upsert(u, v, 1, /*accumulate=*/false).second;
}

bool CuckooGraph::QueryEdge(NodeId u, NodeId v) const {
  const VertexEntry* e = FindVertex(u);
  return e != nullptr && FindWeight(e, v) != nullptr;
}

bool CuckooGraph::DeleteEdge(NodeId u, NodeId v) {
  VertexEntry* e = FindVertex(u);
  if (e == nullptr) return false;
  if (!e->has_chain) {
    const uint32_t mask =
        internal::MatchKeyMask(e->inline_.v, e->degree, v);
    if (mask == 0) return false;
    const uint32_t i = static_cast<uint32_t>(__builtin_ctz(mask));
    e->inline_.v[i] = e->inline_.v[e->degree - 1];
    e->inline_.w[i] = e->inline_.w[e->degree - 1];
    --e->degree;
  } else {
    if (!ChainErase(e->chain, v)) return false;
    --e->degree;
  }
  --num_edges_;
  if (e->degree == 0) {
    RemoveVertex(u);
    if (config_.enable_reverse_transform) MaybeShrinkL();
    return true;
  }
  if (e->has_chain && config_.enable_reverse_transform) {
    MaybeReverseTransform(e);
  }
  return true;
}

// Streams one vertex's adjacency: the inline slots, or the chain's tables
// (occupied cells, head table first) followed by the chain's denylist.
class CuckooGraph::NeighborCursorImpl final : public NeighborCursor {
 public:
  explicit NeighborCursorImpl(const VertexEntry* e) : e_(e) {}

  size_t Next(NodeId* out, size_t capacity) override {
    size_t written = 0;
    if (!e_->has_chain) {
      while (written < capacity && inline_i_ < e_->degree) {
        out[written++] = e_->inline_.v[inline_i_++];
      }
      return written;
    }
    const internal::Chain& c = *e_->chain;
    while (written < capacity && table_i_ < c.tables.size()) {
      const auto& t = c.tables[table_i_];
      while (written < capacity && slot_ < t.num_cells()) {
        if (t.used(slot_)) out[written++] = t.cell(slot_).v;
        ++slot_;
      }
      if (slot_ == t.num_cells()) {
        ++table_i_;
        slot_ = 0;
      }
    }
    while (written < capacity && deny_i_ < c.denylist.size()) {
      out[written++] = c.denylist[deny_i_++].v;
    }
    return written;
  }

 private:
  const VertexEntry* e_;
  uint32_t inline_i_ = 0;
  size_t table_i_ = 0;
  size_t slot_ = 0;
  size_t deny_i_ = 0;
};

// Streams every vertex key: the L-CHT's occupied cells, then the L-CHT
// denylist.
class CuckooGraph::NodeCursorImpl final : public NeighborCursor {
 public:
  explicit NodeCursorImpl(const CuckooGraph* g) : g_(g) {}

  size_t Next(NodeId* out, size_t capacity) override {
    size_t written = 0;
    const auto& l = g_->l_;
    while (written < capacity && slot_ < l.num_cells()) {
      if (l.used(slot_)) out[written++] = l.cell(slot_).key;
      ++slot_;
    }
    while (written < capacity && deny_i_ < g_->l_denylist_.size()) {
      out[written++] = g_->l_denylist_[deny_i_++].key;
    }
    return written;
  }

 private:
  const CuckooGraph* g_;
  size_t slot_ = 0;
  size_t deny_i_ = 0;
};

std::unique_ptr<NeighborCursor> CuckooGraph::Neighbors(NodeId u) const {
  const VertexEntry* e = FindVertex(u);
  if (e == nullptr) return std::make_unique<EmptyNeighborCursor>();
  return std::make_unique<NeighborCursorImpl>(e);
}

std::unique_ptr<NeighborCursor> CuckooGraph::Nodes() const {
  return std::make_unique<NodeCursorImpl>(this);
}

size_t CuckooGraph::NumNodes() const {
  return l_.size() + l_denylist_.size();
}

size_t CuckooGraph::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  bytes += l_.MemoryBytes();
  bytes += l_denylist_.capacity() * sizeof(VertexEntry);
  const auto add_chain = [this, &bytes](const VertexEntry& e) {
    if (e.has_chain) bytes += ChainMemory(*e.chain);
  };
  l_.ForEach(add_chain);
  for (const VertexEntry& e : l_denylist_) add_chain(e);
  return bytes;
}

GraphStats CuckooGraph::stats() const {
  GraphStats st;
  st.l = l_stats_;
  st.s = s_stats_;
  st.num_chains = num_chains_;
  st.transformations = transformations_;
  st.reverse_transformations = reverse_transformations_;
  st.denylist_parks = denylist_parks_;
  return st;
}

size_t CuckooGraph::OutDegree(NodeId u) const {
  const VertexEntry* e = FindVertex(u);
  return e == nullptr ? 0 : e->degree;
}

std::vector<size_t> CuckooGraph::SChainLengths(NodeId u) const {
  std::vector<size_t> lengths;
  const VertexEntry* e = FindVertex(u);
  if (e == nullptr || !e->has_chain) return lengths;
  for (const auto& t : e->chain->tables) lengths.push_back(t.num_buckets());
  return lengths;
}

uint64_t CuckooGraph::AddEdgeWeight(NodeId u, NodeId v, uint32_t delta) {
  return Upsert(u, v, delta, /*accumulate=*/true).first;
}

uint64_t CuckooGraph::GetEdgeWeight(NodeId u, NodeId v) const {
  const VertexEntry* e = FindVertex(u);
  if (e == nullptr) return 0;
  const uint32_t* w = FindWeight(e, v);
  return w == nullptr ? 0 : *w;
}

// ---- Vertex lookup and the L-CHT -------------------------------------------

CuckooGraph::VertexEntry* CuckooGraph::FindVertex(NodeId u) {
  const size_t slot = l_.FindSlot(u, h1_, h2_);
  if (slot != internal::kNoSlot) return &l_.cell(slot);
  for (VertexEntry& e : l_denylist_) {
    if (e.key == u) return &e;
  }
  return nullptr;
}

const CuckooGraph::VertexEntry* CuckooGraph::FindVertex(NodeId u) const {
  return const_cast<CuckooGraph*>(this)->FindVertex(u);
}

uint32_t* CuckooGraph::FindWeight(VertexEntry* e, NodeId v) {
  return const_cast<uint32_t*>(
      static_cast<const CuckooGraph*>(this)->FindWeight(e, v));
}

const uint32_t* CuckooGraph::FindWeight(const VertexEntry* e,
                                        NodeId v) const {
  if (!e->has_chain) {
    const uint32_t mask =
        internal::MatchKeyMask(e->inline_.v, e->degree, v);
    if (mask == 0) return nullptr;
    return &e->inline_.w[__builtin_ctz(mask)];
  }
  for (const auto& t : e->chain->tables) {
    const size_t slot = t.FindSlot(v, h1_, h2_);
    if (slot != internal::kNoSlot) return &t.cell(slot).weight;
  }
  for (const Neighbor& n : e->chain->denylist) {
    if (n.v == v) return &n.weight;
  }
  return nullptr;
}

std::pair<uint64_t, bool> CuckooGraph::Upsert(NodeId u, NodeId v,
                                              uint32_t delta,
                                              bool accumulate) {
  VertexEntry* e = FindVertex(u);
  if (e != nullptr) {
    uint32_t* w = FindWeight(e, v);
    if (w != nullptr) {
      if (accumulate) *w += delta;
      return {*w, false};
    }
    AppendNeighbor(e, Neighbor{v, delta});
    ++e->degree;
    ++num_edges_;
    return {delta, true};
  }
  VertexEntry entry;
  entry.key = u;
  entry.degree = 1;
  if (config_.enable_inline_slots) {
    entry.inline_.v[0] = v;
    entry.inline_.w[0] = delta;
  } else {
    entry.has_chain = true;
    entry.chain = NewChain();
    ChainInsert(entry.chain, Neighbor{v, delta});
  }
  ++num_edges_;
  PlaceVertex(entry);
  if (static_cast<double>(l_.size() + l_denylist_.size()) >
      config_.expand_threshold * static_cast<double>(l_.num_cells())) {
    ++l_stats_.expansions;
    RebuildL(l_.num_buckets() * 2);
  }
  return {delta, true};
}

void CuckooGraph::AppendNeighbor(VertexEntry* e, Neighbor n) {
  if (!e->has_chain) {
    if (e->degree < static_cast<uint32_t>(kInlineSlots)) {
      e->inline_.v[e->degree] = n.v;
      e->inline_.w[e->degree] = n.weight;
      return;
    }
    TransformToChain(e);
  }
  ChainInsert(e->chain, n);
}

void CuckooGraph::PlaceVertex(VertexEntry entry) {
  ++l_stats_.insert_attempts;
  while (true) {
    if (l_.Place(&entry, h1_, h2_, config_.max_kicks, &rng_,
                 &l_stats_.kicks)) {
      return;
    }
    if (config_.enable_deny_list &&
        l_denylist_.size() < static_cast<size_t>(config_.denylist_limit)) {
      l_denylist_.push_back(entry);
      reader_l_deny_count_.store(
          static_cast<uint32_t>(l_denylist_.size()),
          std::memory_order_release);
      ++denylist_parks_;
      return;
    }
    ++l_stats_.expansions;
    RebuildL(l_.num_buckets() * 2);
  }
}

void CuckooGraph::RebuildL(size_t new_buckets) {
  new_buckets = std::max(new_buckets, config_.l_initial_buckets);
  std::vector<VertexEntry> items;
  items.reserve(l_.size() + l_denylist_.size());
  l_.ForEach([&items](const VertexEntry& e) { items.push_back(e); });
  for (const VertexEntry& e : l_denylist_) items.push_back(e);
  while (true) {
    internal::CuckooTable<VertexEntry> fresh(new_buckets,
                                             config_.cells_per_bucket);
    std::vector<VertexEntry> deny;
    bool ok = true;
    for (const VertexEntry& orig : items) {
      VertexEntry moved = orig;
      if (fresh.Place(&moved, h1_, h2_, config_.max_kicks, &rng_,
                      &l_stats_.kicks)) {
        continue;
      }
      if (config_.enable_deny_list &&
          deny.size() < static_cast<size_t>(config_.denylist_limit)) {
        deny.push_back(moved);
      } else {
        ok = false;
        break;
      }
    }
    if (ok) {
      // Commit: swap the bucket block in (retiring the old one for any
      // in-flight optimistic reader) and refresh the denylist in place —
      // assign() stays within the reserved capacity, so data() never
      // moves under a reader.
      l_.AdoptFrom(std::move(fresh), reclaimer_);
      l_denylist_.assign(deny.begin(), deny.end());
      reader_l_deny_count_.store(
          static_cast<uint32_t>(l_denylist_.size()),
          std::memory_order_release);
      l_stats_.rehash_moves += items.size();
      return;
    }
    new_buckets *= 2;
  }
}

void CuckooGraph::MaybeShrinkL() {
  if (l_.num_buckets() <= config_.l_initial_buckets) return;
  const size_t stored = l_.size() + l_denylist_.size();
  if (stored * 4 < l_.num_cells()) RebuildL(l_.num_buckets() / 2);
}

void CuckooGraph::RemoveVertex(NodeId u) {
  const size_t slot = l_.FindSlot(u, h1_, h2_);
  if (slot != internal::kNoSlot) {
    VertexEntry& e = l_.cell(slot);
    if (e.has_chain) FreeChain(e.chain);
    l_.Erase(slot);
    return;
  }
  for (size_t i = 0; i < l_denylist_.size(); ++i) {
    if (l_denylist_[i].key == u) {
      if (l_denylist_[i].has_chain) FreeChain(l_denylist_[i].chain);
      l_denylist_[i] = l_denylist_.back();
      l_denylist_.pop_back();
      reader_l_deny_count_.store(
          static_cast<uint32_t>(l_denylist_.size()),
          std::memory_order_release);
      return;
    }
  }
}

// ---- S-CHT chains ----------------------------------------------------------

internal::Chain* CuckooGraph::NewChain() {
  auto* c = new internal::Chain();
  c->tables.emplace_back(config_.s_initial_buckets,
                         config_.cells_per_bucket);
  c->denylist.reserve(static_cast<size_t>(config_.denylist_limit));
  PublishChainMirror(c);
  ++num_chains_;
  return c;
}

// A freed chain may still be probed by an optimistic reader that copied
// the owning vertex entry before the writer detached it, so the whole
// Chain (tables, blocks, denylist) rides the limbo list when a reclaimer
// is wired up.
void CuckooGraph::FreeChain(internal::Chain* c) {
  --num_chains_;
  if (reclaimer_ != nullptr) {
    reclaimer_->Retire([c] { delete c; });
  } else {
    delete c;
  }
}

void CuckooGraph::TransformToChain(VertexEntry* e) {
  Neighbor moved[kInlineSlots];
  const uint32_t count = e->degree;
  for (uint32_t i = 0; i < count; ++i) {
    moved[i] = Neighbor{e->inline_.v[i], e->inline_.w[i]};
  }
  e->chain = NewChain();
  e->has_chain = true;
  ++transformations_;
  // The in-memory structure is at its most fragile right here: the entry
  // already points at a chain that holds none of the moved neighbors. A
  // crash now must still recover cleanly from WAL + snapshot alone.
  CrashPoint("core:mid_transformation");
  for (uint32_t i = 0; i < count; ++i) {
    ChainInsert(e->chain, moved[i]);
  }
}

void CuckooGraph::ChainInsert(internal::Chain* c, Neighbor n) {
  ++s_stats_.insert_attempts;
  // Load-driven growth: keep the occupancy below G ahead of placement.
  while (static_cast<double>(c->size + 1) >
         config_.expand_threshold * static_cast<double>(ChainCells(*c))) {
    GrowChain(c);
  }
  while (true) {
    // Newest table first: older tables run near capacity by design, the
    // freshly appended one has the headroom.
    for (auto it = c->tables.rbegin(); it != c->tables.rend(); ++it) {
      if (it->Place(&n, h1_, h2_, config_.max_kicks, &rng_,
                    &s_stats_.kicks)) {
        ++c->size;
        return;
      }
    }
    if (config_.enable_deny_list &&
        c->denylist.size() < static_cast<size_t>(config_.denylist_limit)) {
      c->denylist.push_back(n);
      c->reader_deny_count.store(
          static_cast<uint32_t>(c->denylist.size()),
          std::memory_order_release);
      ++c->size;
      ++denylist_parks_;
      return;
    }
    GrowChain(c);
  }
}

bool CuckooGraph::ChainErase(internal::Chain* c, NodeId v) {
  for (auto& t : c->tables) {
    const size_t slot = t.FindSlot(v, h1_, h2_);
    if (slot != internal::kNoSlot) {
      t.Erase(slot);
      --c->size;
      return true;
    }
  }
  for (size_t i = 0; i < c->denylist.size(); ++i) {
    if (c->denylist[i].v == v) {
      c->denylist[i] = c->denylist.back();
      c->denylist.pop_back();
      c->reader_deny_count.store(
          static_cast<uint32_t>(c->denylist.size()),
          std::memory_order_release);
      --c->size;
      return true;
    }
  }
  return false;
}

void CuckooGraph::GrowChain(internal::Chain* c) {
  if (c->tables.size() <
      static_cast<size_t>(config_.max_chain_tables)) {
    // Table II append step: a new table of half the head's length.
    const size_t half =
        std::max<size_t>(1, c->tables.front().num_buckets() / 2);
    c->tables.emplace_back(half, config_.cells_per_bucket);
    PublishChainMirror(c);
    ++s_stats_.expansions;
    return;
  }
  // Table II merge step: double the head, everything re-places into the
  // new head, and a fresh empty half-size second table is created
  // (unless R = 1 caps the chain at a single table).
  ++s_stats_.merges;
  RebuildChain(c, c->tables.front().num_buckets() * 2,
               /*with_second=*/config_.max_chain_tables >= 2);
}

void CuckooGraph::RebuildChain(internal::Chain* c, size_t head_buckets,
                               bool with_second) {
  head_buckets = std::max<size_t>(1, head_buckets);
  std::vector<Neighbor> items;
  items.reserve(c->size);
  for (const auto& t : c->tables) {
    t.ForEach([&items](const Neighbor& n) { items.push_back(n); });
  }
  for (const Neighbor& n : c->denylist) items.push_back(n);
  while (true) {
    std::vector<internal::CuckooTable<Neighbor>> tables;
    tables.emplace_back(head_buckets, config_.cells_per_bucket);
    if (with_second) {
      tables.emplace_back(std::max<size_t>(1, head_buckets / 2),
                          config_.cells_per_bucket);
    }
    std::vector<Neighbor> deny;
    bool ok = true;
    for (const Neighbor& orig : items) {
      Neighbor moved = orig;
      bool placed = false;
      for (auto& t : tables) {
        if (t.Place(&moved, h1_, h2_, config_.max_kicks, &rng_,
                    &s_stats_.kicks)) {
          placed = true;
          break;
        }
      }
      if (placed) continue;
      if (config_.enable_deny_list &&
          deny.size() < static_cast<size_t>(config_.denylist_limit)) {
        deny.push_back(moved);
      } else {
        ok = false;
        break;
      }
    }
    if (ok) {
      // Commit. Retire each old table's storage first so its block rides
      // the limbo list (the mirror may still point at it until the
      // refresh below); the vector replacement itself is then safe
      // because readers only ever go through the mirror. The denylist is
      // refreshed in place to keep data() stable.
      for (auto& t : c->tables) t.RetireStorage(reclaimer_);
      c->tables = std::move(tables);
      c->denylist.assign(deny.begin(), deny.end());
      c->reader_deny_count.store(
          static_cast<uint32_t>(c->denylist.size()),
          std::memory_order_release);
      PublishChainMirror(c);
      s_stats_.rehash_moves += items.size();
      return;
    }
    head_buckets *= 2;
  }
}

void CuckooGraph::MaybeReverseTransform(VertexEntry* e) {
  internal::Chain* c = e->chain;
  if (config_.enable_inline_slots &&
      e->degree <= static_cast<uint32_t>(kInlineSlots)) {
    Neighbor moved[kInlineSlots];
    uint32_t count = 0;
    for (const auto& t : c->tables) {
      t.ForEach([&moved, &count](const Neighbor& n) { moved[count++] = n; });
    }
    for (const Neighbor& n : c->denylist) moved[count++] = n;
    FreeChain(c);
    e->has_chain = false;
    for (uint32_t i = 0; i < count; ++i) {
      e->inline_.v[i] = moved[i].v;
      e->inline_.w[i] = moved[i].weight;
    }
    ++reverse_transformations_;
    return;
  }
  const size_t head = c->tables.front().num_buckets();
  if (head > config_.s_initial_buckets &&
      static_cast<size_t>(e->degree) * 4 < ChainCells(*c)) {
    RebuildChain(c, std::max(config_.s_initial_buckets, head / 2),
                 /*with_second=*/false);
    ++reverse_transformations_;
  }
}

size_t CuckooGraph::ChainCells(const internal::Chain& c) const {
  size_t cells = 0;
  for (const auto& t : c.tables) cells += t.num_cells();
  return cells;
}

size_t CuckooGraph::ChainMemory(const internal::Chain& c) const {
  size_t bytes = sizeof(internal::Chain);
  bytes += c.tables.capacity() *
           sizeof(internal::CuckooTable<Neighbor>);
  for (const auto& t : c.tables) bytes += t.MemoryBytes();
  bytes += c.denylist.capacity() * sizeof(Neighbor);
  return bytes;
}

// ---- Optimistic (lock-free) read path --------------------------------------
//
// Everything below runs WITHOUT the owning shard's lock, racing the
// serialized writer. The discipline, in order:
//   1. probe crash-safely (fixed bounds from pinned Blocks / the atomic
//      mirror; no pointer copied out of racing storage is dereferenced),
//   2. validate the shard's sequence word (SeqValidator) — a pass proves
//      no writer ran since the snapshot, so copied data is committed,
//   3. only then trust the copy; re-validate after any further probing
//      through pointers the copy contained (kept alive by the caller's
//      epoch pin even if a writer starts after step 2).
// The functions are excluded from TSan instrumentation because the
// benign read-then-discard race on cell contents is the entire point;
// see common/thread_annotations.h.

void CuckooGraph::PublishChainMirror(internal::Chain* c) {
  const size_t n = c->tables.size();
  if (n > internal::Chain::kMirrorTables) {
    c->reader_num_tables.store(internal::Chain::kMirrorOverflow,
                               std::memory_order_release);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    c->reader_tables[i].store(c->tables[i].reader_block(),
                              std::memory_order_release);
  }
  c->reader_num_tables.store(static_cast<uint32_t>(n),
                             std::memory_order_release);
}

CUCKOOGRAPH_NO_SANITIZE_THREAD
bool CuckooGraph::OptimisticFindVertex(NodeId u, VertexEntry* out) const {
  const auto* block = l_.reader_block();
  if (block == nullptr) return false;
  const size_t slot =
      internal::CuckooTable<VertexEntry>::FindSlotIn(*block, u, h1_, h2_);
  if (slot != internal::kNoSlot) {
    *out = block->cells[slot];
    return true;
  }
  // The denylist scan is bounded by the published count, never the
  // vector's own (unsynchronized) size; both stay within the capacity
  // reserved at construction.
  const uint32_t count =
      std::min(reader_l_deny_count_.load(std::memory_order_acquire),
               static_cast<uint32_t>(config_.denylist_limit));
  const VertexEntry* deny = l_denylist_.data();
  for (uint32_t i = 0; i < count; ++i) {
    if (deny[i].key == u) {
      *out = deny[i];
      return true;
    }
  }
  return false;
}

CUCKOOGRAPH_NO_SANITIZE_THREAD
bool CuckooGraph::OptimisticChainFind(const internal::Chain* c, NodeId v,
                                      bool* found,
                                      uint32_t* weight) const {
  const uint32_t n = c->reader_num_tables.load(std::memory_order_acquire);
  if (n > internal::Chain::kMirrorTables) return false;  // mirror overflow
  for (uint32_t i = 0; i < n; ++i) {
    const auto* block =
        c->reader_tables[i].load(std::memory_order_acquire);
    if (block == nullptr) return false;
    const size_t slot =
        internal::CuckooTable<Neighbor>::FindSlotIn(*block, v, h1_, h2_);
    if (slot != internal::kNoSlot) {
      *found = true;
      *weight = block->cells[slot].weight;
      return true;
    }
  }
  const uint32_t count =
      std::min(c->reader_deny_count.load(std::memory_order_acquire),
               static_cast<uint32_t>(config_.denylist_limit));
  const Neighbor* deny = c->denylist.data();
  for (uint32_t i = 0; i < count; ++i) {
    if (deny[i].v == v) {
      *found = true;
      *weight = deny[i].weight;
      return true;
    }
  }
  *found = false;
  return true;
}

CUCKOOGRAPH_NO_SANITIZE_THREAD
bool CuckooGraph::TryQueryEdge(NodeId u, NodeId v,
                               const internal::SeqValidator& sv,
                               bool* present) const {
  VertexEntry entry;
  const bool vertex_found = OptimisticFindVertex(u, &entry);
  // Validate BEFORE trusting the copy: a pass proves `entry` (including
  // its degree and, crucially, its chain pointer) is committed state.
  if (!sv.Valid()) return false;
  if (!vertex_found) {
    *present = false;  // validated miss: the vertex really was absent
    return true;
  }
  if (!entry.has_chain) {
    // The inline slots travelled inside the validated copy; this probe
    // touches only local memory.
    *present =
        internal::MatchKeyMask(entry.inline_.v, entry.degree, v) != 0;
    return true;
  }
  // entry.chain is a committed pointer and the epoch pin keeps the chain
  // alive, but its *contents* may be mutated after validation — so the
  // chain probe's outcome needs a second validation.
  bool found = false;
  uint32_t weight = 0;
  if (!OptimisticChainFind(entry.chain, v, &found, &weight)) return false;
  if (!sv.Valid()) return false;
  *present = found;
  return true;
}

CUCKOOGRAPH_NO_SANITIZE_THREAD
bool CuckooGraph::TryOutDegree(NodeId u, const internal::SeqValidator& sv,
                               size_t* degree) const {
  VertexEntry entry;
  const bool vertex_found = OptimisticFindVertex(u, &entry);
  if (!sv.Valid()) return false;
  *degree = vertex_found ? entry.degree : 0;
  return true;
}

}  // namespace cuckoograph
