#include "core/graph_store.h"

namespace cuckoograph {

size_t GraphStore::InsertEdges(Span<const Edge> edges) {
  size_t fresh = 0;
  for (const Edge& e : edges) fresh += InsertEdge(e.u, e.v);
  return fresh;
}

size_t GraphStore::QueryEdges(Span<const Edge> edges) const {
  size_t hits = 0;
  for (const Edge& e : edges) hits += QueryEdge(e.u, e.v);
  return hits;
}

size_t GraphStore::DeleteEdges(Span<const Edge> edges) {
  size_t removed = 0;
  for (const Edge& e : edges) removed += DeleteEdge(e.u, e.v);
  return removed;
}

}  // namespace cuckoograph
