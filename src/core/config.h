// Tuning knobs of the CuckooGraph structure (Section V-B of the paper) and
// the ablation switches used by the Figure 5 / DESIGN.md benches.
#ifndef CUCKOOGRAPH_CORE_CONFIG_H_
#define CUCKOOGRAPH_CORE_CONFIG_H_

#include <cstddef>

namespace cuckoograph {

// When the durability wrapper (persist/durable_store.h) acknowledges a
// mutation relative to the WAL fdatasync covering it.
enum class WalSyncMode {
  // Every append syncs inline before returning: no acknowledged write is
  // ever lost, every op pays a device flush (~120us on this class of
  // hardware).
  kAlways,
  // Group commit: a dedicated thread coalesces every append that arrived
  // while the previous fdatasync ran into one covering sync, and the
  // append returns once that sync lands. Same no-acked-loss guarantee as
  // kAlways; concurrent writers share the flush cost.
  kGroup,
  // Appends return after the buffered write; syncs happen only at
  // checkpoints and clean close. A crash can lose the unsynced tail —
  // recovery still comes back prefix-consistent, just to an older
  // prefix. The Redis appendfsync-no analogue.
  kNone,
};

struct Config {
  // Initial bucket count of the top-level L-CHT. 1 grows the table from
  // its minimum length (the Theorem 1/2 setting); larger values skip the
  // early doublings.
  size_t l_initial_buckets = 16;

  // Initial bucket count of a per-vertex S-CHT chain's first table ("n" in
  // Table II).
  size_t s_initial_buckets = 2;

  // Cells per bucket ("d", Figure 2). Each bucket holds d entries; both
  // candidate buckets are scanned before any kick-out.
  int cells_per_bucket = 8;

  // Maximum kick-out loop length per table ("T", Figure 4). An insertion
  // that exhausts T evictions goes to the denylist (or forces growth).
  int max_kicks = 250;

  // Loading-rate threshold ("G", Figure 3). A table set grows once its
  // occupancy would exceed G of its cells.
  double expand_threshold = 0.9;

  // Maximum number of tables in an S-CHT chain ("R", Table II). Once a
  // chain holds R tables, the next growth merges and doubles instead of
  // appending.
  int max_chain_tables = 3;

  // Denylist capacity per table set. Beyond this, growth is forced.
  int denylist_limit = 8;

  // Ablation: store up to 2R neighbours inline in the vertex cell before
  // TRANSFORMATION allocates an S-CHT chain (DESIGN.md Part 2).
  bool enable_inline_slots = true;

  // Ablation: shrink chains (and collapse them back to inline slots) as
  // deletions reduce a vertex's degree.
  bool enable_reverse_transform = true;

  // Ablation (Figure 5): park kick-out failures in a denylist instead of
  // growing the affected table immediately.
  bool enable_deny_list = true;

  // Lock-free reads in the concurrent front-end (ShardedCuckooGraph):
  // queries first attempt a seqlock-validated probe without taking the
  // shard lock, falling back to the shared-lock path after a bounded
  // number of validation failures (or when every epoch slot is busy).
  // Ignored by the single-threaded CuckooGraph itself. Disable to force
  // every read through the stripe lock — useful to isolate the
  // optimistic path in benchmarks (docs/PERFORMANCE.md) or to debug.
  bool optimistic_reads = true;

  // Shard count of the concurrent front-end (ShardedCuckooGraph): the
  // structure is partitioned by source-vertex hash into this many
  // independent CuckooGraph shards behind per-shard locks. Ignored by the
  // single-threaded CuckooGraph itself. The benches' --shards flag feeds
  // this; docs/PERFORMANCE.md covers selection (2-4x the writer thread
  // count is a good default).
  size_t num_shards = 16;

  // Durability wrapper (persist/durable_store.h) knobs; ignored by the
  // in-memory stores themselves. The sync mode trades acknowledged-write
  // loss against flush cost (see WalSyncMode above).
  WalSyncMode wal_sync_mode = WalSyncMode::kGroup;

  // Checkpoint cadence: after this many WAL records the wrapper dumps a
  // snapshot and truncates the log, bounding replay work at recovery.
  // 0 disables automatic checkpoints (explicit Checkpoint() still works).
  size_t wal_checkpoint_records = 65536;
};

}  // namespace cuckoograph

#endif  // CUCKOOGRAPH_CORE_CONFIG_H_
