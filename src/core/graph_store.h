// The abstract dynamic-graph-store interface every scheme implements:
// CuckooGraph itself, and the baseline stores the comparison benches load
// through the store factory.
#ifndef CUCKOOGRAPH_CORE_GRAPH_STORE_H_
#define CUCKOOGRAPH_CORE_GRAPH_STORE_H_

#include <cstddef>
#include <functional>
#include <string_view>

#include "common/types.h"

namespace cuckoograph {

class GraphStore {
 public:
  virtual ~GraphStore() = default;

  // Display name of the scheme (stable, used as bench column header).
  virtual std::string_view name() const = 0;

  // Inserts directed edge <u, v>. Returns true if the edge is new, false
  // if it was already present (duplicate arrivals are idempotent).
  virtual bool InsertEdge(NodeId u, NodeId v) = 0;

  // Returns true iff directed edge <u, v> is present.
  virtual bool QueryEdge(NodeId u, NodeId v) const = 0;

  // Deletes directed edge <u, v>. Returns true iff it was present.
  virtual bool DeleteEdge(NodeId u, NodeId v) = 0;

  // Invokes `fn` once per successor of `u`, in unspecified order.
  virtual void ForEachNeighbor(
      NodeId u, const std::function<void(NodeId)>& fn) const = 0;

  // Number of distinct directed edges currently stored.
  virtual size_t NumEdges() const = 0;

  // Number of vertices currently holding at least one out-edge.
  virtual size_t NumNodes() const = 0;

  // Resident memory footprint of the store, in bytes.
  virtual size_t MemoryBytes() const = 0;
};

}  // namespace cuckoograph

#endif  // CUCKOOGRAPH_CORE_GRAPH_STORE_H_
