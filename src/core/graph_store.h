// The abstract dynamic-graph-store interface (v2) every scheme implements:
// CuckooGraph itself, and the baseline stores the comparison benches load
// through the store factory (src/baselines/store_factory.h).
//
// v2 replaces the v1 `std::function`-based ForEachNeighbor virtual with a
// block cursor: one virtual NeighborCursor::Next() call yields up to a
// buffer's worth of neighbor ids, so hot scan loops pay one dispatch per
// block instead of one type-erased call per edge. ForEachNeighbor survives
// as a non-virtual template wrapper over the cursor. v2 also adds batch
// entry points (InsertEdges/QueryEdges/DeleteEdges) with loop defaults that
// schemes may override to amortize per-call overhead, and a Capabilities()
// traits struct the benches consult to skip unsupported cells.
#ifndef CUCKOOGRAPH_CORE_GRAPH_STORE_H_
#define CUCKOOGRAPH_CORE_GRAPH_STORE_H_

#include <cstddef>
#include <memory>
#include <string_view>
#include <utility>

#include "common/span.h"
#include "common/types.h"

namespace cuckoograph {

// A pull-based block iterator over a stream of node ids (a vertex's
// successors, or the store's vertex set). Every cursor is invalidated by
// any mutation of the store, whatever the scheme; Capabilities()'s
// stable_iteration only promises a deterministic (sorted) order.
class NeighborCursor {
 public:
  // Natural block size for drain loops; implementations may return fewer
  // ids per call, and callers may pass any capacity >= 1.
  static constexpr size_t kBlockSize = 64;

  virtual ~NeighborCursor() = default;

  // Fills `out` with up to `capacity` ids and returns how many were
  // written. Returns 0 exactly when the stream is exhausted, and keeps
  // returning 0 on every call after that (drain loops may probe again).
  virtual size_t Next(NodeId* out, size_t capacity) = 0;

  // Drains the remaining stream, returning how many ids were left.
  size_t Count() {
    NodeId block[kBlockSize];
    size_t total = 0, n;
    while ((n = Next(block, kBlockSize)) > 0) total += n;
    return total;
  }
};

// What a scheme supports. Benches consult this to skip cells a scheme
// cannot run instead of crashing or reporting garbage.
struct StoreCapabilities {
  // Duplicate arrivals accumulate as edge weight (the extended store), and
  // EdgeWeight() reports the accumulated multiplicity. Snapshot builders
  // (analytics/csr_snapshot.h) consult this before pulling weights.
  bool weighted = false;
  // DeleteEdge / DeleteEdges are implemented.
  bool deletions = true;
  // Neighbor iteration yields ascending NodeId order (deterministic
  // across runs and insertion orders).
  bool stable_iteration = false;
  // Edge ops (Insert/Query/Delete/EdgeWeight/OutDegree, scalar and batch)
  // may be called from multiple threads without external locking. Cursors
  // are excluded: Neighbors()/Nodes() still require the store to be
  // quiesced for as long as the cursor is drained, whatever the scheme.
  bool concurrent_mutations = false;
  // Mutations survive a process crash: the store logs them to a WAL
  // before applying and recovers snapshot + log on reopen (the
  // persist/durable_store.h wrapper). Benches consult this to report
  // ingest overhead rows only for schemes that actually pay it.
  bool durable = false;
};

class GraphStore {
 public:
  virtual ~GraphStore() = default;

  // Display name of the scheme (stable, used as bench column header).
  virtual std::string_view name() const = 0;

  // Traits of this scheme; the default claims the baseline contract
  // (unweighted, deletions supported, unstable iteration).
  virtual StoreCapabilities Capabilities() const {
    return StoreCapabilities{};
  }

  // Inserts directed edge <u, v>. Returns true if the edge is new, false
  // if it was already present (duplicate arrivals are idempotent).
  virtual bool InsertEdge(NodeId u, NodeId v) = 0;

  // Returns true iff directed edge <u, v> is present.
  virtual bool QueryEdge(NodeId u, NodeId v) const = 0;

  // Deletes directed edge <u, v>. Returns true iff it was present.
  virtual bool DeleteEdge(NodeId u, NodeId v) = 0;

  // Weight of <u, v>: 0 when absent, 1 when present. Schemes advertising
  // Capabilities().weighted override this with the accumulated arrival
  // multiplicity so snapshot extraction can pull real weights.
  virtual uint64_t EdgeWeight(NodeId u, NodeId v) const {
    return QueryEdge(u, v) ? 1 : 0;
  }

  // ---- Batch operations ----------------------------------------------------
  // Defaults loop over the per-edge virtuals; schemes override them when a
  // batch can be served cheaper than edge-at-a-time (e.g. the sorted-vector
  // baseline merges a sorted batch in one pass per vertex).

  // Inserts every edge of `edges`; returns how many were new.
  virtual size_t InsertEdges(Span<const Edge> edges);

  // Queries every edge of `edges`; returns how many are present.
  virtual size_t QueryEdges(Span<const Edge> edges) const;

  // Deletes every edge of `edges`; returns how many were present.
  virtual size_t DeleteEdges(Span<const Edge> edges);

  // ---- Iteration -----------------------------------------------------------

  // Cursor over the successors of `u` (empty stream if `u` is absent), in
  // unspecified order unless Capabilities().stable_iteration.
  virtual std::unique_ptr<NeighborCursor> Neighbors(NodeId u) const = 0;

  // Cursor over every vertex currently holding at least one out-edge.
  virtual std::unique_ptr<NeighborCursor> Nodes() const = 0;

  // Out-degree of `u` (0 if absent). The default drains Neighbors(u);
  // schemes with a degree field override it with O(1).
  virtual size_t OutDegree(NodeId u) const { return Neighbors(u)->Count(); }

  // Invokes `fn` once per successor of `u`. Non-virtual convenience over
  // Neighbors(): with a concrete callable the per-edge call inlines, and
  // dispatch costs one virtual call per kBlockSize edges.
  template <typename Fn>
  void ForEachNeighbor(NodeId u, Fn&& fn) const {
    DrainCursor(Neighbors(u), std::forward<Fn>(fn));
  }

  // Invokes `fn` once per vertex with at least one out-edge.
  template <typename Fn>
  void ForEachNode(Fn&& fn) const {
    DrainCursor(Nodes(), std::forward<Fn>(fn));
  }

  // ---- Accounting ----------------------------------------------------------

  // Number of distinct directed edges currently stored.
  virtual size_t NumEdges() const = 0;

  // Number of vertices currently holding at least one out-edge.
  virtual size_t NumNodes() const = 0;

  // Resident memory footprint of the store, in bytes.
  virtual size_t MemoryBytes() const = 0;

 private:
  template <typename Fn>
  static void DrainCursor(std::unique_ptr<NeighborCursor> cursor, Fn&& fn) {
    NodeId block[NeighborCursor::kBlockSize];
    size_t n;
    while ((n = cursor->Next(block, NeighborCursor::kBlockSize)) > 0) {
      for (size_t i = 0; i < n; ++i) fn(block[i]);
    }
  }
};

// An always-empty cursor, for absent vertices.
class EmptyNeighborCursor final : public NeighborCursor {
 public:
  size_t Next(NodeId*, size_t) override { return 0; }
};

}  // namespace cuckoograph

#endif  // CUCKOOGRAPH_CORE_GRAPH_STORE_H_
