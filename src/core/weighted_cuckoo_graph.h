// The extended (weighted) CuckooGraph of Section V-A: duplicate arrivals
// accumulate as edge weight instead of being dropped, which is what the
// duplicate-heavy streams (CAIDA, StackOverflow, WikiTalk) need.
#ifndef CUCKOOGRAPH_CORE_WEIGHTED_CUCKOO_GRAPH_H_
#define CUCKOOGRAPH_CORE_WEIGHTED_CUCKOO_GRAPH_H_

#include <cstdint>
#include <string_view>

#include "common/types.h"
#include "core/config.h"
#include "core/cuckoo_graph.h"

namespace cuckoograph {

class WeightedCuckooGraph : public CuckooGraph {
 public:
  WeightedCuckooGraph();
  explicit WeightedCuckooGraph(const Config& config);

  // Factory scheme key and bench column header (the paper columns keep
  // their CamelCase names; the extended store is the odd one out so the
  // --schemes flag reads naturally).
  std::string_view name() const override { return "cuckoo-weighted"; }
  StoreCapabilities Capabilities() const override {
    StoreCapabilities caps = CuckooGraph::Capabilities();
    caps.weighted = true;
    return caps;
  }

  // Every arrival accumulates: a duplicate InsertEdge still returns false
  // (the edge set is unchanged) but bumps the edge's weight, which is what
  // the duplicate-heavy streams feed through InsertEdges.
  bool InsertEdge(NodeId u, NodeId v) override { return AddEdge(u, v) == 1; }

  // Adds one arrival of <u, v>: inserts the edge with weight 1 if absent,
  // otherwise increments its weight. Returns the resulting weight.
  uint64_t AddEdge(NodeId u, NodeId v);

  // Accumulated weight of <u, v>, or 0 if the edge is absent.
  uint64_t QueryWeight(NodeId u, NodeId v) const;

  // The snapshot layer's weighted-query hook.
  uint64_t EdgeWeight(NodeId u, NodeId v) const override {
    return QueryWeight(u, v);
  }
};

}  // namespace cuckoograph

#endif  // CUCKOOGRAPH_CORE_WEIGHTED_CUCKOO_GRAPH_H_
