#include "core/sharded_cuckoo_graph.h"

#include <algorithm>
#include <utility>

#include "common/mutex.h"

namespace cuckoograph {

namespace {

// Cursor over an owned id list — Nodes() materializes its answer under
// the shard locks so the cursor never dangles into a shard.
class VectorCursor final : public NeighborCursor {
 public:
  explicit VectorCursor(std::vector<NodeId> ids) : ids_(std::move(ids)) {}

  size_t Next(NodeId* out, size_t capacity) override {
    size_t written = 0;
    while (written < capacity && pos_ < ids_.size()) {
      out[written++] = ids_[pos_++];
    }
    return written;
  }

 private:
  std::vector<NodeId> ids_;
  size_t pos_ = 0;
};

void AddTableStats(TableStats* into, const TableStats& from) {
  into->insert_attempts += from.insert_attempts;
  into->kicks += from.kicks;
  into->rehash_moves += from.rehash_moves;
  into->merges += from.merges;
  into->expansions += from.expansions;
}

}  // namespace

ShardedCuckooGraph::ShardedCuckooGraph(const Config& config)
    : optimistic_reads_(config.optimistic_reads) {
  const size_t count = std::max<size_t>(1, config.num_shards);
  shards_.reserve(count);
  for (size_t s = 0; s < count; ++s) {
    shards_.push_back(std::make_unique<Shard>(config));
  }
}

ShardedCuckooGraph::~ShardedCuckooGraph() = default;

// ---- Scalar edge ops: one shard, one lock ----------------------------------
// Mutations additionally bump the shard's seqlock word (BeginWrite /
// EndWrite) so in-flight optimistic readers notice them. Reads try the
// lock-free path first and fall back to the shared lock.

bool ShardedCuckooGraph::InsertEdge(NodeId u, NodeId v) {
  Shard& shard = *shards_[ShardIndex(u)];
  WriterMutexLock lock(&shard.mu);
  shard.BeginWrite();
  const bool fresh = shard.graph.InsertEdge(u, v);
  shard.EndWrite();
  return fresh;
}

bool ShardedCuckooGraph::QueryEdge(NodeId u, NodeId v) const {
  const Shard& shard = *shards_[ShardIndex(u)];
  if (optimistic_reads_) {
    bool present = false;
    if (TryOptimisticRead(shard, [&](const CuckooGraph& g,
                                     const internal::SeqValidator& sv) {
          return g.TryQueryEdge(u, v, sv, &present);
        })) {
      shard.optimistic_reads_served.fetch_add(1,
                                              std::memory_order_relaxed);
      return present;
    }
  }
  shard.locked_reads_served.fetch_add(1, std::memory_order_relaxed);
  ReaderMutexLock lock(&shard.mu);
  return shard.graph.QueryEdge(u, v);
}

bool ShardedCuckooGraph::DeleteEdge(NodeId u, NodeId v) {
  Shard& shard = *shards_[ShardIndex(u)];
  WriterMutexLock lock(&shard.mu);
  shard.BeginWrite();
  const bool removed = shard.graph.DeleteEdge(u, v);
  shard.EndWrite();
  return removed;
}

uint64_t ShardedCuckooGraph::EdgeWeight(NodeId u, NodeId v) const {
  // The per-shard CuckooGraph stores presence-weighted edges (weight 1
  // through this interface), so the optimistic probe can reuse the
  // presence result; the locked fallback resolves identically.
  const Shard& shard = *shards_[ShardIndex(u)];
  if (optimistic_reads_) {
    bool present = false;
    if (TryOptimisticRead(shard, [&](const CuckooGraph& g,
                                     const internal::SeqValidator& sv) {
          return g.TryQueryEdge(u, v, sv, &present);
        })) {
      shard.optimistic_reads_served.fetch_add(1,
                                              std::memory_order_relaxed);
      return present ? 1 : 0;
    }
  }
  shard.locked_reads_served.fetch_add(1, std::memory_order_relaxed);
  ReaderMutexLock lock(&shard.mu);
  return shard.graph.EdgeWeight(u, v);
}

size_t ShardedCuckooGraph::OutDegree(NodeId u) const {
  const Shard& shard = *shards_[ShardIndex(u)];
  if (optimistic_reads_) {
    size_t degree = 0;
    if (TryOptimisticRead(shard, [&](const CuckooGraph& g,
                                     const internal::SeqValidator& sv) {
          return g.TryOutDegree(u, sv, &degree);
        })) {
      shard.optimistic_reads_served.fetch_add(1,
                                              std::memory_order_relaxed);
      return degree;
    }
  }
  shard.locked_reads_served.fetch_add(1, std::memory_order_relaxed);
  ReaderMutexLock lock(&shard.mu);
  return shard.graph.OutDegree(u);
}

// ---- Batch ops: group by shard, one lock acquisition per shard -------------

template <typename Fn>
void ShardedCuckooGraph::GroupByShard(Span<const Edge> edges, Fn fn) const {
  // Counting sort by shard index, preserving each shard's arrival order.
  const size_t n = shards_.size();
  std::vector<size_t> offsets(n + 1, 0);
  for (const Edge& e : edges) ++offsets[ShardIndex(e.u) + 1];
  for (size_t s = 0; s < n; ++s) offsets[s + 1] += offsets[s];
  std::vector<Edge> grouped(edges.size());
  std::vector<size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : edges) grouped[cursor[ShardIndex(e.u)]++] = e;
  for (size_t s = 0; s < n; ++s) {
    if (offsets[s] == offsets[s + 1]) continue;
    fn(s, Span<const Edge>(grouped.data() + offsets[s],
                           offsets[s + 1] - offsets[s]));
  }
}

size_t ShardedCuckooGraph::InsertSlice(Shard& shard, Span<const Edge> part) {
  return shard.graph.InsertEdges(part);
}

size_t ShardedCuckooGraph::QuerySlice(const Shard& shard,
                                      Span<const Edge> part) {
  return shard.graph.QueryEdges(part);
}

size_t ShardedCuckooGraph::DeleteSlice(Shard& shard, Span<const Edge> part) {
  return shard.graph.DeleteEdges(part);
}

size_t ShardedCuckooGraph::InsertEdges(Span<const Edge> edges) {
  size_t fresh = 0;
  GroupByShard(edges, [this, &fresh](size_t s, Span<const Edge> part) {
    Shard& shard = *shards_[s];
    WriterMutexLock lock(&shard.mu);
    shard.BeginWrite();
    fresh += InsertSlice(shard, part);
    shard.EndWrite();
  });
  return fresh;
}

bool ShardedCuckooGraph::TryOptimisticQuerySlice(const Shard& shard,
                                                 Span<const Edge> part,
                                                 size_t* present) {
  internal::EpochGuard guard(&shard.epochs);
  if (!guard.pinned()) return false;
  size_t hits = 0;
  for (const Edge& e : part) {
    bool resolved = false;
    bool edge_present = false;
    for (int attempt = 0; attempt < kOptimisticRetries; ++attempt) {
      const uint64_t s1 = shard.seq.load(std::memory_order_acquire);
      if ((s1 & 1) != 0) continue;  // writer inside; retry
      const internal::SeqValidator sv{&shard.seq, s1};
      if (shard.graph.TryQueryEdge(e.u, e.v, sv, &edge_present)) {
        resolved = true;
        break;
      }
    }
    if (!resolved) return false;  // caller redoes the slice under lock
    if (edge_present) ++hits;
  }
  *present = hits;
  return true;
}

size_t ShardedCuckooGraph::QueryEdges(Span<const Edge> edges) const {
  size_t present = 0;
  GroupByShard(edges, [this, &present](size_t s, Span<const Edge> part) {
    const Shard& shard = *shards_[s];
    if (optimistic_reads_) {
      size_t slice_hits = 0;
      if (TryOptimisticQuerySlice(shard, part, &slice_hits)) {
        present += slice_hits;
        shard.optimistic_reads_served.fetch_add(
            part.size(), std::memory_order_relaxed);
        return;
      }
    }
    shard.locked_reads_served.fetch_add(part.size(),
                                        std::memory_order_relaxed);
    ReaderMutexLock lock(&shard.mu);
    present += QuerySlice(shard, part);
  });
  return present;
}

size_t ShardedCuckooGraph::DeleteEdges(Span<const Edge> edges) {
  size_t removed = 0;
  GroupByShard(edges, [this, &removed](size_t s, Span<const Edge> part) {
    Shard& shard = *shards_[s];
    WriterMutexLock lock(&shard.mu);
    shard.BeginWrite();
    removed += DeleteSlice(shard, part);
    shard.EndWrite();
  });
  return removed;
}

// ---- Iteration -------------------------------------------------------------

std::unique_ptr<NeighborCursor> ShardedCuckooGraph::Neighbors(
    NodeId u) const {
  const Shard& shard = *shards_[ShardIndex(u)];
  ReaderMutexLock lock(&shard.mu);
  return shard.graph.Neighbors(u);
}

std::unique_ptr<NeighborCursor> ShardedCuckooGraph::Nodes() const {
  std::vector<NodeId> ids;
  for (const auto& entry : shards_) {
    const Shard& shard = *entry;
    ReaderMutexLock lock(&shard.mu);
    shard.graph.ForEachNode([&ids](NodeId u) { ids.push_back(u); });
  }
  return std::make_unique<VectorCursor>(std::move(ids));
}

// ---- Accounting ------------------------------------------------------------

size_t ShardedCuckooGraph::NumEdges() const {
  size_t edges = 0;
  for (const auto& entry : shards_) {
    const Shard& shard = *entry;
    ReaderMutexLock lock(&shard.mu);
    edges += shard.graph.NumEdges();
  }
  return edges;
}

size_t ShardedCuckooGraph::NumNodes() const {
  // Shards partition by source vertex, so no vertex is counted twice.
  size_t nodes = 0;
  for (const auto& entry : shards_) {
    const Shard& shard = *entry;
    ReaderMutexLock lock(&shard.mu);
    nodes += shard.graph.NumNodes();
  }
  return nodes;
}

size_t ShardedCuckooGraph::MemoryBytes() const {
  size_t bytes = sizeof(*this) + shards_.capacity() * sizeof(shards_[0]);
  for (const auto& entry : shards_) {
    const Shard& shard = *entry;
    ReaderMutexLock lock(&shard.mu);
    bytes += sizeof(Shard) - sizeof(CuckooGraph) + shard.graph.MemoryBytes();
  }
  return bytes;
}

GraphStats ShardedCuckooGraph::stats() const {
  GraphStats total;
  for (const auto& entry : shards_) {
    const Shard& shard = *entry;
    ReaderMutexLock lock(&shard.mu);
    const GraphStats st = shard.graph.stats();
    AddTableStats(&total.l, st.l);
    AddTableStats(&total.s, st.s);
    total.num_chains += st.num_chains;
    total.transformations += st.transformations;
    total.reverse_transformations += st.reverse_transformations;
    total.denylist_parks += st.denylist_parks;
  }
  return total;
}

ShardedCuckooGraph::ReadPathStats ShardedCuckooGraph::read_path_stats()
    const {
  ReadPathStats total;
  for (const auto& entry : shards_) {
    total.optimistic += entry->optimistic_reads_served.load(
        std::memory_order_relaxed);
    total.locked +=
        entry->locked_reads_served.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace cuckoograph
