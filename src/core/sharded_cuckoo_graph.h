// ShardedCuckooGraph: the concurrent front-end over the core structure.
// The edge set is partitioned by a hash of the source vertex into
// Config::num_shards independent CuckooGraph shards, each guarded by its
// own reader-writer lock (striped locking: no global lock exists, threads
// touching different shards never contend). Every GraphStore v2 entry
// point is implemented; Capabilities().concurrent_mutations advertises
// that edge ops are thread-safe.
//
// Locking discipline (see docs/ARCHITECTURE.md):
//  - scalar edge ops lock exactly one shard (writers exclusively, readers
//    shared), keyed by the source vertex, and never hold two locks;
//  - batch ops group the span by shard first, then visit each shard once
//    under a single lock acquisition, so a batch pays lock traffic per
//    shard instead of per edge;
//  - whole-store accounting (NumEdges/NumNodes/MemoryBytes/stats) takes
//    the shard locks one at a time — each answer is exact only if no
//    writer runs concurrently, which is all a sum of moving counters can
//    promise;
//  - cursors follow the store-wide contract: any mutation invalidates
//    them, so Neighbors()/Nodes() require a quiesced store while drained.
//    Nodes() materializes its id list under the locks, Neighbors(u) leases
//    the shard's in-place cursor.
//
// The discipline is machine-checked: each shard's CuckooGraph is
// CUCKOOGRAPH_GUARDED_BY its stripe lock, so any access path that does
// not hold the lock (shared for reads, exclusive for writes) is a
// compile error under clang's -Wthread-safety (the static-analysis CI
// job builds with it as -Werror).
#ifndef CUCKOOGRAPH_CORE_SHARDED_CUCKOO_GRAPH_H_
#define CUCKOOGRAPH_CORE_SHARDED_CUCKOO_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/span.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "core/config.h"
#include "core/cuckoo_graph.h"
#include "core/graph_store.h"

namespace cuckoograph {

class ShardedCuckooGraph : public GraphStore {
 public:
  ShardedCuckooGraph() : ShardedCuckooGraph(Config()) {}
  // Every shard is a CuckooGraph built from `config` (num_shards itself is
  // clamped to at least 1).
  explicit ShardedCuckooGraph(const Config& config);
  ~ShardedCuckooGraph() override;

  ShardedCuckooGraph(const ShardedCuckooGraph&) = delete;
  ShardedCuckooGraph& operator=(const ShardedCuckooGraph&) = delete;

  std::string_view name() const override { return "cuckoo-sharded"; }
  StoreCapabilities Capabilities() const override {
    StoreCapabilities caps;
    caps.deletions = true;
    caps.concurrent_mutations = true;
    return caps;
  }

  bool InsertEdge(NodeId u, NodeId v) override;
  bool QueryEdge(NodeId u, NodeId v) const override;
  bool DeleteEdge(NodeId u, NodeId v) override;
  uint64_t EdgeWeight(NodeId u, NodeId v) const override;

  size_t InsertEdges(Span<const Edge> edges) override;
  size_t QueryEdges(Span<const Edge> edges) const override;
  size_t DeleteEdges(Span<const Edge> edges) override;

  std::unique_ptr<NeighborCursor> Neighbors(NodeId u) const override;
  std::unique_ptr<NeighborCursor> Nodes() const override;

  size_t OutDegree(NodeId u) const override;
  size_t NumEdges() const override;
  size_t NumNodes() const override;
  size_t MemoryBytes() const override;

  size_t num_shards() const { return shards_.size(); }

  // Which shard a source vertex routes to (tests and the scalability
  // bench use this to build shard-disjoint workloads).
  size_t ShardOf(NodeId u) const { return ShardIndex(u); }

  // Operation counters summed across shards.
  GraphStats stats() const;

 private:
  // A shard: one core structure plus its stripe lock, cache-line aligned
  // so neighbouring shards' lock words never share a line. The core
  // structure is not thread-safe on its own, so it is guarded as a whole
  // by the stripe lock.
  struct alignas(64) Shard {
    explicit Shard(const Config& config) : graph(config) {}
    mutable SharedMutex mu;
    CuckooGraph graph CUCKOOGRAPH_GUARDED_BY(mu);
  };

  // Per-shard slices of the batch ops: the caller owns the shard lock
  // (exclusively for mutations, shared for queries) and the analysis
  // verifies it at every call site.
  static size_t InsertSlice(Shard& shard, Span<const Edge> part)
      CUCKOOGRAPH_REQUIRES(shard.mu);
  static size_t QuerySlice(const Shard& shard, Span<const Edge> part)
      CUCKOOGRAPH_REQUIRES_SHARED(shard.mu);
  static size_t DeleteSlice(Shard& shard, Span<const Edge> part)
      CUCKOOGRAPH_REQUIRES(shard.mu);

  size_t ShardIndex(NodeId u) const {
    // Fibonacci multiply-shift so consecutive source ids spread across
    // shards instead of clustering; reduced modulo the shard count.
    const uint64_t mixed = static_cast<uint64_t>(u) * 0x9E3779B97F4A7C15ULL;
    return static_cast<size_t>(mixed >> 32) % shards_.size();
  }

  // Visits each shard's sub-span of `edges` (grouped by ShardIndex) once:
  // fn(shard, Span<const Edge>) under no lock — callers lock per shard.
  template <typename Fn>
  void GroupByShard(Span<const Edge> edges, Fn fn) const;

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace cuckoograph

#endif  // CUCKOOGRAPH_CORE_SHARDED_CUCKOO_GRAPH_H_
