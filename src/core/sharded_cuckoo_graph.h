// ShardedCuckooGraph: the concurrent front-end over the core structure.
// The edge set is partitioned by a hash of the source vertex into
// Config::num_shards independent CuckooGraph shards, each guarded by its
// own reader-writer lock (striped locking: no global lock exists, threads
// touching different shards never contend). Every GraphStore v2 entry
// point is implemented; Capabilities().concurrent_mutations advertises
// that edge ops are thread-safe.
//
// Locking discipline (see docs/ARCHITECTURE.md):
//  - scalar edge ops lock exactly one shard (writers exclusively, readers
//    shared), keyed by the source vertex, and never hold two locks;
//  - batch ops group the span by shard first, then visit each shard once
//    under a single lock acquisition, so a batch pays lock traffic per
//    shard instead of per edge;
//  - whole-store accounting (NumEdges/NumNodes/MemoryBytes/stats) takes
//    the shard locks one at a time — each answer is exact only if no
//    writer runs concurrently, which is all a sum of moving counters can
//    promise;
//  - cursors follow the store-wide contract: any mutation invalidates
//    them, so Neighbors()/Nodes() require a quiesced store while drained.
//    Nodes() materializes its id list under the locks, Neighbors(u) leases
//    the shard's in-place cursor.
//
// The discipline is machine-checked: each shard's CuckooGraph is
// CUCKOOGRAPH_GUARDED_BY its stripe lock, so any access path that does
// not hold the lock (shared for reads, exclusive for writes) is a
// compile error under clang's -Wthread-safety (the static-analysis CI
// job builds with it as -Werror).
//
// Optimistic reads (Config::optimistic_reads, default on): queries
// first attempt a lock-free probe under a per-shard seqlock. Writers
// bump the shard's sequence word around every mutation (odd = write in
// progress) while holding the stripe lock exclusively; a reader
// snapshots an even sequence, probes without the lock, and keeps the
// answer only if the sequence is unchanged afterwards — retrying a
// bounded number of times before falling back to the shared-lock path,
// so progress is always guaranteed. Memory reclamation is epoch-based:
// readers pin an epoch for the duration of a probe, and writers push
// replaced allocations (bucket blocks, retired chains) onto the shard's
// limbo list, drained only once no pinned reader could still reach
// them (src/core/internal/epoch.h). The two lock-free entry helpers are
// the only functions excluded from the thread-safety analysis; the
// protocol they implement is documented at their definitions and
// stress-tested under TSan (tests/optimistic_reads_test.cc).
#ifndef CUCKOOGRAPH_CORE_SHARDED_CUCKOO_GRAPH_H_
#define CUCKOOGRAPH_CORE_SHARDED_CUCKOO_GRAPH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/span.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "core/config.h"
#include "core/cuckoo_graph.h"
#include "core/graph_store.h"
#include "core/internal/epoch.h"

namespace cuckoograph {

class ShardedCuckooGraph : public GraphStore {
 public:
  ShardedCuckooGraph() : ShardedCuckooGraph(Config()) {}
  // Every shard is a CuckooGraph built from `config` (num_shards itself is
  // clamped to at least 1).
  explicit ShardedCuckooGraph(const Config& config);
  ~ShardedCuckooGraph() override;

  ShardedCuckooGraph(const ShardedCuckooGraph&) = delete;
  ShardedCuckooGraph& operator=(const ShardedCuckooGraph&) = delete;

  std::string_view name() const override { return "cuckoo-sharded"; }
  StoreCapabilities Capabilities() const override {
    StoreCapabilities caps;
    caps.deletions = true;
    caps.concurrent_mutations = true;
    return caps;
  }

  bool InsertEdge(NodeId u, NodeId v) override;
  bool QueryEdge(NodeId u, NodeId v) const override;
  bool DeleteEdge(NodeId u, NodeId v) override;
  uint64_t EdgeWeight(NodeId u, NodeId v) const override;

  size_t InsertEdges(Span<const Edge> edges) override;
  size_t QueryEdges(Span<const Edge> edges) const override;
  size_t DeleteEdges(Span<const Edge> edges) override;

  std::unique_ptr<NeighborCursor> Neighbors(NodeId u) const override;
  std::unique_ptr<NeighborCursor> Nodes() const override;

  size_t OutDegree(NodeId u) const override;
  size_t NumEdges() const override;
  size_t NumNodes() const override;
  size_t MemoryBytes() const override;

  size_t num_shards() const { return shards_.size(); }

  // Which shard a source vertex routes to (tests and the scalability
  // bench use this to build shard-disjoint workloads).
  size_t ShardOf(NodeId u) const { return ShardIndex(u); }

  // Operation counters summed across shards.
  GraphStats stats() const;

  // How reads were actually served (summed across shards; relaxed
  // counters, exact only on a quiesced store). Tests use this to prove
  // the lock-free path runs; the scalability bench reports the fallback
  // rate alongside throughput.
  struct ReadPathStats {
    uint64_t optimistic = 0;  // served by a validated lock-free probe
    uint64_t locked = 0;      // served under the stripe lock
  };
  ReadPathStats read_path_stats() const;

  // Whether this instance attempts lock-free reads (Config knob).
  bool optimistic_reads() const { return optimistic_reads_; }

 private:
  // A shard: one core structure plus its stripe lock, cache-line aligned
  // so neighbouring shards' lock words never share a line. The core
  // structure is not thread-safe on its own, so it is guarded as a whole
  // by the stripe lock; the seqlock word and the epoch machinery bolt
  // the optimistic read path onto that discipline without changing it.
  // The shard is its own Reclaimer: the graph hands replaced
  // allocations back through Retire() while the writer holds mu.
  struct alignas(64) Shard final : internal::Reclaimer {
    explicit Shard(const Config& config) : graph(config) {
      // Constructors run before any concurrent access is possible, so
      // touching the guarded graph here is safe (and outside the
      // analysis' scope by design).
      if (config.optimistic_reads) graph.set_reclaimer(this);
    }
    ~Shard() override {
      // No reader can be in flight at destruction; free the backlog.
      limbo.DrainAll();
    }

    // Seqlock writer marks, called around every mutation. BeginWrite
    // makes the word odd before any store to the graph becomes visible
    // (the release fence keeps the mark ahead of the mutations);
    // EndWrite publishes the mutations with its release store of the
    // even value, then opportunistically drains the limbo list.
    void BeginWrite() CUCKOOGRAPH_REQUIRES(mu) {
      seq.store(seq.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_release);
    }
    void EndWrite() CUCKOOGRAPH_REQUIRES(mu) {
      seq.store(seq.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
      if (!limbo.empty()) limbo.DrainUpTo(epochs.MinPinned());
    }

    // internal::Reclaimer — called by this shard's graph mid-mutation,
    // i.e. with mu held exclusively. The call arrives through the
    // un-annotated interface pointer, so the capability is re-anchored
    // with an assertion instead of a REQUIRES the base can't carry.
    void Retire(std::function<void()> deleter) override {
      mu.AssertHeld();
      limbo.Push(epochs.Advance(), std::move(deleter));
    }

    mutable SharedMutex mu;
    CuckooGraph graph CUCKOOGRAPH_GUARDED_BY(mu);

    // The seqlock word (even = quiescent, odd = writer inside) on its
    // own cache line: readers spin-validate against it, and sharing a
    // line with the lock word would put writer lock traffic back on
    // the read path.
    alignas(64) std::atomic<uint64_t> seq{0};

    // Epoch slots are read-side state (mutable: readers pin from const
    // paths); the limbo list is writer-side state under mu.
    mutable internal::EpochManager epochs;
    internal::LimboList limbo CUCKOOGRAPH_GUARDED_BY(mu);

    // Read-path accounting (observability only, hence relaxed).
    mutable std::atomic<uint64_t> optimistic_reads_served{0};
    mutable std::atomic<uint64_t> locked_reads_served{0};
  };

  // Bounded validation retries before a read falls back to the lock.
  static constexpr int kOptimisticRetries = 3;

  // Entry helper #1 (scalar): one optimistic read attempt loop against a
  // shard. `probe(graph, validator)` must return true only after its
  // result validated cleanly. Returns false when the caller must take
  // the locked path (no epoch slot, writer interference every retry).
  //
  // NO_THREAD_SAFETY_ANALYSIS: this function reads shard.graph without
  // holding shard.mu — the entire point of the optimistic path. Safety
  // comes from the seqlock protocol instead of the lock: the probe only
  // trusts data that validated against the sequence word, and the epoch
  // pin keeps any storage a writer retires meanwhile alive. The
  // analysis cannot express that protocol, so it is suppressed HERE AND
  // IN THE SLICE VARIANT ONLY; every other access path stays checked.
  template <typename ProbeFn>
  static bool TryOptimisticRead(const Shard& shard, ProbeFn probe)
      CUCKOOGRAPH_NO_THREAD_SAFETY_ANALYSIS {
    internal::EpochGuard guard(&shard.epochs);
    if (!guard.pinned()) return false;
    for (int attempt = 0; attempt < kOptimisticRetries; ++attempt) {
      const uint64_t s1 = shard.seq.load(std::memory_order_acquire);
      if ((s1 & 1) != 0) continue;  // writer inside; retry
      const internal::SeqValidator sv{&shard.seq, s1};
      if (probe(shard.graph, sv)) return true;
    }
    return false;
  }

  // Entry helper #2 (batch): resolves a whole shard slice of QueryEdges
  // lock-free, all-or-nothing — any edge that exhausts its retries
  // makes the caller redo the slice under the shared lock. Same
  // NO_THREAD_SAFETY_ANALYSIS rationale as TryOptimisticRead above.
  static bool TryOptimisticQuerySlice(const Shard& shard,
                                      Span<const Edge> part,
                                      size_t* present)
      CUCKOOGRAPH_NO_THREAD_SAFETY_ANALYSIS;

  // Per-shard slices of the batch ops: the caller owns the shard lock
  // (exclusively for mutations, shared for queries) and the analysis
  // verifies it at every call site.
  static size_t InsertSlice(Shard& shard, Span<const Edge> part)
      CUCKOOGRAPH_REQUIRES(shard.mu);
  static size_t QuerySlice(const Shard& shard, Span<const Edge> part)
      CUCKOOGRAPH_REQUIRES_SHARED(shard.mu);
  static size_t DeleteSlice(Shard& shard, Span<const Edge> part)
      CUCKOOGRAPH_REQUIRES(shard.mu);

  size_t ShardIndex(NodeId u) const {
    // Fibonacci multiply-shift so consecutive source ids spread across
    // shards instead of clustering; reduced modulo the shard count.
    const uint64_t mixed = static_cast<uint64_t>(u) * 0x9E3779B97F4A7C15ULL;
    return static_cast<size_t>(mixed >> 32) % shards_.size();
  }

  // Visits each shard's sub-span of `edges` (grouped by ShardIndex) once:
  // fn(shard, Span<const Edge>) under no lock — callers lock per shard.
  template <typename Fn>
  void GroupByShard(Span<const Edge> edges, Fn fn) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  bool optimistic_reads_ = true;
};

}  // namespace cuckoograph

#endif  // CUCKOOGRAPH_CORE_SHARDED_CUCKOO_GRAPH_H_
