// CuckooGraph (ICDE'25): a fully-dynamic graph store built from cuckoo
// hash tables. The top-level L-CHT maps each vertex to its adjacency; a
// vertex's first 2R neighbours live inline in its L-CHT cell, and the
// TRANSFORMATION mechanism promotes the adjacency into a chain of up to R
// nested cuckoo tables (the S-CHTs) as the degree grows, following the
// Table II length sequence. Kick-out failures park in per-table-set
// DENYLISTs so growth stays load-driven, and the reverse transformation
// tightens the structure again under deletions.
#ifndef CUCKOOGRAPH_CORE_CUCKOO_GRAPH_H_
#define CUCKOOGRAPH_CORE_CUCKOO_GRAPH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/bob_hash.h"
#include "common/rng.h"
#include "common/types.h"
#include "core/config.h"
#include "core/graph_store.h"
#include "core/internal/cuckoo_table.h"
#include "core/internal/epoch.h"

namespace cuckoograph {

namespace internal {
struct Chain;
}  // namespace internal

// Per-table-family operation counters (Theorems 1 and 2). "l" aggregates
// the top-level L-CHT; "s" aggregates every per-vertex S-CHT chain table.
struct TableStats {
  // Items placed by a direct insertion (one per item, not per probe).
  uint64_t insert_attempts = 0;
  // Kick-out evictions across all placements, rehashes included.
  uint64_t kicks = 0;
  // Items re-placed while a table set expanded, merged, or shrank.
  uint64_t rehash_moves = 0;
  // Merge-and-double growths (S-CHT chains at R tables).
  uint64_t merges = 0;
  // Capacity growths: L-CHT doublings / S-CHT chain appends.
  uint64_t expansions = 0;
};

struct GraphStats {
  TableStats l;
  TableStats s;
  // Live S-CHT chains (vertices past the inline-slot threshold).
  uint64_t num_chains = 0;
  // Inline-to-chain TRANSFORMATIONs performed.
  uint64_t transformations = 0;
  // Chain collapses/shrinks performed by the reverse transformation.
  uint64_t reverse_transformations = 0;
  // Items that were parked in a denylist at least once.
  uint64_t denylist_parks = 0;
};

class CuckooGraph : public GraphStore {
 public:
  // Neighbours stored inline in a vertex cell before TRANSFORMATION (2R
  // with the paper's R = 3).
  static constexpr int kInlineSlots = 6;

  CuckooGraph() : CuckooGraph(Config()) {}
  explicit CuckooGraph(const Config& config);
  ~CuckooGraph() override;

  CuckooGraph(const CuckooGraph&) = delete;
  CuckooGraph& operator=(const CuckooGraph&) = delete;

  std::string_view name() const override { return "CuckooGraph"; }
  StoreCapabilities Capabilities() const override {
    StoreCapabilities caps;
    caps.deletions = true;
    return caps;
  }
  bool InsertEdge(NodeId u, NodeId v) override;
  bool QueryEdge(NodeId u, NodeId v) const override;
  bool DeleteEdge(NodeId u, NodeId v) override;
  std::unique_ptr<NeighborCursor> Neighbors(NodeId u) const override;
  std::unique_ptr<NeighborCursor> Nodes() const override;
  size_t NumEdges() const override { return num_edges_; }
  size_t NumNodes() const override;
  size_t MemoryBytes() const override;

  // O(1): the degree is a field of the vertex cell.
  size_t OutDegree(NodeId u) const override;

  // The (normalized) configuration this instance runs with.
  const Config& config() const { return config_; }

  // Snapshot of the operation counters.
  GraphStats stats() const;

  // Bucket counts of each table in `u`'s S-CHT chain, head first; empty if
  // `u` has no chain (absent or still inline). Backs the Table II bench.
  std::vector<size_t> SChainLengths(NodeId u) const;

  // ---- Optimistic-read hooks (ShardedCuckooGraph's lock-free path) ---------
  // The graph itself stays single-writer; these only make its storage
  // safe to *probe* while the (lock-serialized) writer runs elsewhere.
  // The caller owns the seqlock that detects torn reads (SeqValidator)
  // and the epoch pin that keeps retired allocations alive; the methods
  // below own crash-safety: they never dereference a pointer that was
  // copied out of racing storage without validating it first.

  // Routes reader-reachable frees (replaced bucket blocks, whole retired
  // chains) through `r` instead of freeing inline. Must be set before
  // the first optimistic reader can run; nullptr (the default) frees
  // immediately, which is correct for single-threaded use.
  void set_reclaimer(internal::Reclaimer* r) { reclaimer_ = r; }

  // Each returns true and sets *out when the probe validated cleanly
  // against `sv`; false means a writer interfered (or the chain mirror
  // was unusable) and the caller must retry or take its locked path.
  bool TryQueryEdge(NodeId u, NodeId v, const internal::SeqValidator& sv,
                    bool* present) const;
  bool TryOutDegree(NodeId u, const internal::SeqValidator& sv,
                    size_t* degree) const;

 protected:
  // Weighted-variant hooks (see WeightedCuckooGraph). Inserts the edge
  // with weight `delta` if absent, otherwise adds `delta`; returns the
  // resulting weight.
  uint64_t AddEdgeWeight(NodeId u, NodeId v, uint32_t delta);
  uint64_t GetEdgeWeight(NodeId u, NodeId v) const;

 private:
  // One stored neighbour (the S-CHT chain item). The weight slot is 1 for
  // unweighted edges and the accumulated multiplicity in the weighted
  // variant.
  struct Neighbor {
    NodeId v = 0;
    uint32_t weight = 0;
    NodeId CuckooKey() const { return v; }
  };

  // Inline adjacency of a low-degree vertex, as parallel arrays so the
  // neighbour keys sit contiguously and one vector compare probes every
  // slot (internal::MatchKeyMask). The arrays are sized at the SIMD lane
  // count (8 > kInlineSlots); lanes past `degree` are ignored.
  struct InlineSlots {
    NodeId v[internal::kKeyLanes];
    uint32_t w[internal::kKeyLanes];
  };

  // One L-CHT cell payload: the vertex and its adjacency, either inline
  // (first kInlineSlots neighbours) or an owned S-CHT chain.
  struct VertexEntry {
    NodeId key = 0;
    uint32_t degree = 0;
    bool has_chain = false;
    union {
      InlineSlots inline_;
      internal::Chain* chain;
    };
    VertexEntry() : inline_{} {}
    NodeId CuckooKey() const { return key; }
  };

  friend struct internal::Chain;

  class NeighborCursorImpl;
  class NodeCursorImpl;

  VertexEntry* FindVertex(NodeId u);
  const VertexEntry* FindVertex(NodeId u) const;
  // Pointer to the stored weight of <e, v>, or nullptr when the edge is
  // absent — presence probe and weight access in one lookup, across both
  // the inline-slot and chain representations.
  uint32_t* FindWeight(VertexEntry* e, NodeId v);
  const uint32_t* FindWeight(const VertexEntry* e, NodeId v) const;
  // Core upsert shared by InsertEdge and AddEdgeWeight. Returns the
  // resulting weight and whether the edge is new.
  std::pair<uint64_t, bool> Upsert(NodeId u, NodeId v, uint32_t delta,
                                   bool accumulate);
  void AppendNeighbor(VertexEntry* e, Neighbor n);
  void PlaceVertex(VertexEntry entry);
  // Rebuilds the L-CHT at new_buckets (doubling further on placement
  // failure) and re-places the denylist.
  void RebuildL(size_t new_buckets);
  void MaybeShrinkL();
  void RemoveVertex(NodeId u);

  internal::Chain* NewChain();
  void TransformToChain(VertexEntry* e);
  void ChainInsert(internal::Chain* c, Neighbor n);
  bool ChainErase(internal::Chain* c, NodeId v);
  size_t ChainCells(const internal::Chain& c) const;
  size_t ChainMemory(const internal::Chain& c) const;
  void GrowChain(internal::Chain* c);
  // Rebuilds a chain with the given head size; with_second also creates
  // the fresh half-size second table of the Table II merge step.
  void RebuildChain(internal::Chain* c, size_t head_buckets,
                    bool with_second);
  void MaybeReverseTransform(VertexEntry* e);
  void FreeChain(internal::Chain* c);

  // Lock-free probe primitives behind TryQueryEdge/TryOutDegree. The
  // vertex probe copies the entry out (to be validated by the caller
  // before anything in it is trusted); the chain probe walks the chain's
  // atomic reader mirror, returning false when the mirror is unusable
  // (more tables than mirror slots).
  bool OptimisticFindVertex(NodeId u, VertexEntry* out) const;
  bool OptimisticChainFind(const internal::Chain* c, NodeId v, bool* found,
                           uint32_t* weight) const;
  // Refreshes a chain's reader mirror after any structural change
  // (table added, tables rebuilt). Cheap: a few release stores.
  void PublishChainMirror(internal::Chain* c);

  Config config_;
  BobHash h1_;
  BobHash h2_;
  SplitMix64 rng_;
  internal::CuckooTable<VertexEntry> l_;
  // Reserved to denylist_limit at construction and only ever mutated in
  // place (push/pop/assign within capacity), so data() is stable and an
  // optimistic reader may scan the first reader_l_deny_count_ entries
  // without touching the vector's own (unsynchronized) bookkeeping.
  std::vector<VertexEntry> l_denylist_;
  std::atomic<uint32_t> reader_l_deny_count_{0};
  internal::Reclaimer* reclaimer_ = nullptr;
  size_t num_edges_ = 0;
  TableStats l_stats_;
  TableStats s_stats_;
  uint64_t num_chains_ = 0;
  uint64_t transformations_ = 0;
  uint64_t reverse_transformations_ = 0;
  uint64_t denylist_parks_ = 0;
};

}  // namespace cuckoograph

#endif  // CUCKOOGRAPH_CORE_CUCKOO_GRAPH_H_
