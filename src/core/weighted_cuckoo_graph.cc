#include "core/weighted_cuckoo_graph.h"

namespace cuckoograph {

WeightedCuckooGraph::WeightedCuckooGraph() : CuckooGraph() {}

WeightedCuckooGraph::WeightedCuckooGraph(const Config& config)
    : CuckooGraph(config) {}

uint64_t WeightedCuckooGraph::AddEdge(NodeId u, NodeId v) {
  return AddEdgeWeight(u, v, 1);
}

uint64_t WeightedCuckooGraph::QueryWeight(NodeId u, NodeId v) const {
  return GetEdgeWeight(u, v);
}

}  // namespace cuckoograph
