// Figure 13: running time of Connected Components / Tarjan (Section V-E4).
// Methodology: extract the top-degree subgraph, insert it into each scheme,
// snapshot it, run iterative Tarjan SCC over the CSR. Labels are
// oracle-checked exactly — the kernel is contractually sequential at any
// thread budget (--threads still parallelizes the snapshot build).
#include "analytics/connected_components.h"
#include "analytics_bench_util.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  bench::AnalyticsFigureSpec spec;
  spec.experiment = "fig13";
  spec.title = "Connected Components (Tarjan) running time (V-E4)";
  spec.subgraph_nodes = 1500;
  spec.subgraph_only = true;
  spec.tolerance = 0.0;
  spec.kernel = [](const analytics::CsrSnapshot& graph,
                   const std::vector<NodeId>& nodes,
                   const analytics::KernelOptions& opts) {
    (void)nodes;  // Tarjan sweeps the whole (already induced) snapshot
    return analytics::connected_components::Run(graph, Span<const NodeId>(),
                                                opts);
  };
  return bench::RunAnalyticsFigure(argc, argv, spec);
}
