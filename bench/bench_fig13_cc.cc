// Figure 13: running time of Connected Components / Tarjan (Section V-E4).
// Methodology: extract the top-degree subgraph, insert it into each scheme,
// snapshot it, run iterative Tarjan SCC over the CSR.
#include "analytics/connected_components.h"
#include "analytics_bench_util.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  bench::AnalyticsFigureSpec spec;
  spec.experiment = "fig13";
  spec.title = "Connected Components (Tarjan) running time (V-E4)";
  spec.subgraph_nodes = 1500;
  spec.subgraph_only = true;
  spec.kernel = [](const analytics::CsrSnapshot& graph,
                   const std::vector<NodeId>& nodes) {
    (void)nodes;  // Tarjan sweeps the whole (already induced) snapshot
    const auto result =
        analytics::connected_components::Run(graph, Span<const NodeId>());
    (void)result.aggregate;
  };
  return bench::RunAnalyticsFigure(argc, argv, spec);
}
