// Figure 13: running time of Connected Components / Tarjan (Section V-E4).
// Methodology: extract the top-degree subgraph, insert it into each scheme,
// run Tarjan's SCC over it.
#include "analytics/connected_components.h"
#include "analytics_bench_util.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  bench::AnalyticsFigureSpec spec;
  spec.experiment = "fig13";
  spec.title = "Connected Components (Tarjan) running time (V-E4)";
  spec.subgraph_nodes = 1500;
  spec.subgraph_only = true;
  spec.kernel = [](const GraphStore& store,
                   const std::vector<NodeId>& nodes) {
    const auto result = analytics::TarjanScc(store, nodes);
    (void)result.count;
  };
  return bench::RunAnalyticsFigure(argc, argv, spec);
}
