#include "bench_util.h"

#include <cinttypes>

namespace cuckoograph::bench {

namespace {

// The --csv capture target; null when capture is off.
std::FILE* csv_file = nullptr;

void CsvWriteLine(const std::string& experiment, const std::string& label,
                  const std::vector<std::string>& cells) {
  if (csv_file == nullptr) return;
  std::fprintf(csv_file, "%s", experiment.c_str());
  if (!label.empty()) std::fprintf(csv_file, ",%s", label.c_str());
  for (const std::string& cell : cells) {
    std::fprintf(csv_file, ",%s", cell.c_str());
  }
  std::fprintf(csv_file, "\n");
}

}  // namespace

bool OpenCsv(const std::string& path) {
  CloseCsv();
  csv_file = std::fopen(path.c_str(), "w");
  if (csv_file == nullptr) {
    std::fprintf(stderr, "warning: cannot open --csv file %s\n",
                 path.c_str());
    return false;
  }
  return true;
}

void CloseCsv() {
  if (csv_file != nullptr) {
    std::fclose(csv_file);
    csv_file = nullptr;
  }
}

void MaybeOpenCsvFromFlags(const Flags& flags) {
  const std::string path = flags.GetString("csv", "");
  if (!path.empty()) OpenCsv(path);
}

double DatasetScale(const std::string& name, double user_scale) {
  // Defaults keep each dataset's stream near 10^5 arrivals while retaining
  // its duplication ratio and skew (see DESIGN.md, substitutions).
  double base = 0.01;
  if (name == "CAIDA") base = 0.02;            // ~540k arrivals, 17k distinct
  if (name == "NotreDame") base = 0.04;        // ~60k edges
  if (name == "StackOverflow") base = 0.002;   // ~127k arrivals
  if (name == "WikiTalk") base = 0.004;        // ~100k arrivals
  if (name == "Weibo") base = 0.0004;          // ~104k edges
  if (name == "DenseGraph") base = 0.002;      // ~115k edges, 357 nodes
  if (name == "SparseGraph") base = 0.004;     // ~120k edges
  double scale = base * user_scale;
  if (scale > 1.0) scale = 1.0;
  if (scale < 1e-6) scale = 1e-6;
  return scale;
}

datasets::Dataset MakeBenchDataset(const std::string& name,
                                   double user_scale) {
  return datasets::MakeByName(name, DatasetScale(name, user_scale));
}

void PrintHeader(const std::string& experiment, const std::string& title,
                 const std::vector<std::string>& columns) {
  std::printf("== %s: %s ==\n", experiment.c_str(), title.c_str());
  std::printf("%-14s", "");
  for (const std::string& col : columns) std::printf("%16s", col.c_str());
  std::printf("\n");
  if (csv_file != nullptr) {
    std::fprintf(csv_file, "# %s: %s\n", experiment.c_str(), title.c_str());
    CsvWriteLine(experiment, "label", columns);
  }
}

void PrintRow(const std::string& experiment,
              const std::vector<std::string>& cells) {
  if (!cells.empty()) std::printf("%-14s", cells[0].c_str());
  for (size_t i = 1; i < cells.size(); ++i) {
    std::printf("%16s", cells[i].c_str());
  }
  std::printf("\n");
  std::printf("CSV,%s", experiment.c_str());
  for (const std::string& cell : cells) std::printf(",%s", cell.c_str());
  std::printf("\n");
  std::fflush(stdout);
  CsvWriteLine(experiment, "", cells);
}

std::string FmtMops(double mops) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", mops);
  return buf;
}

std::string FmtMb(size_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

std::string FmtSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", seconds);
  return buf;
}

BasicTaskResult RunBasicTasks(GraphStore& store,
                              const datasets::Dataset& dataset,
                              BasicPhase phases,
                              const std::vector<Edge>* distinct) {
  BasicTaskResult result;
  // 1) Insert the full arrival stream, one edge at a time: the figures
  // measure stream processing, not batch loading.
  WallTimer timer;
  for (const Edge& e : dataset.stream) store.InsertEdge(e.u, e.v);
  result.insert_mops = Mops(dataset.stream.size(), timer.ElapsedSeconds());
  result.memory_bytes = store.MemoryBytes();

  // 2) Query every stream edge (all hits, mirroring the paper).
  if (phases == BasicPhase::kQuery || phases == BasicPhase::kAll) {
    timer.Reset();
    size_t hits = 0;
    for (const Edge& e : dataset.stream) hits += store.QueryEdge(e.u, e.v);
    result.query_mops = Mops(dataset.stream.size(), timer.ElapsedSeconds());
    if (hits != dataset.stream.size()) {
      std::fprintf(stderr, "warning: %s missed %zu queries\n",
                   std::string(store.name()).c_str(),
                   dataset.stream.size() - hits);
    }
  }

  // 3) Delete the distinct edges, schemes that support deletion only.
  if ((phases == BasicPhase::kDelete || phases == BasicPhase::kAll) &&
      store.Capabilities().deletions) {
    std::vector<Edge> local;
    if (distinct == nullptr) {
      local = datasets::DedupEdges(dataset.stream);
      distinct = &local;
    }
    timer.Reset();
    for (const Edge& e : *distinct) store.DeleteEdge(e.u, e.v);
    result.delete_mops = Mops(distinct->size(), timer.ElapsedSeconds());
  }
  return result;
}

}  // namespace cuckoograph::bench
