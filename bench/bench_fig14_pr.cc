// Figure 14: running time of PageRank (Section V-E5).
// Methodology: extract the top-degree subgraph, insert it into each scheme,
// snapshot it, iterate 100 times over the CSR.
#include "analytics/pagerank.h"
#include "analytics_bench_util.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  bench::AnalyticsFigureSpec spec;
  spec.experiment = "fig14";
  spec.title = "PageRank (100 iterations) running time (V-E5)";
  spec.subgraph_nodes = 1500;
  spec.subgraph_only = true;
  spec.kernel = [](const analytics::CsrSnapshot& graph,
                   const std::vector<NodeId>& nodes) {
    (void)nodes;  // PageRank scores the whole (already induced) snapshot
    const auto result = analytics::pagerank::Run(graph, Span<const NodeId>());
    (void)result.per_node.size();
  };
  return bench::RunAnalyticsFigure(argc, argv, spec);
}
