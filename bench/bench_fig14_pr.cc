// Figure 14: running time of PageRank (Section V-E5).
// Methodology: extract the top-degree subgraph, insert it into each scheme,
// snapshot it, iterate 100 times over the CSR. Scores are oracle-checked
// to 1e-9 per node — the parallel scatter reassociates float sums.
#include "analytics/pagerank.h"
#include "analytics_bench_util.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  bench::AnalyticsFigureSpec spec;
  spec.experiment = "fig14";
  spec.title = "PageRank (100 iterations) running time (V-E5)";
  spec.subgraph_nodes = 1500;
  spec.subgraph_only = true;
  spec.tolerance = 1e-9;
  spec.kernel = [](const analytics::CsrSnapshot& graph,
                   const std::vector<NodeId>& nodes,
                   const analytics::KernelOptions& opts) {
    (void)nodes;  // PageRank scores the whole (already induced) snapshot
    return analytics::pagerank::Run(graph, Span<const NodeId>(), opts);
  };
  return bench::RunAnalyticsFigure(argc, argv, spec);
}
