// Figure 14: running time of PageRank (Section V-E5).
// Methodology: extract the top-degree subgraph, build the transition
// structure with successor queries, iterate 100 times.
#include "analytics/pagerank.h"
#include "analytics_bench_util.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  bench::AnalyticsFigureSpec spec;
  spec.experiment = "fig14";
  spec.title = "PageRank (100 iterations) running time (V-E5)";
  spec.subgraph_nodes = 1500;
  spec.subgraph_only = true;
  spec.kernel = [](const GraphStore& store,
                   const std::vector<NodeId>& nodes) {
    const auto pr = analytics::PageRank(store, nodes, 100);
    (void)pr.size();
  };
  return bench::RunAnalyticsFigure(argc, argv, spec);
}
