// Design-choice ablation (DESIGN.md): reverse transformation on/off.
// Inserts a CAIDA-like dedup stream, deletes 90% of it, and compares the
// retained memory and the deletion throughput. With the reverse
// transformation the structure tightens back toward its minimal form; with
// it off, capacity is retained (faster deletes, more memory).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/timer.h"
#include "core/cuckoo_graph.h"
#include "datasets/datasets.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  const Flags flags(argc, argv);
  const double user_scale = flags.GetDouble("scale", 1.0);

  const datasets::Dataset dataset =
      bench::MakeBenchDataset("CAIDA", user_scale);
  const std::vector<Edge> distinct = datasets::DedupEdges(dataset.stream);
  const size_t kept = distinct.size() / 10;

  bench::PrintHeader("ablation_rt",
                     "reverse transformation: memory after deleting 90%",
                     {"peak MB", "after MB", "del Mops"});
  for (const bool enabled : {true, false}) {
    Config config;
    config.enable_reverse_transform = enabled;
    CuckooGraph graph(config);
    for (const Edge& e : distinct) graph.InsertEdge(e.u, e.v);
    const size_t peak = graph.MemoryBytes();
    WallTimer timer;
    for (size_t i = kept; i < distinct.size(); ++i) {
      graph.DeleteEdge(distinct[i].u, distinct[i].v);
    }
    const double del_mops =
        Mops(distinct.size() - kept, timer.ElapsedSeconds());
    bench::PrintRow("ablation_rt",
                    {enabled ? "RT on" : "RT off", bench::FmtMb(peak),
                     bench::FmtMb(graph.MemoryBytes()),
                     bench::FmtMops(del_mops)});
  }
  return 0;
}
