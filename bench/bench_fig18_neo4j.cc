// Figure 18: Neo4j with and without the CuckooGraph edge index (Section
// V-G). Methodology: insert the first 1M CAIDA edges (scaled) into the
// property-graph store — for "Ours+Neo4j" the CuckooGraph index is
// maintained alongside, which costs a little extra insert time — then
// de-duplicate and query every edge; the indexed queries skip the
// adjacency-list traversal entirely.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/timer.h"
#include "datasets/datasets.h"
#include "neo4j_sim/indexed_property_graph.h"
#include "neo4j_sim/property_graph.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  const Flags flags(argc, argv);
  const double user_scale = flags.GetDouble("scale", 1.0);
  bench::MaybeOpenCsvFromFlags(flags);

  const datasets::Dataset dataset =
      bench::MakeBenchDataset("CAIDA", user_scale);
  const std::vector<Edge> distinct = datasets::DedupEdges(dataset.stream);

  // Pure Neo4j.
  neo4j_sim::PropertyGraphStore pure;
  WallTimer timer;
  for (const Edge& e : dataset.stream) pure.CreateRelationship(e.u, e.v);
  const double pure_insert = timer.ElapsedSeconds();
  timer.Reset();
  size_t pure_found = 0;
  for (const Edge& e : distinct) {
    pure_found += pure.FindRelationships(e.u, e.v).size();
  }
  const double pure_query = timer.ElapsedSeconds();

  // Neo4j + CuckooGraph index.
  neo4j_sim::IndexedPropertyGraph indexed;
  timer.Reset();
  for (const Edge& e : dataset.stream) indexed.CreateRelationship(e.u, e.v);
  const double ours_insert = timer.ElapsedSeconds();
  timer.Reset();
  size_t ours_found = 0;
  for (const Edge& e : distinct) {
    for (auto it = indexed.FindRelationships(e.u, e.v); it.Valid();
         it.Next()) {
      ++ours_found;
    }
  }
  const double ours_query = timer.ElapsedSeconds();

  bench::PrintHeader("fig18", "Neo4j-sim running time (seconds)",
                     {"Ours+Neo4j", "Neo4j"});
  bench::PrintRow("fig18", {"Insertion", bench::FmtSeconds(ours_insert),
                            bench::FmtSeconds(pure_insert)});
  bench::PrintRow("fig18", {"Query", bench::FmtSeconds(ours_query),
                            bench::FmtSeconds(pure_query)});
  std::printf("edges=%zu distinct=%zu found(pure)=%zu found(ours)=%zu "
              "adjacency scan steps (pure path): %zu\n",
              dataset.stream.size(), distinct.size(), pure_found,
              ours_found, pure.scan_steps());
  bench::CloseCsv();
  return pure_found == ours_found ? 0 : 1;
}
