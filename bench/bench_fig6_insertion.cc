// Figure 6: insertion throughput (Mops) of all schemes on the seven
// datasets (Section V-D methodology step 1: insert every edge of the
// arrival stream into an empty structure).
//
// With --durable-dir <dir> a second table prices durability: the same
// insert stream through a WAL-backed cuckoo-durable store under each
// wal_sync_mode, next to the in-memory CuckooGraph baseline. Each cell
// runs in its own subdirectory of <dir> and cleans up after itself.
#include <string>
#include <vector>

#include "baselines/store_factory.h"
#include "bench_util.h"
#include "common/flags.h"
#include "core/config.h"
#include "datasets/datasets.h"
#include "persist/durable_store.h"

namespace {

using namespace cuckoograph;

struct DurableColumn {
  const char* label;
  WalSyncMode mode;
};

constexpr DurableColumn kDurableColumns[] = {
    {"wal:none", WalSyncMode::kNone},
    {"wal:group", WalSyncMode::kGroup},
    {"wal:always", WalSyncMode::kAlways},
};

void RunDurableTable(const std::string& durable_dir, double user_scale) {
  std::vector<std::string> columns{"in-memory"};
  for (const DurableColumn& col : kDurableColumns) {
    columns.push_back(col.label);
  }
  bench::PrintHeader(
      "fig6-durable",
      "Insertion throughput with a WAL (Mops, higher is better)", columns);
  for (const std::string& dataset_name : datasets::AllDatasetNames()) {
    const datasets::Dataset dataset =
        bench::MakeBenchDataset(dataset_name, user_scale);
    std::vector<std::string> row{dataset_name};
    {
      auto store = MakeStoreByName("CuckooGraph");
      const bench::BasicTaskResult result =
          bench::RunBasicTasks(*store, dataset, bench::BasicPhase::kInsert);
      row.push_back(bench::FmtMops(result.insert_mops));
    }
    for (const DurableColumn& col : kDurableColumns) {
      Config config;
      config.wal_sync_mode = col.mode;
      persist::DurableOptions opts = persist::MakeDurableOptions(
          config, durable_dir + "/fig6-" + dataset_name + "-" + col.label);
      opts.owns_dir = true;  // each cell starts empty and cleans up
      auto store = MakeDurableStoreByName("cuckoo-durable", opts);
      const bench::BasicTaskResult result =
          bench::RunBasicTasks(*store, dataset, bench::BasicPhase::kInsert);
      row.push_back(bench::FmtMops(result.insert_mops));
    }
    bench::PrintRow("fig6-durable", row);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double user_scale = flags.GetDouble("scale", 1.0);
  bench::MaybeOpenCsvFromFlags(flags);

  bench::PrintHeader("fig6", "Insertion throughput (Mops, higher is better)",
                     AllSchemeNames());
  for (const std::string& dataset_name : datasets::AllDatasetNames()) {
    const datasets::Dataset dataset =
        bench::MakeBenchDataset(dataset_name, user_scale);
    std::vector<std::string> row{dataset_name};
    for (const std::string& scheme : AllSchemeNames()) {
      auto store = MakeStoreByName(scheme);
      const bench::BasicTaskResult result =
          bench::RunBasicTasks(*store, dataset, bench::BasicPhase::kInsert);
      row.push_back(bench::FmtMops(result.insert_mops));
    }
    bench::PrintRow("fig6", row);
  }

  const std::string durable_dir = flags.GetString("durable-dir", "");
  if (!durable_dir.empty()) RunDurableTable(durable_dir, user_scale);

  bench::CloseCsv();
  return 0;
}
