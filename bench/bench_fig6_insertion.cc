// Figure 6: insertion throughput (Mops) of all schemes on the seven
// datasets (Section V-D methodology step 1: insert every edge of the
// arrival stream into an empty structure).
#include "baselines/store_factory.h"
#include "bench_util.h"
#include "common/flags.h"
#include "datasets/datasets.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  const Flags flags(argc, argv);
  const double user_scale = flags.GetDouble("scale", 1.0);
  bench::MaybeOpenCsvFromFlags(flags);

  bench::PrintHeader("fig6", "Insertion throughput (Mops, higher is better)",
                     AllSchemeNames());
  for (const std::string& dataset_name : datasets::AllDatasetNames()) {
    const datasets::Dataset dataset =
        bench::MakeBenchDataset(dataset_name, user_scale);
    std::vector<std::string> row{dataset_name};
    for (const std::string& scheme : AllSchemeNames()) {
      auto store = MakeStoreByName(scheme);
      const bench::BasicTaskResult result =
          bench::RunBasicTasks(*store, dataset, bench::BasicPhase::kInsert);
      row.push_back(bench::FmtMops(result.insert_mops));
    }
    bench::PrintRow("fig6", row);
  }
  bench::CloseCsv();
  return 0;
}
