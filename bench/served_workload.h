// Shared workload generation for the two Redis-protocol benches, so the
// in-process bench_fig17_redis and the over-socket bench_served_traffic
// emit the same CSV schema (Insertion / Query / Deletion / Mixed(zipf)
// columns) and their numbers diff directly: same Zipf shapes, same
// oracle-checked reply protocol, different transport.
#ifndef CUCKOOGRAPH_BENCH_SERVED_WORKLOAD_H_
#define CUCKOOGRAPH_BENCH_SERVED_WORKLOAD_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace cuckoograph::bench {

// The four phase columns both protocol benches report, in order.
inline const std::vector<std::string>& ServedSchemaColumns() {
  static const std::vector<std::string> columns = {
      "Insertion", "Query", "Deletion", "Mixed(zipf)"};
  return columns;
}

enum class OpKind { kInsert, kQuery, kDelete };

struct MixedOp {
  OpKind kind;
  Edge e;
};

// Zipf-ish node pick matching the dataset generators: alpha > 1
// concentrates probability on low ids.
inline NodeId ZipfPick(SplitMix64& rng, NodeId n, double alpha) {
  const double r = std::pow(rng.NextDouble(), alpha);
  const NodeId id = static_cast<NodeId>(r * static_cast<double>(n));
  return id >= n ? n - 1 : id;
}

// `n` Zipf-skewed edges with sources in [base, base + range) and values
// in [0, values). Deterministic per seed, so a connection's stream can
// be regenerated for oracle replay.
inline std::vector<Edge> MakeZipfEdges(uint64_t seed, size_t n, NodeId base,
                                       NodeId range, NodeId values,
                                       double alpha) {
  SplitMix64 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    edges.push_back(Edge{base + ZipfPick(rng, range, alpha),
                         ZipfPick(rng, values, alpha)});
  }
  return edges;
}

// A Zipf-skewed read/write mix: `read_frac` of ops are queries, the
// writes split 60/40 insert/delete. Same key shape as MakeZipfEdges.
inline std::vector<MixedOp> MakeZipfMix(uint64_t seed, size_t n, NodeId base,
                                        NodeId range, NodeId values,
                                        double alpha, double read_frac) {
  SplitMix64 rng(seed);
  std::vector<MixedOp> ops;
  ops.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Edge e{base + ZipfPick(rng, range, alpha),
                 ZipfPick(rng, values, alpha)};
    const double roll = rng.NextDouble();
    OpKind kind = OpKind::kDelete;
    if (roll < read_frac) {
      kind = OpKind::kQuery;
    } else if (roll < read_frac + (1.0 - read_frac) * 0.6) {
      kind = OpKind::kInsert;
    }
    ops.push_back(MixedOp{kind, e});
  }
  return ops;
}

// The single-threaded oracle: replays one op over the live-edge set and
// returns the integer reply the server must produce. Valid as long as
// no other client touches the same source range — which is how both
// benches partition their key space.
inline long long OracleReply(std::unordered_set<uint64_t>* live, OpKind kind,
                             const Edge& e) {
  const uint64_t key = EdgeKey(e);
  switch (kind) {
    case OpKind::kInsert:
      return live->insert(key).second ? 1 : 0;
    case OpKind::kQuery:
      return live->count(key) != 0 ? 1 : 0;
    case OpKind::kDelete:
      return live->erase(key) != 0 ? 1 : 0;
  }
  return 0;  // unreachable
}

}  // namespace cuckoograph::bench

#endif  // CUCKOOGRAPH_BENCH_SERVED_WORKLOAD_H_
