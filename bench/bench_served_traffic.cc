// Served traffic: the over-socket successor to Figure 17. A real epoll
// TCP RESP server hosts the CG.* command family over the sharded store,
// and a multi-threaded client load generator (one thread per TCP
// connection, one private Zipf-skewed key range each) drives pipelined
// insert / query / delete phases plus a Zipf read/write mix, sweeping
// connection and server-worker counts. Every reply is checked against a
// single-threaded oracle replay of that connection's op stream and the
// binary exits non-zero on any divergence, so the CI smoke run is a
// correctness gate for the whole socket path, not just a throughput
// printout.
//
// Flags: --scale (ops multiplier), --connections (sweep ceiling, default
// 8), --workers (server event-loop threads, default 2; the sweep also
// runs every row at 1 worker when workers > 1), --pipeline (requests in
// flight per connection, default 16), --alpha (Zipf skew, default 1.5),
// --reads (mixed-phase read fraction, default 0.5), --csv <path>,
// --durable-dir <dir> (adds one row per wal_sync_mode served out of the
// WAL-backed cuckoo-sharded-durable store, plus a durability-stats
// line; each row uses its own subdirectory of <dir> and cleans up).
// CSV schema matches bench_fig17_redis (same phase columns), so the
// in-process and served numbers diff directly.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "baselines/store_factory.h"
#include "bench_util.h"
#include "persist/durable_store.h"
#include "common/flags.h"
#include "common/timer.h"
#include "common/types.h"
#include "core/config.h"
#include "datasets/datasets.h"
#include "core/sharded_cuckoo_graph.h"
#include "redis_sim/command_table.h"
#include "redis_sim/cuckoograph_module.h"
#include "served_workload.h"
#include "server/resp_client.h"
#include "server/tcp_server.h"

namespace cuckoograph {
namespace {

using bench::MixedOp;
using bench::OpKind;
using redis_sim::RespType;
using redis_sim::RespValue;
using server::RespClient;
using server::ServerConfig;
using server::TcpRespServer;

constexpr NodeId kSourceRange = 4096;  // sources per connection
constexpr NodeId kValueRange = 4096;
constexpr NodeId kConnStride = 1 << 16;  // private source base per conn

struct LoadConfig {
  size_t ops_per_conn = 0;
  size_t pipeline = 16;
  double alpha = 1.5;
  double read_frac = 0.5;
};

const char* CommandFor(OpKind kind) {
  switch (kind) {
    case OpKind::kInsert:
      return "CG.INSERT";
    case OpKind::kQuery:
      return "CG.QUERY";
    case OpKind::kDelete:
      return "CG.DEL";
  }
  return "CG.QUERY";  // unreachable
}

// Drives one connection through `ops`, `pipeline` requests in flight,
// checking every reply against the oracle replay. Returns the number of
// mismatched replies.
size_t DriveOps(RespClient* client, const std::vector<MixedOp>& ops,
                size_t pipeline, std::unordered_set<uint64_t>* live) {
  size_t mismatches = 0;
  std::vector<long long> expected;
  expected.reserve(pipeline);
  size_t i = 0;
  while (i < ops.size()) {
    const size_t burst = std::min(pipeline, ops.size() - i);
    for (size_t b = 0; b < burst; ++b) {
      const MixedOp& op = ops[i + b];
      client->Pipeline({CommandFor(op.kind), std::to_string(op.e.u),
                        std::to_string(op.e.v)});
      expected.push_back(bench::OracleReply(live, op.kind, op.e));
    }
    const std::vector<RespValue> replies = client->Flush();
    for (size_t b = 0; b < replies.size(); ++b) {
      if (replies[b].type != RespType::kInteger ||
          replies[b].integer != expected[b]) {
        ++mismatches;
      }
    }
    expected.clear();
    i += burst;
  }
  return mismatches;
}

// One phase: every connection thread drives its own op list; the wall
// time of the whole spawn-to-join window is the aggregate denominator.
double TimePhase(std::vector<RespClient>& clients,
                 const std::vector<std::vector<MixedOp>>& per_conn_ops,
                 size_t pipeline,
                 std::vector<std::unordered_set<uint64_t>>* lives,
                 std::atomic<size_t>* mismatches) {
  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(clients.size());
  for (size_t c = 0; c < clients.size(); ++c) {
    threads.emplace_back([&, c] {
      *mismatches += DriveOps(&clients[c], per_conn_ops[c], pipeline,
                              &(*lives)[c]);
    });
  }
  for (std::thread& t : threads) t.join();
  return timer.ElapsedSeconds();
}

std::vector<MixedOp> AsOps(const std::vector<Edge>& edges, OpKind kind) {
  std::vector<MixedOp> ops;
  ops.reserve(edges.size());
  for (const Edge& e : edges) ops.push_back(MixedOp{kind, e});
  return ops;
}

struct RowResult {
  double insert_mops = 0, query_mops = 0, delete_mops = 0, mixed_mops = 0;
  bool ok = true;
  std::string durable_note;  // stats line for durable rows, else empty
};

// When `durable` is non-null the served store is the WAL-backed
// cuckoo-sharded-durable decorator opened in durable->dir, and the row
// ends with a one-line durability-stats print (records / syncs / group
// commits), so the sync amortization under pipelined socket load is
// visible next to the throughput number.
RowResult RunRow(int connections, int workers, const LoadConfig& load,
                 const persist::DurableOptions* durable = nullptr) {
  Config config;
  ShardedCuckooGraph mem_store(config);
  std::unique_ptr<persist::DurableStore> durable_store;
  GraphStore* store = &mem_store;
  if (durable != nullptr) {
    try {
      durable_store = MakeDurableStoreByName("cuckoo-sharded-durable",
                                             *durable);
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "FAIL: durable open: %s\n", ex.what());
      RowResult failed;
      failed.ok = false;
      return failed;
    }
    store = durable_store.get();
  }
  redis_sim::CommandTable table;
  redis_sim::RegisterGraphCommands(&table, store);
  ServerConfig server_config;
  server_config.num_workers = workers;
  TcpRespServer server(server_config, &table);
  std::string error;
  RowResult result;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "FAIL: server start: %s\n", error.c_str());
    result.ok = false;
    return result;
  }

  std::vector<RespClient> clients(static_cast<size_t>(connections));
  for (int c = 0; c < connections; ++c) {
    if (!clients[static_cast<size_t>(c)].Connect("127.0.0.1", server.port(),
                                                 &error)) {
      std::fprintf(stderr, "FAIL: connect: %s\n", error.c_str());
      result.ok = false;
      return result;
    }
  }

  // Per-connection deterministic streams over private source ranges, so
  // each connection's oracle replay is exact regardless of interleaving.
  const size_t n = load.ops_per_conn;
  std::vector<std::vector<MixedOp>> inserts, queries, deletes, mixes;
  for (int c = 0; c < connections; ++c) {
    const NodeId base = 1 + static_cast<NodeId>(c) * kConnStride;
    const uint64_t seed = 4242 + static_cast<uint64_t>(c);
    const std::vector<Edge> stream = bench::MakeZipfEdges(
        seed, n, base, kSourceRange, kValueRange, load.alpha);
    inserts.push_back(AsOps(stream, OpKind::kInsert));
    queries.push_back(AsOps(stream, OpKind::kQuery));
    deletes.push_back(AsOps(datasets::DedupEdges(stream), OpKind::kDelete));
    mixes.push_back(bench::MakeZipfMix(seed ^ 0x5eed, n, base, kSourceRange,
                                       kValueRange, load.alpha,
                                       load.read_frac));
  }

  std::vector<std::unordered_set<uint64_t>> lives(
      static_cast<size_t>(connections));
  std::atomic<size_t> mismatches{0};
  const size_t total = n * static_cast<size_t>(connections);

  result.insert_mops =
      Mops(total,
           TimePhase(clients, inserts, load.pipeline, &lives, &mismatches));
  result.query_mops =
      Mops(total,
           TimePhase(clients, queries, load.pipeline, &lives, &mismatches));
  size_t delete_total = 0;
  for (const auto& ops : deletes) delete_total += ops.size();
  result.delete_mops =
      Mops(delete_total,
           TimePhase(clients, deletes, load.pipeline, &lives, &mismatches));
  result.mixed_mops =
      Mops(total,
           TimePhase(clients, mixes, load.pipeline, &lives, &mismatches));

  if (mismatches.load() != 0) {
    std::fprintf(stderr,
                 "FAIL: %dc/%dw: %zu replies diverged from the oracle\n",
                 connections, workers, mismatches.load());
    result.ok = false;
  }
  size_t expected_edges = 0;
  for (const auto& live : lives) expected_edges += live.size();
  if (store->NumEdges() != expected_edges) {
    std::fprintf(stderr,
                 "FAIL: %dc/%dw: store holds %zu edges, oracle says %zu\n",
                 connections, workers, store->NumEdges(), expected_edges);
    result.ok = false;
  }
  if (durable_store != nullptr) {
    const persist::DurableStats stats = durable_store->durable_stats();
    char note[160];
    std::snprintf(note, sizeof(note),
                  "  (durable: %llu records, %llu syncs, %llu group "
                  "commits, %llu checkpoints)",
                  static_cast<unsigned long long>(stats.wal.records_appended),
                  static_cast<unsigned long long>(stats.wal.syncs),
                  static_cast<unsigned long long>(stats.wal.group_commits),
                  static_cast<unsigned long long>(stats.checkpoints));
    result.durable_note = note;
  }
  return result;
}

}  // namespace
}  // namespace cuckoograph

int main(int argc, char** argv) {
  using namespace cuckoograph;
  const Flags flags(argc, argv);
  const double user_scale = flags.GetDouble("scale", 1.0);
  const int max_connections =
      static_cast<int>(flags.GetInt("connections", 8));
  const int max_workers = static_cast<int>(flags.GetInt("workers", 2));
  LoadConfig load;
  load.pipeline =
      static_cast<size_t>(std::max(1LL, flags.GetInt("pipeline", 16)));
  load.alpha = flags.GetDouble("alpha", 1.5);
  load.read_frac = flags.GetDouble("reads", 0.5);
  bench::MaybeOpenCsvFromFlags(flags);

  bench::PrintHeader(
      "served",
      "CuckooGraph served over TCP RESP (Mops, pipelined, oracle-checked)",
      bench::ServedSchemaColumns());

  bool ok = true;
  std::vector<int> worker_counts;
  if (max_workers > 1) worker_counts.push_back(1);
  worker_counts.push_back(std::max(1, max_workers));
  for (const int workers : worker_counts) {
    for (int connections = 1; connections <= max_connections;
         connections *= 2) {
      // Fixed total traffic per row: throughput comparisons across
      // connection counts serve the same number of ops.
      const size_t total_ops =
          std::max<size_t>(4'000, static_cast<size_t>(400'000 * user_scale));
      load.ops_per_conn =
          std::max<size_t>(250, total_ops / static_cast<size_t>(connections));
      const RowResult r = RunRow(connections, workers, load);
      bench::PrintRow(
          "served",
          {std::to_string(connections) + "c/" + std::to_string(workers) +
               "w/p" + std::to_string(load.pipeline),
           bench::FmtMops(r.insert_mops), bench::FmtMops(r.query_mops),
           bench::FmtMops(r.delete_mops), bench::FmtMops(r.mixed_mops)});
      ok = ok && r.ok;
      if (connections < max_connections && connections * 2 > max_connections) {
        // Keep the ceiling in the sweep when it is not a power of two.
        load.ops_per_conn = std::max<size_t>(
            250, total_ops / static_cast<size_t>(max_connections));
        const RowResult rl = RunRow(max_connections, workers, load);
        bench::PrintRow(
            "served",
            {std::to_string(max_connections) + "c/" +
                 std::to_string(workers) + "w/p" +
                 std::to_string(load.pipeline),
             bench::FmtMops(rl.insert_mops), bench::FmtMops(rl.query_mops),
             bench::FmtMops(rl.delete_mops), bench::FmtMops(rl.mixed_mops)});
        ok = ok && rl.ok;
        break;
      }
    }
  }
  // Durable rows: the same pipelined load served out of the WAL-backed
  // sharded store, one row per wal_sync_mode, at the sweep ceiling.
  const std::string durable_dir = flags.GetString("durable-dir", "");
  if (!durable_dir.empty()) {
    struct { const char* label; WalSyncMode mode; } kModes[] = {
        {"wal:none", WalSyncMode::kNone},
        {"wal:group", WalSyncMode::kGroup},
        {"wal:always", WalSyncMode::kAlways},
    };
    const size_t total_ops =
        std::max<size_t>(4'000, static_cast<size_t>(400'000 * user_scale));
    load.ops_per_conn =
        std::max<size_t>(250, total_ops / static_cast<size_t>(max_connections));
    for (const auto& m : kModes) {
      Config durable_config;
      durable_config.wal_sync_mode = m.mode;
      persist::DurableOptions opts = persist::MakeDurableOptions(
          durable_config, durable_dir + "/served-" + m.label);
      opts.owns_dir = true;  // each row starts empty and cleans up
      const RowResult r =
          RunRow(max_connections, std::max(1, max_workers), load, &opts);
      bench::PrintRow(
          "served",
          {std::to_string(max_connections) + "c/" +
               std::to_string(std::max(1, max_workers)) + "w/p" +
               std::to_string(load.pipeline) + " " + m.label,
           bench::FmtMops(r.insert_mops), bench::FmtMops(r.query_mops),
           bench::FmtMops(r.delete_mops), bench::FmtMops(r.mixed_mops)});
      if (!r.durable_note.empty()) std::puts(r.durable_note.c_str());
      ok = ok && r.ok;
    }
  }

  std::printf("(diff against bench_fig17_redis --csv: same columns, same "
              "Zipf mix, minus the kernel socket)\n");
  bench::CloseCsv();
  if (!ok) {
    std::fprintf(stderr, "served-traffic: oracle check FAILED\n");
    return 1;
  }
  return 0;
}
