// Figure 3: effect of the expansion loading-rate threshold G in
// {0.8, 0.85, 0.9, 0.95} (Section V-B).
#include <cstdio>

#include "param_sweep_util.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  std::vector<bench::ParamVariant> variants;
  for (double g : {0.8, 0.85, 0.9, 0.95}) {
    Config config;
    config.expand_threshold = g;
    char label[16];
    std::snprintf(label, sizeof(label), "G=%.2f", g);
    variants.emplace_back(label, config);
  }
  return bench::RunParamSweep(argc, argv, "fig3", "tuning G", variants);
}
