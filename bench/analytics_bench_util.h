// Shared runner for the graph-analytics figures (Figures 10-16). Follows
// the Section V-E methodology: the top-degree node set is selected once per
// dataset (on a reference snapshot, so every scheme sees the same nodes),
// and either the whole dataset (BFS/SSSP/TC) or the extracted subgraph
// (CC/PR/BC/LCC) is inserted into each scheme. The timed region is the
// scheme's snapshot materialization (CsrSnapshot::FromStore — the store's
// extract cost) plus the kernel over the flat CSR.
#ifndef CUCKOOGRAPH_BENCH_ANALYTICS_BENCH_UTIL_H_
#define CUCKOOGRAPH_BENCH_ANALYTICS_BENCH_UTIL_H_

#include <functional>
#include <string>
#include <vector>

#include "analytics/csr_snapshot.h"
#include "common/types.h"

namespace cuckoograph::bench {

struct AnalyticsFigureSpec {
  std::string experiment;   // e.g. "fig10"
  std::string title;        // e.g. "Running time of BFS (Section V-E1)"
  size_t subgraph_nodes;    // top-degree selection size
  bool subgraph_only;       // insert only the induced subgraph's edges
  // Requires Capabilities().weighted: schemes without it print "-" for the
  // cell, and qualifying schemes get their snapshot built with weights.
  bool needs_weights = false;
  // The timed kernel body: receives the scheme's snapshot and the selected
  // nodes (original ids). Snapshot build time is charged to the cell too.
  std::function<void(const analytics::CsrSnapshot&,
                     const std::vector<NodeId>&)>
      kernel;
};

// Parses --scale / --datasets / --schemes / --csv flags, runs the spec over
// every dataset x scheme, and prints one row per dataset (columns =
// schemes). --schemes takes a comma-separated subset of AllSchemeNames();
// an unknown entry aborts with the factory's valid-scheme listing.
int RunAnalyticsFigure(int argc, char** argv, const AnalyticsFigureSpec& spec);

}  // namespace cuckoograph::bench

#endif  // CUCKOOGRAPH_BENCH_ANALYTICS_BENCH_UTIL_H_
