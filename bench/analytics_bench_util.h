// Shared runner for the graph-analytics figures (Figures 10-16). Follows
// the Section V-E methodology: the top-degree node set is selected once per
// dataset (on a reference snapshot, so every scheme sees the same nodes),
// and either the whole dataset (BFS/SSSP/TC) or the extracted subgraph
// (CC/PR/BC/LCC) is inserted into each scheme. The timed region is the
// scheme's snapshot materialization (CsrSnapshot::FromStore — the store's
// extract cost) plus the kernel over the flat CSR.
//
// Every cell is oracle-checked: the kernel's KernelResult is compared
// against a reference run (sequential, on a reference store holding the
// same edges) — aggregates exactly, per-node values to spec.tolerance.
// A diverging cell prints the delta and fails the whole binary with a
// non-zero exit, so the CI smoke runs (--scale 0.01) double as
// correctness gates. --threads sets the kernel + snapshot thread budget
// for the timed cells (the oracle always runs 1-thread).
#ifndef CUCKOOGRAPH_BENCH_ANALYTICS_BENCH_UTIL_H_
#define CUCKOOGRAPH_BENCH_ANALYTICS_BENCH_UTIL_H_

#include <functional>
#include <string>
#include <vector>

#include "analytics/csr_snapshot.h"
#include "analytics/kernel.h"
#include "common/types.h"

namespace cuckoograph::bench {

struct AnalyticsFigureSpec {
  std::string experiment;   // e.g. "fig10"
  std::string title;        // e.g. "Running time of BFS (Section V-E1)"
  size_t subgraph_nodes;    // top-degree selection size
  bool subgraph_only;       // insert only the induced subgraph's edges
  // Requires Capabilities().weighted: schemes without it print "-" for the
  // cell, and qualifying schemes get their snapshot built with weights.
  bool needs_weights = false;
  // Oracle tolerance on per-node values: 0 demands exact equality
  // (BFS/SSSP/TC/CC — deterministic contracts at any budget), a small
  // epsilon absorbs float association (PR). Aggregates compare exactly
  // either way.
  double tolerance = 0.0;
  // The timed kernel body: receives the scheme's snapshot, the selected
  // nodes (original ids), and the --threads kernel options; returns the
  // result the oracle checks. Snapshot build time is charged to the cell
  // too.
  std::function<analytics::KernelResult(const analytics::CsrSnapshot&,
                                        const std::vector<NodeId>&,
                                        const analytics::KernelOptions&)>
      kernel;
};

// Parses --scale / --datasets / --schemes / --csv / --threads flags, runs
// the spec over every dataset x scheme, and prints one row per dataset
// (columns = schemes). --schemes takes a comma-separated subset of
// AllSchemeNames(); an unknown entry aborts with the factory's
// valid-scheme listing. Returns non-zero when any cell's result diverges
// from the oracle.
int RunAnalyticsFigure(int argc, char** argv, const AnalyticsFigureSpec& spec);

}  // namespace cuckoograph::bench

#endif  // CUCKOOGRAPH_BENCH_ANALYTICS_BENCH_UTIL_H_
