#include "analytics_bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "analytics/common.h"
#include "baselines/store_factory.h"
#include "bench_util.h"
#include "common/flags.h"
#include "common/timer.h"
#include "datasets/datasets.h"

namespace cuckoograph::bench {

namespace {

// Compares a cell's result against the dataset's oracle. Aggregates are
// exact; per-node values allow `tolerance` (0 = exact). Returns false and
// prints the first divergence when the cell is wrong.
bool CheckAgainstOracle(const std::string& experiment,
                        const std::string& dataset,
                        const std::string& scheme,
                        const analytics::KernelResult& got,
                        const analytics::KernelResult& want,
                        double tolerance) {
  if (got.aggregate != want.aggregate) {
    std::fprintf(stderr,
                 "%s: ORACLE DIVERGENCE %s/%s: aggregate %llu != %llu\n",
                 experiment.c_str(), dataset.c_str(), scheme.c_str(),
                 static_cast<unsigned long long>(got.aggregate),
                 static_cast<unsigned long long>(want.aggregate));
    return false;
  }
  if (got.per_node.size() != want.per_node.size()) {
    std::fprintf(stderr,
                 "%s: ORACLE DIVERGENCE %s/%s: %zu per-node values, "
                 "expected %zu\n",
                 experiment.c_str(), dataset.c_str(), scheme.c_str(),
                 got.per_node.size(), want.per_node.size());
    return false;
  }
  for (size_t v = 0; v < want.per_node.size(); ++v) {
    const double a = got.per_node[v];
    const double b = want.per_node[v];
    const bool equal =
        tolerance == 0.0 ? a == b : std::fabs(a - b) <= tolerance;
    if (!equal && !(std::isinf(a) && std::isinf(b))) {
      std::fprintf(stderr,
                   "%s: ORACLE DIVERGENCE %s/%s: per_node[%zu] = %.17g, "
                   "expected %.17g (tolerance %g)\n",
                   experiment.c_str(), dataset.c_str(), scheme.c_str(), v,
                   a, b, tolerance);
      return false;
    }
  }
  return true;
}

}  // namespace

int RunAnalyticsFigure(int argc, char** argv,
                       const AnalyticsFigureSpec& spec) {
  const Flags flags(argc, argv);
  const double user_scale = flags.GetDouble("scale", 1.0);
  const std::string only_dataset = flags.GetString("datasets", "");
  const size_t threads =
      static_cast<size_t>(std::max(1ll, flags.GetInt("threads", 1)));
  // --schemes takes a comma-separated subset; validation (with the list of
  // valid names on error) is the factory's, same as MakeStoreByName.
  std::vector<std::string> selected;
  try {
    selected = ParseSchemesFlag(flags.GetString("schemes", ""));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s: %s\n", spec.experiment.c_str(), e.what());
    return 2;
  }
  MaybeOpenCsvFromFlags(flags);

  const auto is_selected = [&selected](const std::string& scheme) {
    return std::find(selected.begin(), selected.end(), scheme) !=
           selected.end();
  };

  analytics::CsrSnapshot::Options snapshot_opts;
  snapshot_opts.with_weights = spec.needs_weights;
  snapshot_opts.num_threads = threads;
  analytics::KernelOptions kernel_opts;
  kernel_opts.num_threads = threads;

  bool all_cells_correct = true;
  PrintHeader(spec.experiment,
              spec.title + " — seconds per run (snapshot + kernel)" +
                  (threads > 1
                       ? ", threads=" + std::to_string(threads)
                       : std::string()),
              AllSchemeNames());
  for (const std::string& dataset_name : datasets::AllDatasetNames()) {
    if (!only_dataset.empty() && only_dataset != dataset_name) continue;
    const datasets::Dataset dataset =
        MakeBenchDataset(dataset_name, user_scale);

    // Reference load + snapshot: used only for node selection and subgraph
    // extraction so every scheme receives identical inputs.
    auto reference = MakeStoreByName("CuckooGraph");
    reference->InsertEdges(dataset.stream);
    const analytics::CsrSnapshot reference_snapshot =
        analytics::CsrSnapshot::FromStore(*reference);
    const std::vector<NodeId> top_nodes =
        analytics::TopDegreeNodes(reference_snapshot, spec.subgraph_nodes);
    const std::vector<Edge> subgraph_edges =
        spec.subgraph_only
            ? analytics::InducedSubgraph(reference_snapshot, top_nodes)
            : std::vector<Edge>();

    // The dataset's oracle: the same edges in a reference store (weighted
    // when the figure needs weights), snapshotted and run sequentially.
    // Untimed — it gates correctness, not the reported cells.
    analytics::KernelResult oracle;
    {
      auto oracle_store = MakeStoreByName(
          spec.needs_weights ? "cuckoo-weighted" : "CuckooGraph");
      oracle_store->InsertEdges(spec.subgraph_only
                                    ? Span<const Edge>(subgraph_edges)
                                    : Span<const Edge>(dataset.stream));
      analytics::CsrSnapshot::Options oracle_snapshot_opts;
      oracle_snapshot_opts.with_weights = spec.needs_weights;
      const analytics::CsrSnapshot oracle_snapshot =
          analytics::CsrSnapshot::FromStore(*oracle_store,
                                            oracle_snapshot_opts);
      oracle = spec.kernel(oracle_snapshot, top_nodes,
                           analytics::KernelOptions{});
    }

    std::vector<std::string> row{dataset_name};
    for (const std::string& scheme : AllSchemeNames()) {
      if (!is_selected(scheme)) {
        row.push_back("-");
        continue;
      }
      auto store = MakeStoreByName(scheme);
      if (spec.needs_weights && !store->Capabilities().weighted) {
        row.push_back("-");  // the scheme cannot serve this kernel
        continue;
      }
      store->InsertEdges(spec.subgraph_only ? Span<const Edge>(subgraph_edges)
                                            : Span<const Edge>(dataset.stream));
      WallTimer timer;
      const analytics::CsrSnapshot snapshot =
          analytics::CsrSnapshot::FromStore(*store, snapshot_opts);
      const analytics::KernelResult result =
          spec.kernel(snapshot, top_nodes, kernel_opts);
      row.push_back(FmtSeconds(timer.ElapsedSeconds()));
      if (!CheckAgainstOracle(spec.experiment, dataset_name, scheme, result,
                              oracle, spec.tolerance)) {
        all_cells_correct = false;
      }
    }
    PrintRow(spec.experiment, row);
  }
  CloseCsv();
  if (!all_cells_correct) {
    std::fprintf(stderr, "%s: FAILED — kernel output diverged from the "
                 "oracle (see above)\n",
                 spec.experiment.c_str());
    return 1;
  }
  return 0;
}

}  // namespace cuckoograph::bench
