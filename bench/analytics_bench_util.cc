#include "analytics_bench_util.h"

#include <memory>

#include "analytics/common.h"
#include "baselines/store_factory.h"
#include "bench_util.h"
#include "common/flags.h"
#include "common/timer.h"
#include "datasets/datasets.h"

namespace cuckoograph::bench {

int RunAnalyticsFigure(int argc, char** argv,
                       const AnalyticsFigureSpec& spec) {
  const Flags flags(argc, argv);
  const double user_scale = flags.GetDouble("scale", 1.0);
  const std::string only_dataset = flags.GetString("datasets", "");
  const std::string only_scheme = flags.GetString("schemes", "");

  PrintHeader(spec.experiment, spec.title + " — seconds per run",
              AllSchemeNames());
  for (const std::string& dataset_name : datasets::AllDatasetNames()) {
    if (!only_dataset.empty() && only_dataset != dataset_name) continue;
    const datasets::Dataset dataset =
        MakeBenchDataset(dataset_name, user_scale);

    // Reference load: used only for node selection and subgraph extraction
    // so every scheme receives identical inputs.
    auto reference = MakeStoreByName("CuckooGraph");
    for (const Edge& e : dataset.stream) reference->InsertEdge(e.u, e.v);
    const std::vector<NodeId> top_nodes =
        analytics::TopDegreeNodes(*reference, spec.subgraph_nodes);
    const std::vector<Edge> subgraph_edges =
        spec.subgraph_only ? analytics::InducedSubgraph(*reference, top_nodes)
                           : std::vector<Edge>();

    std::vector<std::string> row{dataset_name};
    for (const std::string& scheme : AllSchemeNames()) {
      if (!only_scheme.empty() && only_scheme != scheme) {
        row.push_back("-");
        continue;
      }
      auto store = MakeStoreByName(scheme);
      if (spec.subgraph_only) {
        for (const Edge& e : subgraph_edges) store->InsertEdge(e.u, e.v);
      } else {
        for (const Edge& e : dataset.stream) store->InsertEdge(e.u, e.v);
      }
      WallTimer timer;
      spec.kernel(*store, top_nodes);
      row.push_back(FmtSeconds(timer.ElapsedSeconds()));
    }
    PrintRow(spec.experiment, row);
  }
  return 0;
}

}  // namespace cuckoograph::bench
