#include "analytics_bench_util.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "analytics/common.h"
#include "baselines/store_factory.h"
#include "bench_util.h"
#include "common/flags.h"
#include "common/timer.h"
#include "datasets/datasets.h"

namespace cuckoograph::bench {

int RunAnalyticsFigure(int argc, char** argv,
                       const AnalyticsFigureSpec& spec) {
  const Flags flags(argc, argv);
  const double user_scale = flags.GetDouble("scale", 1.0);
  const std::string only_dataset = flags.GetString("datasets", "");
  // --schemes takes a comma-separated subset; validation (with the list of
  // valid names on error) is the factory's, same as MakeStoreByName.
  std::vector<std::string> selected;
  try {
    selected = ParseSchemesFlag(flags.GetString("schemes", ""));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s: %s\n", spec.experiment.c_str(), e.what());
    return 2;
  }
  MaybeOpenCsvFromFlags(flags);

  const auto is_selected = [&selected](const std::string& scheme) {
    return std::find(selected.begin(), selected.end(), scheme) !=
           selected.end();
  };

  analytics::CsrSnapshot::Options snapshot_opts;
  snapshot_opts.with_weights = spec.needs_weights;

  PrintHeader(spec.experiment,
              spec.title + " — seconds per run (snapshot + kernel)",
              AllSchemeNames());
  for (const std::string& dataset_name : datasets::AllDatasetNames()) {
    if (!only_dataset.empty() && only_dataset != dataset_name) continue;
    const datasets::Dataset dataset =
        MakeBenchDataset(dataset_name, user_scale);

    // Reference load + snapshot: used only for node selection and subgraph
    // extraction so every scheme receives identical inputs.
    auto reference = MakeStoreByName("CuckooGraph");
    reference->InsertEdges(dataset.stream);
    const analytics::CsrSnapshot reference_snapshot =
        analytics::CsrSnapshot::FromStore(*reference);
    const std::vector<NodeId> top_nodes =
        analytics::TopDegreeNodes(reference_snapshot, spec.subgraph_nodes);
    const std::vector<Edge> subgraph_edges =
        spec.subgraph_only
            ? analytics::InducedSubgraph(reference_snapshot, top_nodes)
            : std::vector<Edge>();

    std::vector<std::string> row{dataset_name};
    for (const std::string& scheme : AllSchemeNames()) {
      if (!is_selected(scheme)) {
        row.push_back("-");
        continue;
      }
      auto store = MakeStoreByName(scheme);
      if (spec.needs_weights && !store->Capabilities().weighted) {
        row.push_back("-");  // the scheme cannot serve this kernel
        continue;
      }
      store->InsertEdges(spec.subgraph_only ? Span<const Edge>(subgraph_edges)
                                            : Span<const Edge>(dataset.stream));
      WallTimer timer;
      const analytics::CsrSnapshot snapshot =
          analytics::CsrSnapshot::FromStore(*store, snapshot_opts);
      spec.kernel(snapshot, top_nodes);
      row.push_back(FmtSeconds(timer.ElapsedSeconds()));
    }
    PrintRow(spec.experiment, row);
  }
  CloseCsv();
  return 0;
}

}  // namespace cuckoograph::bench
