// Shared runner for the parameter-tuning figures (Figures 2-4) and the
// DENYLIST ablation (Figure 5). Reproduces the Section V-B methodology on
// the CAIDA-like stream: batch-insert measuring cumulative insertion
// throughput at checkpoints, re-query the full stream prefix at each
// checkpoint (so qry@N measures the N-item structure), and sample memory
// while inserting de-duplicated edges.
#ifndef CUCKOOGRAPH_BENCH_PARAM_SWEEP_UTIL_H_
#define CUCKOOGRAPH_BENCH_PARAM_SWEEP_UTIL_H_

#include <string>
#include <utility>
#include <vector>

#include "core/config.h"

namespace cuckoograph::bench {

// One sweep variant: a legend label ("d=8") and its configuration.
using ParamVariant = std::pair<std::string, Config>;

// Runs all variants and prints the three blocks of the figure. `experiment`
// tags the rows (e.g. "fig2"). Flags: --scale, --checkpoints, --csv.
int RunParamSweep(int argc, char** argv, const std::string& experiment,
                  const std::string& what,
                  const std::vector<ParamVariant>& variants);

}  // namespace cuckoograph::bench

#endif  // CUCKOOGRAPH_BENCH_PARAM_SWEEP_UTIL_H_
