// Figure 9(a)-(g): memory usage versus number of inserted items on every
// dataset (Section V-D methodology step 4: de-duplicate first, insert one
// by one, sample the memory footprint as insertion progresses).
#include <algorithm>
#include <memory>

#include "baselines/store_factory.h"
#include "bench_util.h"
#include "common/flags.h"
#include "datasets/datasets.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  const Flags flags(argc, argv);
  const double user_scale = flags.GetDouble("scale", 1.0);
  const int checkpoints =
      std::max(1, static_cast<int>(flags.GetInt("checkpoints", 5)));
  bench::MaybeOpenCsvFromFlags(flags);

  for (const std::string& dataset_name : datasets::AllDatasetNames()) {
    const datasets::Dataset dataset =
        bench::MakeBenchDataset(dataset_name, user_scale);
    const std::vector<Edge> distinct = datasets::DedupEdges(dataset.stream);
    bench::PrintHeader("fig9",
                       "Memory usage (MB) vs #inserted dedup edges — " +
                           dataset_name,
                       AllSchemeNames());
    // Sample after each fraction i/checkpoints of the distinct edges.
    std::vector<std::unique_ptr<GraphStore>> stores;
    for (const std::string& scheme : AllSchemeNames()) {
      stores.push_back(MakeStoreByName(scheme));
    }
    size_t cursor = 0;
    for (int cp = 1; cp <= checkpoints; ++cp) {
      const size_t until = distinct.size() * static_cast<size_t>(cp) /
                           static_cast<size_t>(checkpoints);
      // Edge-at-a-time on purpose: batch overrides (SortedVector's
      // sort-merge builds tight-fit vectors) would shift the memory curve
      // away from the stream-processing regime this figure measures.
      for (auto& store : stores) {
        for (size_t i = cursor; i < until; ++i) {
          store->InsertEdge(distinct[i].u, distinct[i].v);
        }
      }
      cursor = until;
      std::vector<std::string> row{dataset_name + "@" +
                                   std::to_string(until)};
      for (auto& store : stores) {
        row.push_back(bench::FmtMb(store->MemoryBytes()));
      }
      bench::PrintRow("fig9", row);
    }
  }
  bench::CloseCsv();
  return 0;
}
