// Figure 17: CuckooGraph-on-Redis throughput (Section V-F). Every
// operation round-trips through the simulated Redis host: RESP encoding,
// request parsing, command dispatch and reply decoding — the protocol
// overhead responsible for the drop from CPU-native Mops to the
// ~0.04-0.05 Mops range the paper reports on a real Redis.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/timer.h"
#include "datasets/datasets.h"
#include "redis_sim/cuckoograph_module.h"
#include "redis_sim/module_host.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  using redis_sim::CuckooGraphModule;
  using redis_sim::RedisServerSim;
  using redis_sim::SimClient;
  const Flags flags(argc, argv);
  const double user_scale = flags.GetDouble("scale", 1.0);
  bench::MaybeOpenCsvFromFlags(flags);

  bench::PrintHeader("fig17",
                     "CuckooGraph on Redis-sim (Mops through RESP)",
                     {"Insertion", "Query", "Deletion"});
  for (const std::string& dataset_name :
       {std::string("CAIDA"), std::string("StackOverflow")}) {
    const datasets::Dataset dataset =
        bench::MakeBenchDataset(dataset_name, user_scale);
    const std::vector<Edge> distinct = datasets::DedupEdges(dataset.stream);

    RedisServerSim server;
    CuckooGraphModule module;
    module.Register(&server);
    SimClient client(&server);

    auto run = [&client](const char* cmd, const std::vector<Edge>& edges) {
      WallTimer timer;
      for (const Edge& e : edges) {
        client.Execute({cmd, std::to_string(e.u), std::to_string(e.v)});
      }
      return Mops(edges.size(), timer.ElapsedSeconds());
    };

    const double insert_mops = run("CG.INSERT", dataset.stream);
    const double query_mops = run("CG.QUERY", dataset.stream);
    const double delete_mops = run("CG.DEL", distinct);
    bench::PrintRow("fig17",
                    {dataset_name, bench::FmtMops(insert_mops),
                     bench::FmtMops(query_mops),
                     bench::FmtMops(delete_mops)});
  }
  std::printf("(paper: ~0.04-0.05 Mops on real Redis, whose native peak "
              "was ~0.16 Mops on the authors' server)\n");
  bench::CloseCsv();
  return 0;
}
