// Figure 17: CuckooGraph-on-Redis throughput (Section V-F). Every
// operation round-trips through the simulated Redis host: RESP encoding,
// request parsing, command dispatch and reply decoding — the protocol
// overhead responsible for the drop from CPU-native Mops to the
// ~0.04-0.05 Mops range the paper reports on a real Redis.
//
// The CSV schema (Insertion / Query / Deletion / Mixed(zipf)) matches
// bench_served_traffic, so the in-process sim and the epoll TCP server
// numbers diff column-for-column: same Zipf mix generator, same oracle
// reply check, minus the kernel socket.
#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/timer.h"
#include "datasets/datasets.h"
#include "redis_sim/cuckoograph_module.h"
#include "redis_sim/module_host.h"
#include "served_workload.h"

namespace cuckoograph {
namespace {

using bench::MixedOp;
using bench::OpKind;
using redis_sim::RespType;
using redis_sim::RespValue;
using redis_sim::SimClient;

const char* CommandFor(OpKind kind) {
  switch (kind) {
    case OpKind::kInsert:
      return "CG.INSERT";
    case OpKind::kQuery:
      return "CG.QUERY";
    case OpKind::kDelete:
      return "CG.DEL";
  }
  return "CG.QUERY";  // unreachable
}

// Runs the shared Zipf read/write mix through the sim, oracle-checking
// every reply, on a fresh server so the oracle starts from empty.
// Returns Mops, or a negative value if any reply diverged.
double RunMixedPhase(size_t n, double alpha, double read_frac) {
  redis_sim::RedisServerSim server;
  redis_sim::CuckooGraphModule module;
  module.Register(&server);
  SimClient client(&server);

  const std::vector<MixedOp> ops =
      bench::MakeZipfMix(/*seed=*/4242, n, /*base=*/1, /*range=*/4096,
                         /*values=*/4096, alpha, read_frac);
  std::unordered_set<uint64_t> live;
  size_t mismatches = 0;
  WallTimer timer;
  for (const MixedOp& op : ops) {
    const RespValue reply = client.Execute(
        {CommandFor(op.kind), std::to_string(op.e.u), std::to_string(op.e.v)});
    const long long expected = bench::OracleReply(&live, op.kind, op.e);
    if (reply.type != RespType::kInteger || reply.integer != expected) {
      ++mismatches;
    }
  }
  const double mops = Mops(ops.size(), timer.ElapsedSeconds());
  if (mismatches != 0) {
    std::fprintf(stderr, "FAIL: mixed phase: %zu replies diverged\n",
                 mismatches);
    return -1.0;
  }
  return mops;
}

}  // namespace
}  // namespace cuckoograph

int main(int argc, char** argv) {
  using namespace cuckoograph;
  using redis_sim::CuckooGraphModule;
  using redis_sim::RedisServerSim;
  using redis_sim::SimClient;
  const Flags flags(argc, argv);
  const double user_scale = flags.GetDouble("scale", 1.0);
  const double alpha = flags.GetDouble("alpha", 1.5);
  const double read_frac = flags.GetDouble("reads", 0.5);
  bench::MaybeOpenCsvFromFlags(flags);

  bench::PrintHeader("fig17",
                     "CuckooGraph on Redis-sim (Mops through RESP)",
                     bench::ServedSchemaColumns());
  bool ok = true;
  for (const std::string& dataset_name :
       {std::string("CAIDA"), std::string("StackOverflow")}) {
    const datasets::Dataset dataset =
        bench::MakeBenchDataset(dataset_name, user_scale);
    const std::vector<Edge> distinct = datasets::DedupEdges(dataset.stream);

    RedisServerSim server;
    CuckooGraphModule module;
    module.Register(&server);
    SimClient client(&server);

    auto run = [&client](const char* cmd, const std::vector<Edge>& edges) {
      WallTimer timer;
      for (const Edge& e : edges) {
        client.Execute({cmd, std::to_string(e.u), std::to_string(e.v)});
      }
      return Mops(edges.size(), timer.ElapsedSeconds());
    };

    const double insert_mops = run("CG.INSERT", dataset.stream);
    const double query_mops = run("CG.QUERY", dataset.stream);
    const double delete_mops = run("CG.DEL", distinct);
    const double mixed_mops =
        RunMixedPhase(dataset.stream.size(), alpha, read_frac);
    ok = ok && mixed_mops >= 0.0;
    bench::PrintRow("fig17",
                    {dataset_name, bench::FmtMops(insert_mops),
                     bench::FmtMops(query_mops),
                     bench::FmtMops(delete_mops),
                     bench::FmtMops(mixed_mops < 0.0 ? 0.0 : mixed_mops)});
  }
  std::printf("(paper: ~0.04-0.05 Mops on real Redis, whose native peak "
              "was ~0.16 Mops on the authors' server; diff against "
              "bench_served_traffic --csv for the over-socket numbers)\n");
  bench::CloseCsv();
  return ok ? 0 : 1;
}
