// Figure 16: running time of Local Clustering Coefficient (V-E7).
// Methodology: extract the top-degree subgraph, pre-compute all neighbours
// of each node, count neighbourhood links with edge queries.
#include "analytics/lcc.h"
#include "analytics_bench_util.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  bench::AnalyticsFigureSpec spec;
  spec.experiment = "fig16";
  spec.title = "Local Clustering Coefficient running time (V-E7)";
  spec.subgraph_nodes = 250;
  spec.subgraph_only = true;
  spec.kernel = [](const GraphStore& store,
                   const std::vector<NodeId>& nodes) {
    const auto lcc = analytics::LocalClusteringCoefficient(store, nodes);
    (void)lcc.size();
  };
  return bench::RunAnalyticsFigure(argc, argv, spec);
}
