// Figure 16: running time of Local Clustering Coefficient (V-E7).
// Methodology: extract the top-degree subgraph, insert it into each scheme,
// snapshot it, count neighbourhood links with CSR edge probes.
#include "analytics/lcc.h"
#include "analytics_bench_util.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  bench::AnalyticsFigureSpec spec;
  spec.experiment = "fig16";
  spec.title = "Local Clustering Coefficient running time (V-E7)";
  spec.subgraph_nodes = 250;
  spec.subgraph_only = true;
  spec.kernel = [](const analytics::CsrSnapshot& graph,
                   const std::vector<NodeId>& nodes) {
    const auto result = analytics::lcc::Run(graph, nodes);
    (void)result.per_node.size();
  };
  return bench::RunAnalyticsFigure(argc, argv, spec);
}
