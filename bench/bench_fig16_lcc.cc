// Figure 16: running time of Local Clustering Coefficient (V-E7).
// Methodology: extract the top-degree subgraph, insert it into each scheme,
// snapshot it, count neighbourhood links with CSR edge probes. Scores are
// oracle-checked to 1e-9 per node (the parallel kernel is bit-identical
// by contract; the tolerance is headroom, not a requirement).
#include "analytics/lcc.h"
#include "analytics_bench_util.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  bench::AnalyticsFigureSpec spec;
  spec.experiment = "fig16";
  spec.title = "Local Clustering Coefficient running time (V-E7)";
  spec.subgraph_nodes = 250;
  spec.subgraph_only = true;
  spec.tolerance = 1e-9;
  spec.kernel = [](const analytics::CsrSnapshot& graph,
                   const std::vector<NodeId>& nodes,
                   const analytics::KernelOptions& opts) {
    return analytics::lcc::Run(graph, nodes, opts);
  };
  return bench::RunAnalyticsFigure(argc, argv, spec);
}
