// Figure 2: effect of the cells-per-bucket parameter d in {4, 8, 16, 32}
// on insertion throughput, query throughput and memory (Section V-B).
#include "param_sweep_util.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  std::vector<bench::ParamVariant> variants;
  for (int d : {4, 8, 16, 32}) {
    Config config;
    config.cells_per_bucket = d;
    variants.emplace_back("d=" + std::to_string(d), config);
  }
  return bench::RunParamSweep(argc, argv, "fig2", "tuning d", variants);
}
