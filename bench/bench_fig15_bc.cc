// Figure 15: running time of Betweenness Centrality / Brandes (V-E6).
// Methodology: extract the top-degree subgraph, insert it into each scheme,
// snapshot it, run Brandes with the subgraph nodes as pivots. Scores are
// oracle-checked to 1e-9 per node; the kernel is contractually sequential
// at any thread budget (--threads still parallelizes the snapshot build).
#include "analytics/betweenness.h"
#include "analytics_bench_util.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  bench::AnalyticsFigureSpec spec;
  spec.experiment = "fig15";
  spec.title = "Betweenness Centrality (Brandes) running time (V-E6)";
  spec.subgraph_nodes = 400;
  spec.subgraph_only = true;
  spec.tolerance = 1e-9;
  spec.kernel = [](const analytics::CsrSnapshot& graph,
                   const std::vector<NodeId>& nodes,
                   const analytics::KernelOptions& opts) {
    return analytics::betweenness::Run(graph, nodes, opts);
  };
  return bench::RunAnalyticsFigure(argc, argv, spec);
}
