// Figure 15: running time of Betweenness Centrality / Brandes (V-E6).
// Methodology: extract the top-degree subgraph, insert it into each scheme,
// run the Brandes algorithm.
#include "analytics/betweenness.h"
#include "analytics_bench_util.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  bench::AnalyticsFigureSpec spec;
  spec.experiment = "fig15";
  spec.title = "Betweenness Centrality (Brandes) running time (V-E6)";
  spec.subgraph_nodes = 400;
  spec.subgraph_only = true;
  spec.kernel = [](const GraphStore& store,
                   const std::vector<NodeId>& nodes) {
    const auto bc = analytics::BetweennessCentrality(store, nodes);
    (void)bc.size();
  };
  return bench::RunAnalyticsFigure(argc, argv, spec);
}
