// Shared plumbing for the figure/table reproduction benches: per-dataset
// default scales (sized so every binary finishes quickly on one core while
// keeping the paper's relative shapes), row printing, and basic-task
// drivers used by Figures 6-9.
#ifndef CUCKOOGRAPH_BENCH_BENCH_UTIL_H_
#define CUCKOOGRAPH_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/timer.h"
#include "common/types.h"
#include "core/graph_store.h"
#include "datasets/datasets.h"

namespace cuckoograph::bench {

// Scales each Table IV profile down to a laptop-sized default stream
// (roughly 50k-500k arrivals). `user_scale` multiplies the default; pass
// --scale=50 (for example) to approach the paper's full sizes.
double DatasetScale(const std::string& name, double user_scale);

// Generates a dataset at bench scale.
datasets::Dataset MakeBenchDataset(const std::string& name,
                                   double user_scale);

// Prints the standard bench header: figure id, paper reference, columns.
void PrintHeader(const std::string& experiment, const std::string& title,
                 const std::vector<std::string>& columns);

// Prints one aligned row followed by a machine-readable CSV echo.
void PrintRow(const std::string& experiment,
              const std::vector<std::string>& cells);

// ---- CSV capture (--csv <path>) -------------------------------------------
// When a capture file is open, every PrintHeader writes a column row and
// every PrintRow appends a data row to it, in addition to stdout.

// Opens (truncates) `path` as the CSV capture target. Returns false and
// leaves capture off when the file cannot be created.
bool OpenCsv(const std::string& path);

// Flushes and closes the capture file (no-op when none is open).
void CloseCsv();

// Opens the file named by --csv when the flag is present.
void MaybeOpenCsvFromFlags(const Flags& flags);

// Formats helpers.
std::string FmtMops(double mops);
std::string FmtMb(size_t bytes);
std::string FmtSeconds(double seconds);

// ---- Basic-task drivers (Figures 6-9) ------------------------------------

struct BasicTaskResult {
  double insert_mops = 0.0;
  double query_mops = 0.0;
  double delete_mops = 0.0;
  size_t memory_bytes = 0;  // after all distinct edges are inserted
};

// Which phases to time. Insertion always runs (it populates the store);
// kQuery adds the query pass, kDelete adds the deletion pass (without the
// query pass fig8 does not report), kAll runs all three.
enum class BasicPhase { kInsert, kQuery, kDelete, kAll };

// Runs the Section V-D methodology on one store, timing each phase edge-
// at-a-time: insert the full stream, query every stream edge, delete the
// distinct edges — running only the phases `phases` selects, so a figure
// pays for exactly what it reports. The deletion phase is also skipped
// (delete_mops stays 0) when the store's Capabilities() rule deletions
// out. Callers looping over schemes should pass the dataset's dedup list
// as `distinct` so it is not recomputed per scheme.
BasicTaskResult RunBasicTasks(GraphStore& store,
                              const datasets::Dataset& dataset,
                              BasicPhase phases = BasicPhase::kAll,
                              const std::vector<Edge>* distinct = nullptr);

}  // namespace cuckoograph::bench

#endif  // CUCKOOGRAPH_BENCH_BENCH_UTIL_H_
