// Shared plumbing for the figure/table reproduction benches: per-dataset
// default scales (sized so every binary finishes quickly on one core while
// keeping the paper's relative shapes), row printing, and basic-task
// drivers used by Figures 6-9.
#ifndef CUCKOOGRAPH_BENCH_BENCH_UTIL_H_
#define CUCKOOGRAPH_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/timer.h"
#include "common/types.h"
#include "core/graph_store.h"
#include "datasets/datasets.h"

namespace cuckoograph::bench {

// Scales each Table IV profile down to a laptop-sized default stream
// (roughly 50k-500k arrivals). `user_scale` multiplies the default; pass
// --scale=50 (for example) to approach the paper's full sizes.
double DatasetScale(const std::string& name, double user_scale);

// Generates a dataset at bench scale.
datasets::Dataset MakeBenchDataset(const std::string& name,
                                   double user_scale);

// Prints the standard bench header: figure id, paper reference, columns.
void PrintHeader(const std::string& experiment, const std::string& title,
                 const std::vector<std::string>& columns);

// Prints one aligned row followed by a machine-readable CSV echo.
void PrintRow(const std::string& experiment,
              const std::vector<std::string>& cells);

// Formats helpers.
std::string FmtMops(double mops);
std::string FmtMb(size_t bytes);
std::string FmtSeconds(double seconds);

// ---- Basic-task drivers (Figures 6-9) ------------------------------------

struct BasicTaskResult {
  double insert_mops = 0.0;
  double query_mops = 0.0;
  double delete_mops = 0.0;
  size_t memory_bytes = 0;  // after all distinct edges are inserted
};

// Runs the Section V-D methodology on one store: insert the full stream,
// query every stream edge, then delete the distinct edges one by one.
BasicTaskResult RunBasicTasks(GraphStore& store,
                              const datasets::Dataset& dataset);

}  // namespace cuckoograph::bench

#endif  // CUCKOOGRAPH_BENCH_BENCH_UTIL_H_
