// Section IV-A verification: the average number of insertions (placement
// attempts + kicks) per item in L-CHT and S-CHT while inserting the
// NotreDame-like dataset from minimum size, expansions included. The paper
// reports about 1.017 (L-CHT) and 1.006 (S-CHT), far below T = 250.
#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "core/cuckoo_graph.h"
#include "datasets/datasets.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  const Flags flags(argc, argv);
  const double user_scale = flags.GetDouble("scale", 1.0);

  const datasets::Dataset dataset =
      bench::MakeBenchDataset("NotreDame", user_scale);

  Config config;
  config.l_initial_buckets = 1;  // expand from the minimum length
  config.s_initial_buckets = 1;
  CuckooGraph graph(config);
  for (const Edge& e : dataset.stream) graph.InsertEdge(e.u, e.v);

  const GraphStats st = graph.stats();
  // "Insertions per item": placement rounds per placed item, i.e. 1 plus
  // the average number of kick-out loops — the quantity the paper compares
  // against T. Expansion-time re-placements are included in the base.
  const double l_placements =
      static_cast<double>(st.l.insert_attempts + st.l.rehash_moves);
  const double l_per_item =
      (l_placements + static_cast<double>(st.l.kicks)) / l_placements;
  const double s_placements =
      static_cast<double>(st.s.insert_attempts + st.s.rehash_moves);
  const double s_per_item =
      s_placements == 0.0
          ? 1.0
          : (s_placements + static_cast<double>(st.s.kicks)) / s_placements;

  bench::PrintHeader("theorem1",
                     "avg insertions per item (paper: ~1.017 L, ~1.006 S)",
                     {"value"});
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", l_per_item);
  bench::PrintRow("theorem1", {"L-CHT", buf});
  std::snprintf(buf, sizeof(buf), "%.3f", s_per_item);
  bench::PrintRow("theorem1", {"S-CHT", buf});
  std::printf("edges=%zu nodes=%zu l_kicks=%llu s_kicks=%llu (T=%d)\n",
              graph.NumEdges(), graph.NumNodes(),
              static_cast<unsigned long long>(st.l.kicks),
              static_cast<unsigned long long>(st.s.kicks),
              graph.config().max_kicks);
  return 0;
}
