// Figure 8: deletion throughput (Mops) of all schemes on the seven datasets
// (Section V-D methodology step 3: delete edges one by one).
#include "baselines/store_factory.h"
#include "bench_util.h"
#include "common/flags.h"
#include "common/timer.h"
#include "datasets/datasets.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  const Flags flags(argc, argv);
  const double user_scale = flags.GetDouble("scale", 1.0);

  bench::PrintHeader("fig8", "Deletion throughput (Mops, higher is better)",
                     AllSchemeNames());
  for (const std::string& dataset_name : datasets::AllDatasetNames()) {
    const datasets::Dataset dataset =
        bench::MakeBenchDataset(dataset_name, user_scale);
    const std::vector<Edge> distinct = datasets::DedupEdges(dataset.stream);
    std::vector<std::string> row{dataset_name};
    for (const std::string& scheme : AllSchemeNames()) {
      auto store = MakeStoreByName(scheme);
      for (const Edge& e : dataset.stream) store->InsertEdge(e.u, e.v);
      WallTimer timer;
      for (const Edge& e : distinct) store->DeleteEdge(e.u, e.v);
      row.push_back(
          bench::FmtMops(Mops(distinct.size(), timer.ElapsedSeconds())));
    }
    bench::PrintRow("fig8", row);
  }
  return 0;
}
