// Figure 8: deletion throughput (Mops) of all schemes on the seven datasets
// (Section V-D methodology step 3: delete edges one by one). Schemes whose
// Capabilities() rule deletions out print "-" instead of a number.
#include "baselines/store_factory.h"
#include "bench_util.h"
#include "common/flags.h"
#include "datasets/datasets.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  const Flags flags(argc, argv);
  const double user_scale = flags.GetDouble("scale", 1.0);
  bench::MaybeOpenCsvFromFlags(flags);

  bench::PrintHeader("fig8", "Deletion throughput (Mops, higher is better)",
                     AllSchemeNames());
  for (const std::string& dataset_name : datasets::AllDatasetNames()) {
    const datasets::Dataset dataset =
        bench::MakeBenchDataset(dataset_name, user_scale);
    const std::vector<Edge> distinct = datasets::DedupEdges(dataset.stream);
    std::vector<std::string> row{dataset_name};
    for (const std::string& scheme : AllSchemeNames()) {
      auto store = MakeStoreByName(scheme);
      if (!store->Capabilities().deletions) {
        row.push_back("-");
        continue;
      }
      const bench::BasicTaskResult result = bench::RunBasicTasks(
          *store, dataset, bench::BasicPhase::kDelete, &distinct);
      row.push_back(bench::FmtMops(result.delete_mops));
    }
    bench::PrintRow("fig8", row);
  }
  bench::CloseCsv();
  return 0;
}
