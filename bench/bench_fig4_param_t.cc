// Figure 4: effect of the maximum kick-loop count T in {50, 150, 250, 350}
// (Section V-B).
#include "param_sweep_util.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  std::vector<bench::ParamVariant> variants;
  for (int t : {50, 150, 250, 350}) {
    Config config;
    config.max_kicks = t;
    variants.emplace_back("T=" + std::to_string(t), config);
  }
  return bench::RunParamSweep(argc, argv, "fig4", "tuning T", variants);
}
