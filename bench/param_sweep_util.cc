#include "param_sweep_util.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/timer.h"
#include "core/weighted_cuckoo_graph.h"
#include "datasets/datasets.h"

namespace cuckoograph::bench {

int RunParamSweep(int argc, char** argv, const std::string& experiment,
                  const std::string& what,
                  const std::vector<ParamVariant>& variants) {
  const Flags flags(argc, argv);
  const double user_scale = flags.GetDouble("scale", 1.0);
  const int checkpoints =
      std::max(1, static_cast<int>(flags.GetInt("checkpoints", 5)));
  MaybeOpenCsvFromFlags(flags);

  // The paper tunes on CAIDA; it has duplicates, so the extended
  // (weighted) version of CuckooGraph is used (Section V-A).
  const datasets::Dataset dataset = MakeBenchDataset("CAIDA", user_scale);
  const std::vector<Edge> distinct = datasets::DedupEdges(dataset.stream);

  std::vector<std::string> columns;
  columns.reserve(variants.size());
  for (const auto& [label, config] : variants) columns.push_back(label);

  // (a) Insertion throughput vs #inserted items.
  PrintHeader(experiment, what + " — (a) insertion throughput (Mops)",
              columns);
  std::vector<std::vector<double>> insert_mops(
      static_cast<size_t>(checkpoints));
  std::vector<std::vector<double>> query_mops(
      static_cast<size_t>(checkpoints));
  for (const auto& [label, config] : variants) {
    WeightedCuckooGraph graph(config);
    size_t cursor = 0;
    double insert_seconds = 0.0;
    size_t hits = 0;
    for (int cp = 1; cp <= checkpoints; ++cp) {
      const size_t until = dataset.stream.size() * static_cast<size_t>(cp) /
                           static_cast<size_t>(checkpoints);
      WallTimer timer;
      for (size_t i = cursor; i < until; ++i) {
        graph.AddEdge(dataset.stream[i].u, dataset.stream[i].v);
      }
      insert_seconds += timer.ElapsedSeconds();
      insert_mops[static_cast<size_t>(cp - 1)].push_back(
          Mops(until, insert_seconds));
      // (b) Query throughput at this checkpoint: the structure holds
      // `until` arrivals, so qry@N really measures the N-item structure.
      timer.Reset();
      for (size_t i = 0; i < until; ++i) {
        hits += graph.QueryWeight(dataset.stream[i].u, dataset.stream[i].v) >
                0;
      }
      query_mops[static_cast<size_t>(cp - 1)].push_back(
          Mops(until, timer.ElapsedSeconds()));
      cursor = until;
    }
    (void)hits;
  }
  for (int cp = 1; cp <= checkpoints; ++cp) {
    const size_t until = dataset.stream.size() * static_cast<size_t>(cp) /
                         static_cast<size_t>(checkpoints);
    std::vector<std::string> row{"ins@" + std::to_string(until)};
    for (double m : insert_mops[static_cast<size_t>(cp - 1)]) {
      row.push_back(FmtMops(m));
    }
    PrintRow(experiment, row);
  }

  PrintHeader(experiment, what + " — (b) query throughput (Mops)", columns);
  for (int cp = 1; cp <= checkpoints; ++cp) {
    const size_t until = dataset.stream.size() * static_cast<size_t>(cp) /
                         static_cast<size_t>(checkpoints);
    std::vector<std::string> row{"qry@" + std::to_string(until)};
    for (double m : query_mops[static_cast<size_t>(cp - 1)]) {
      row.push_back(FmtMops(m));
    }
    PrintRow(experiment, row);
  }

  // (c) Memory usage vs #inserted de-duplicated edges.
  PrintHeader(experiment, what + " — (c) memory usage (MB)", columns);
  std::vector<std::unique_ptr<WeightedCuckooGraph>> graphs;
  for (const auto& [label, config] : variants) {
    graphs.push_back(std::make_unique<WeightedCuckooGraph>(config));
  }
  size_t cursor = 0;
  for (int cp = 1; cp <= checkpoints; ++cp) {
    const size_t until = distinct.size() * static_cast<size_t>(cp) /
                         static_cast<size_t>(checkpoints);
    for (auto& graph : graphs) {
      for (size_t i = cursor; i < until; ++i) {
        graph->AddEdge(distinct[i].u, distinct[i].v);
      }
    }
    cursor = until;
    std::vector<std::string> row{"mem@" + std::to_string(until)};
    for (auto& graph : graphs) row.push_back(FmtMb(graph->MemoryBytes()));
    PrintRow(experiment, row);
  }
  CloseCsv();
  return 0;
}

}  // namespace cuckoograph::bench
