// Figure 12: running time of Triangle Counting (Section V-E3).
// Methodology: insert the whole dataset; for each of the top-degree nodes,
// enumerate 2-hop successors and probe the closing edges with edge queries.
#include "analytics/triangle_count.h"
#include "analytics_bench_util.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  bench::AnalyticsFigureSpec spec;
  spec.experiment = "fig12";
  spec.title = "Triangle Counting running time (V-E3)";
  spec.subgraph_nodes = 10;  // TC runs per top-degree node
  spec.subgraph_only = false;
  spec.kernel = [](const GraphStore& store,
                   const std::vector<NodeId>& nodes) {
    size_t triangles = 0;
    for (NodeId node : nodes) {
      triangles += analytics::CountTriangles(store, node);
    }
    (void)triangles;
  };
  return bench::RunAnalyticsFigure(argc, argv, spec);
}
