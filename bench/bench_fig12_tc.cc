// Figure 12: running time of Triangle Counting (Section V-E3).
// Methodology: insert the whole dataset, snapshot it; for each top-degree
// node, enumerate 2-hop successors and probe the closing edges (binary
// search over the CSR segments). Counts are oracle-checked exactly —
// integers written disjointly at any thread budget.
#include "analytics/triangle_count.h"
#include "analytics_bench_util.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  bench::AnalyticsFigureSpec spec;
  spec.experiment = "fig12";
  spec.title = "Triangle Counting running time (V-E3)";
  spec.subgraph_nodes = 10;  // TC runs per top-degree node
  spec.subgraph_only = false;
  spec.tolerance = 0.0;
  spec.kernel = [](const analytics::CsrSnapshot& graph,
                   const std::vector<NodeId>& nodes,
                   const analytics::KernelOptions& opts) {
    return analytics::triangle_count::Run(graph, nodes, opts);
  };
  return bench::RunAnalyticsFigure(argc, argv, spec);
}
