// Figure 10: running time of BFS on the seven datasets (Section V-E1).
// Methodology: insert the whole dataset, then BFS from the highest
// total-degree nodes, reporting the average time per traversal.
#include "analytics/bfs.h"
#include "analytics_bench_util.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  bench::AnalyticsFigureSpec spec;
  spec.experiment = "fig10";
  spec.title = "BFS running time (V-E1)";
  spec.subgraph_nodes = 5;  // five top-degree BFS roots, averaged
  spec.subgraph_only = false;
  spec.kernel = [](const GraphStore& store,
                   const std::vector<NodeId>& roots) {
    size_t total_visited = 0;
    for (NodeId root : roots) {
      total_visited += analytics::Bfs(store, root).size();
    }
    // total_visited is intentionally unused beyond keeping the work alive.
    (void)total_visited;
  };
  return bench::RunAnalyticsFigure(argc, argv, spec);
}
