// Figure 10: running time of BFS on the seven datasets (Section V-E1).
// Methodology: insert the whole dataset, snapshot it, then BFS from the
// highest-degree nodes; the cell charges the snapshot build plus the
// traversals. Every cell's depths are oracle-checked (exact — level sets
// are deterministic at any thread budget).
#include "analytics/bfs.h"
#include "analytics_bench_util.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  bench::AnalyticsFigureSpec spec;
  spec.experiment = "fig10";
  spec.title = "BFS running time (V-E1)";
  spec.subgraph_nodes = 5;  // five top-degree BFS roots
  spec.subgraph_only = false;
  spec.tolerance = 0.0;
  spec.kernel = [](const analytics::CsrSnapshot& graph,
                   const std::vector<NodeId>& roots,
                   const analytics::KernelOptions& opts) {
    // Per-root traversals; the oracle sees the last root's depths plus the
    // total visit count across roots.
    analytics::KernelResult combined;
    for (const NodeId root : roots) {
      analytics::KernelResult run =
          analytics::bfs::Run(graph, Span<const NodeId>(&root, 1), opts);
      combined.aggregate += run.aggregate;
      combined.per_node = std::move(run.per_node);
    }
    return combined;
  };
  return bench::RunAnalyticsFigure(argc, argv, spec);
}
