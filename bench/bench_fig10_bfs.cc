// Figure 10: running time of BFS on the seven datasets (Section V-E1).
// Methodology: insert the whole dataset, snapshot it, then BFS from the
// highest-degree nodes; the cell charges the snapshot build plus the
// traversals.
#include "analytics/bfs.h"
#include "analytics_bench_util.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  bench::AnalyticsFigureSpec spec;
  spec.experiment = "fig10";
  spec.title = "BFS running time (V-E1)";
  spec.subgraph_nodes = 5;  // five top-degree BFS roots
  spec.subgraph_only = false;
  spec.kernel = [](const analytics::CsrSnapshot& graph,
                   const std::vector<NodeId>& roots) {
    size_t total_visited = 0;
    for (const NodeId root : roots) {
      total_visited +=
          analytics::bfs::Run(graph, Span<const NodeId>(&root, 1)).aggregate;
    }
    // total_visited is intentionally unused beyond keeping the work alive.
    (void)total_visited;
  };
  return bench::RunAnalyticsFigure(argc, argv, spec);
}
