// Theorem 2 verification (Section IV-A): inserting N edges into L-CHT costs
// at most 3N "dollars" (2.25N expected), where one dollar is one edge
// placement and merges/expansions pay per re-hashed item. We count the
// actual dollars spent while growing from the minimum size.
#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "core/cuckoo_graph.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  const Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("nodes", 500'000));

  Config config;
  config.l_initial_buckets = 1;
  CuckooGraph graph(config);
  // Distinct sources so every insert lands in the L-CHT.
  for (NodeId u = 0; u < n; ++u) graph.InsertEdge(u, u + 1);

  const GraphStats st = graph.stats();
  const double dollars = static_cast<double>(st.l.insert_attempts +
                                             st.l.rehash_moves);
  const double ratio = dollars / static_cast<double>(n);

  bench::PrintHeader(
      "theorem2", "amortized L-CHT insertion cost (bound: <=3N, E<=2.25N)",
      {"value"});
  bench::PrintRow("theorem2", {"N", std::to_string(n)});
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", dollars);
  bench::PrintRow("theorem2", {"dollars", buf});
  std::snprintf(buf, sizeof(buf), "%.3f", ratio);
  bench::PrintRow("theorem2", {"dollars/N", buf});
  std::printf("merges=%llu expansions=%llu  (theorem bound holds: %s)\n",
              static_cast<unsigned long long>(st.l.merges),
              static_cast<unsigned long long>(st.l.expansions),
              ratio <= 3.0 ? "yes" : "NO");
  return ratio <= 3.0 ? 0 : 1;
}
