// Figure 11: running time of SSSP / Dijkstra (Section V-E2).
// Methodology: extract the top-degree subgraph, pick the 10 highest
// total-degree nodes as sources, run Dijkstra from each, report the total.
// The relaxation step probes candidate edges with edge queries, which is
// why this task separates the schemes by edge-query speed.
#include "analytics/sssp.h"
#include "analytics_bench_util.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  bench::AnalyticsFigureSpec spec;
  spec.experiment = "fig11";
  spec.title = "SSSP (Dijkstra x10 sources) running time (V-E2)";
  spec.subgraph_nodes = 100;
  spec.subgraph_only = false;  // whole dataset is inserted (Section V-E2)
  spec.kernel = [](const GraphStore& store,
                   const std::vector<NodeId>& nodes) {
    const size_t sources = nodes.size() < 10 ? nodes.size() : 10;
    for (size_t s = 0; s < sources; ++s) {
      analytics::SsspDijkstra(store, nodes[s], nodes);
    }
  };
  return bench::RunAnalyticsFigure(argc, argv, spec);
}
