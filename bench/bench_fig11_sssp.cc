// Figure 11: running time of SSSP / Dijkstra (Section V-E2).
// Methodology: insert the whole dataset (duplicate arrivals accumulate as
// weight on weighted schemes), snapshot it with weights, run Dijkstra from
// each of the 10 highest-degree nodes. Schemes without
// Capabilities().weighted cannot serve the weighted snapshot and skip the
// cell.
#include "analytics/sssp.h"
#include "analytics_bench_util.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  bench::AnalyticsFigureSpec spec;
  spec.experiment = "fig11";
  spec.title = "SSSP (Dijkstra x10 sources) running time (V-E2)";
  spec.subgraph_nodes = 100;
  spec.subgraph_only = false;  // whole dataset is inserted (Section V-E2)
  spec.needs_weights = true;
  spec.kernel = [](const analytics::CsrSnapshot& graph,
                   const std::vector<NodeId>& nodes) {
    const size_t sources = nodes.size() < 10 ? nodes.size() : 10;
    for (size_t s = 0; s < sources; ++s) {
      analytics::sssp::Run(graph, Span<const NodeId>(&nodes[s], 1));
    }
  };
  return bench::RunAnalyticsFigure(argc, argv, spec);
}
