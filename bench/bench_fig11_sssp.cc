// Figure 11: running time of SSSP (Section V-E2).
// Methodology: insert the whole dataset (duplicate arrivals accumulate as
// weight on weighted schemes), snapshot it with weights, run SSSP from
// each of the 10 highest-degree nodes — Dijkstra at 1 thread, parallel
// delta-stepping under --threads. Schemes without Capabilities().weighted
// cannot serve the weighted snapshot and skip the cell. Distances are
// oracle-checked exactly: the fixed point is unique, whatever the path.
#include "analytics/sssp.h"
#include "analytics_bench_util.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  bench::AnalyticsFigureSpec spec;
  spec.experiment = "fig11";
  spec.title = "SSSP (x10 sources) running time (V-E2)";
  spec.subgraph_nodes = 100;
  spec.subgraph_only = false;  // whole dataset is inserted (Section V-E2)
  spec.needs_weights = true;
  spec.tolerance = 0.0;
  spec.kernel = [](const analytics::CsrSnapshot& graph,
                   const std::vector<NodeId>& nodes,
                   const analytics::KernelOptions& opts) {
    const size_t sources = nodes.size() < 10 ? nodes.size() : 10;
    analytics::KernelResult combined;
    for (size_t s = 0; s < sources; ++s) {
      analytics::KernelResult run =
          analytics::sssp::Run(graph, Span<const NodeId>(&nodes[s], 1), opts);
      combined.aggregate += run.aggregate;
      combined.per_node = std::move(run.per_node);
    }
    return combined;
  };
  return bench::RunAnalyticsFigure(argc, argv, spec);
}
