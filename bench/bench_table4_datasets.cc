// Table IV: the dataset roster. Generates each dataset at bench scale and
// prints the measured statistics in the paper's columns so the synthetic
// stand-ins can be compared against the originals' profile.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/flags.h"
#include "datasets/datasets.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  const Flags flags(argc, argv);
  const double user_scale = flags.GetDouble("scale", 1.0);

  bench::PrintHeader("table4", "Graph datasets (generated at bench scale)",
                     {"Weighted?", "#Nodes", "#Edges", "#Edges(dedup)",
                      "Avg.Deg", "Max.Deg", "Density"});
  for (const std::string& name : datasets::AllDatasetNames()) {
    const datasets::Dataset dataset =
        bench::MakeBenchDataset(name, user_scale);
    const datasets::DatasetStats stats = datasets::ComputeStats(dataset);
    char avg[32], density[32];
    std::snprintf(avg, sizeof(avg), "%.2f", stats.avg_degree);
    std::snprintf(density, sizeof(density), "%.2e", stats.density);
    bench::PrintRow(
        "table4",
        {name, dataset.weighted ? "yes" : "no",
         std::to_string(stats.nodes), std::to_string(stats.stream_edges),
         std::to_string(stats.distinct_edges), avg,
         std::to_string(stats.max_total_degree), density});
  }
  std::printf("(paper's full-scale rows in Table IV; scale with --scale)\n");
  return 0;
}
