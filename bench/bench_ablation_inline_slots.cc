// Design-choice ablation (DESIGN.md): Part 2's inline small slots on/off.
// Real graphs are dominated by low-degree nodes (the sparsity observation
// of Section I), so storing up to 2R neighbours inline avoids allocating an
// S-CHT chain for most nodes. Disabling the inline slots gives every node a
// chain from its first edge; this bench quantifies what that costs in
// memory and throughput on a low-degree-heavy and a high-degree dataset.
#include <cstdio>

#include "bench_util.h"
#include "common/flags.h"
#include "common/timer.h"
#include "core/cuckoo_graph.h"
#include "datasets/datasets.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  const Flags flags(argc, argv);
  const double user_scale = flags.GetDouble("scale", 1.0);

  bench::PrintHeader("ablation_inline",
                     "inline small slots: insert/query Mops and memory",
                     {"ins Mops", "qry Mops", "MB", "chains"});
  for (const std::string& dataset_name :
       {std::string("SparseGraph"), std::string("NotreDame"),
        std::string("DenseGraph")}) {
    const datasets::Dataset dataset =
        bench::MakeBenchDataset(dataset_name, user_scale);
    for (const bool inline_slots : {true, false}) {
      Config config;
      config.enable_inline_slots = inline_slots;
      CuckooGraph graph(config);
      WallTimer timer;
      for (const Edge& e : dataset.stream) graph.InsertEdge(e.u, e.v);
      const double ins = Mops(dataset.stream.size(),
                              timer.ElapsedSeconds());
      timer.Reset();
      size_t hits = 0;
      for (const Edge& e : dataset.stream) hits += graph.QueryEdge(e.u, e.v);
      const double qry = Mops(dataset.stream.size(),
                              timer.ElapsedSeconds());
      (void)hits;
      bench::PrintRow(
          "ablation_inline",
          {dataset_name + (inline_slots ? "/inline" : "/chains"),
           bench::FmtMops(ins), bench::FmtMops(qry),
           bench::FmtMb(graph.MemoryBytes()),
           std::to_string(graph.stats().num_chains)});
    }
  }
  return 0;
}
