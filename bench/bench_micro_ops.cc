// Google-benchmark microbenchmarks of the core CuckooGraph operations:
// per-op latency of insert/query/delete/successor iteration at several
// graph sizes, plus the raw BobHash and cuckoo-table primitives. These back
// the per-op numbers quoted in EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "analytics/bfs.h"
#include "analytics/csr_snapshot.h"
#include "common/bob_hash.h"
#include "common/rng.h"
#include "core/cuckoo_graph.h"
#include "core/internal/simd_probe.h"
#include "core/sharded_cuckoo_graph.h"
#include "core/weighted_cuckoo_graph.h"

namespace cuckoograph {
namespace {

void BM_BobHash(benchmark::State& state) {
  BobHash hash(7);
  uint64_t key = 0x123456789abcdefULL;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash(key));
    ++key;
  }
}
BENCHMARK(BM_BobHash);

std::vector<Edge> MakeWorkload(size_t edges) {
  SplitMix64 rng(11);
  std::vector<Edge> workload;
  workload.reserve(edges);
  for (size_t i = 0; i < edges; ++i) {
    workload.push_back(
        Edge{rng.NextBelow(edges / 8 + 1), rng.NextBelow(edges) + 1});
  }
  return workload;
}

void BM_InsertEdge(benchmark::State& state) {
  const auto workload = MakeWorkload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    CuckooGraph graph;
    state.ResumeTiming();
    for (const Edge& e : workload) {
      benchmark::DoNotOptimize(graph.InsertEdge(e.u, e.v));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(workload.size()));
}
BENCHMARK(BM_InsertEdge)->Arg(10'000)->Arg(100'000);

void BM_QueryEdge(benchmark::State& state) {
  const auto workload = MakeWorkload(static_cast<size_t>(state.range(0)));
  CuckooGraph graph;
  for (const Edge& e : workload) graph.InsertEdge(e.u, e.v);
  size_t i = 0;
  for (auto _ : state) {
    const Edge& e = workload[i++ % workload.size()];
    benchmark::DoNotOptimize(graph.QueryEdge(e.u, e.v));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_QueryEdge)->Arg(10'000)->Arg(100'000);

void BM_QueryMissingEdge(benchmark::State& state) {
  const auto workload = MakeWorkload(static_cast<size_t>(state.range(0)));
  CuckooGraph graph;
  for (const Edge& e : workload) graph.InsertEdge(e.u, e.v);
  NodeId probe = 1u << 30;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.QueryEdge(probe, probe + 1));
    ++probe;
  }
}
BENCHMARK(BM_QueryMissingEdge)->Arg(100'000);

void BM_DeleteInsertChurn(benchmark::State& state) {
  const auto workload = MakeWorkload(static_cast<size_t>(state.range(0)));
  CuckooGraph graph;
  for (const Edge& e : workload) graph.InsertEdge(e.u, e.v);
  size_t i = 0;
  for (auto _ : state) {
    const Edge& e = workload[i++ % workload.size()];
    graph.DeleteEdge(e.u, e.v);
    graph.InsertEdge(e.u, e.v);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_DeleteInsertChurn)->Arg(50'000);

// ---- Neighbor-scan guard: the v2 cursor redesign vs the v1 call shape ----
// BM_SuccessorIteration uses the template ForEachNeighbor (inlined callable,
// one virtual Next() per block). BM_SuccessorIterationStdFunction forces the
// callback through std::function — the per-edge type-erased dispatch the v1
// interface imposed — and BM_SuccessorIterationRawCursor drains the cursor
// by hand. The spread between the two is the redesign's win.

void BM_SuccessorIteration(benchmark::State& state) {
  CuckooGraph graph;
  const size_t degree = static_cast<size_t>(state.range(0));
  for (NodeId v = 0; v < degree; ++v) graph.InsertEdge(1, v + 10);
  for (auto _ : state) {
    size_t count = 0;
    graph.ForEachNeighbor(1, [&count](NodeId) { ++count; });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(degree));
}
BENCHMARK(BM_SuccessorIteration)->Arg(6)->Arg(1'000)->Arg(100'000);

void BM_SuccessorIterationStdFunction(benchmark::State& state) {
  CuckooGraph graph;
  const size_t degree = static_cast<size_t>(state.range(0));
  for (NodeId v = 0; v < degree; ++v) graph.InsertEdge(1, v + 10);
  size_t count = 0;
  const std::function<void(NodeId)> fn = [&count](NodeId) { ++count; };
  for (auto _ : state) {
    count = 0;
    graph.ForEachNeighbor(1, fn);
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(degree));
}
BENCHMARK(BM_SuccessorIterationStdFunction)->Arg(6)->Arg(1'000)->Arg(100'000);

void BM_SuccessorIterationRawCursor(benchmark::State& state) {
  CuckooGraph graph;
  const size_t degree = static_cast<size_t>(state.range(0));
  for (NodeId v = 0; v < degree; ++v) graph.InsertEdge(1, v + 10);
  for (auto _ : state) {
    size_t count = 0;
    NodeId block[NeighborCursor::kBlockSize];
    auto cursor = graph.Neighbors(1);
    size_t n;
    while ((n = cursor->Next(block, NeighborCursor::kBlockSize)) > 0) {
      count += n;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(degree));
}
BENCHMARK(BM_SuccessorIterationRawCursor)->Arg(6)->Arg(1'000)->Arg(100'000);

void BM_InsertEdgesBatch(benchmark::State& state) {
  const auto workload = MakeWorkload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    CuckooGraph graph;
    state.ResumeTiming();
    benchmark::DoNotOptimize(graph.InsertEdges(workload));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(workload.size()));
}
BENCHMARK(BM_InsertEdgesBatch)->Arg(100'000);

// ---- Snapshot-vs-virtual traversal guard -------------------------------
// The analytics refactor's claim: build a CsrSnapshot once, then traverse
// flat arrays, instead of running the kernel through per-edge virtual
// store calls with hash-set visited state. BM_SnapshotBuild prices the
// materialization; BM_BfsOverCsr vs BM_BfsOverVirtualStore is the payoff
// once the CSR exists.

// Both endpoints drawn from [0, n) at average degree 8, so the giant
// component emerges and a BFS sweeps most of the graph — the regime the
// analytics kernels run in (MakeWorkload's stream is mostly sinks, which
// would measure setup cost instead of traversal).
std::vector<Edge> MakeTraversalWorkload(size_t nodes) {
  SplitMix64 rng(23);
  std::vector<Edge> workload;
  workload.reserve(nodes * 8);
  for (size_t i = 0; i < nodes * 8; ++i) {
    workload.push_back(Edge{rng.NextBelow(nodes), rng.NextBelow(nodes)});
  }
  return workload;
}

void BM_SnapshotBuild(benchmark::State& state) {
  const auto workload =
      MakeTraversalWorkload(static_cast<size_t>(state.range(0)));
  CuckooGraph graph;
  graph.InsertEdges(workload);
  for (auto _ : state) {
    const auto snapshot = analytics::CsrSnapshot::FromStore(graph);
    benchmark::DoNotOptimize(snapshot.num_edges());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(graph.NumEdges()));
}
BENCHMARK(BM_SnapshotBuild)->Arg(10'000)->Arg(100'000);

// The parallel builder at a given lane count (arg 1), same workload as
// BM_SnapshotBuild — the guard that the thread-pooled build actually
// beats, or at worst matches, the sequential one as cores appear. The
// differential suite proves the outputs byte-identical; this prices them.
void BM_SnapshotBuildParallel(benchmark::State& state) {
  const auto workload =
      MakeTraversalWorkload(static_cast<size_t>(state.range(0)));
  CuckooGraph graph;
  graph.InsertEdges(workload);
  analytics::CsrSnapshot::Options opts;
  opts.num_threads = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    const auto snapshot = analytics::CsrSnapshot::FromStore(graph, opts);
    benchmark::DoNotOptimize(snapshot.num_edges());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(graph.NumEdges()));
}
BENCHMARK(BM_SnapshotBuildParallel)
    ->Args({100'000, 2})
    ->Args({100'000, 4});

// Direction-optimizing BFS at a given lane count over the same graph as
// BM_BfsOverCsr (arg 1 = threads; 1 = the sequential reference loop).
void BM_BfsOverCsrParallel(benchmark::State& state) {
  const auto workload =
      MakeTraversalWorkload(static_cast<size_t>(state.range(0)));
  CuckooGraph graph;
  graph.InsertEdges(workload);
  const auto snapshot = analytics::CsrSnapshot::FromStore(graph);
  const NodeId root = workload[0].u;
  analytics::KernelOptions opts;
  opts.num_threads = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    const auto result =
        analytics::bfs::Run(snapshot, Span<const NodeId>(&root, 1), opts);
    benchmark::DoNotOptimize(result.aggregate);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(graph.NumEdges()));
}
BENCHMARK(BM_BfsOverCsrParallel)
    ->Args({100'000, 1})
    ->Args({100'000, 2})
    ->Args({100'000, 4});

void BM_BfsOverCsr(benchmark::State& state) {
  const auto workload =
      MakeTraversalWorkload(static_cast<size_t>(state.range(0)));
  CuckooGraph graph;
  graph.InsertEdges(workload);
  const auto snapshot = analytics::CsrSnapshot::FromStore(graph);
  const NodeId root = workload[0].u;
  for (auto _ : state) {
    const auto result =
        analytics::bfs::Run(snapshot, Span<const NodeId>(&root, 1));
    benchmark::DoNotOptimize(result.aggregate);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(graph.NumEdges()));
}
BENCHMARK(BM_BfsOverCsr)->Arg(10'000)->Arg(100'000);

void BM_BfsOverVirtualStore(benchmark::State& state) {
  const auto workload =
      MakeTraversalWorkload(static_cast<size_t>(state.range(0)));
  CuckooGraph graph;
  graph.InsertEdges(workload);
  const NodeId root = workload[0].u;
  for (auto _ : state) {
    // The pre-snapshot shape: cursor walk per vertex, hash-set visited.
    std::unordered_set<NodeId> visited{root};
    std::queue<NodeId> frontier;
    frontier.push(root);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      graph.ForEachNeighbor(u, [&visited, &frontier](NodeId v) {
        if (visited.insert(v).second) frontier.push(v);
      });
    }
    benchmark::DoNotOptimize(visited.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(graph.NumEdges()));
}
BENCHMARK(BM_BfsOverVirtualStore)->Arg(10'000)->Arg(100'000);

// ---- SIMD bucket-probe guard -------------------------------------------
// The selected backend (sse2/neon) against the always-compiled scalar
// reference, at the default bucket width (d = 8) and the Figure 2 maximum
// (d = 32). The spread is the vectorization win the L-CHT/S-CHT FindSlot
// hot path inherits; if the backend is already "scalar" the two series
// coincide.

void FillProbeBytes(std::vector<uint8_t>* bytes) {
  SplitMix64 rng(5);
  for (auto& b : *bytes) b = static_cast<uint8_t>(rng.NextBelow(250) + 1);
}

void BM_ProbeBucketSimd(benchmark::State& state) {
  std::vector<uint8_t> bytes(
      static_cast<size_t>(state.range(0)) + internal::kBytePadding);
  FillProbeBytes(&bytes);
  const size_t count = static_cast<size_t>(state.range(0));
  uint8_t needle = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        internal::MatchByteMask(bytes.data(), count, ++needle));
  }
  state.SetLabel(internal::ProbeBackendName());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ProbeBucketSimd)->Arg(8)->Arg(32);

void BM_ProbeBucketScalar(benchmark::State& state) {
  std::vector<uint8_t> bytes(
      static_cast<size_t>(state.range(0)) + internal::kBytePadding);
  FillProbeBytes(&bytes);
  const size_t count = static_cast<size_t>(state.range(0));
  uint8_t needle = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        internal::MatchByteMaskScalar(bytes.data(), count, ++needle));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ProbeBucketScalar)->Arg(8)->Arg(32);

void BM_ProbeInlineKeysSimd(benchmark::State& state) {
  NodeId keys[internal::kKeyLanes];
  SplitMix64 rng(6);
  for (NodeId& k : keys) k = rng.NextBelow(1'000'000);
  NodeId needle = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        internal::MatchKeyMask(keys, internal::kKeyLanes, ++needle));
  }
  state.SetLabel(internal::ProbeBackendName());
}
BENCHMARK(BM_ProbeInlineKeysSimd);

void BM_ProbeInlineKeysScalar(benchmark::State& state) {
  NodeId keys[internal::kKeyLanes];
  SplitMix64 rng(6);
  for (NodeId& k : keys) k = rng.NextBelow(1'000'000);
  NodeId needle = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        internal::MatchKeyMaskScalar(keys, internal::kKeyLanes, ++needle));
  }
}
BENCHMARK(BM_ProbeInlineKeysScalar);

// ---- Sharded front-end overhead guard ----------------------------------
// One-thread sharded ops vs the raw core: the spread is the per-op price
// of the stripe lock + shard routing (the single-thread trade-off
// docs/PERFORMANCE.md quotes); the multi-thread payoff is measured by
// bench_scalability, not here (google-benchmark threads would share the
// graph, which is exactly what it measures already).

void BM_ShardedInsertEdge(benchmark::State& state) {
  const auto workload = MakeWorkload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    ShardedCuckooGraph graph;
    state.ResumeTiming();
    for (const Edge& e : workload) {
      benchmark::DoNotOptimize(graph.InsertEdge(e.u, e.v));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(workload.size()));
}
BENCHMARK(BM_ShardedInsertEdge)->Arg(100'000);

void BM_ShardedQueryEdge(benchmark::State& state) {
  const auto workload = MakeWorkload(static_cast<size_t>(state.range(0)));
  ShardedCuckooGraph graph;
  for (const Edge& e : workload) graph.InsertEdge(e.u, e.v);
  size_t i = 0;
  for (auto _ : state) {
    const Edge& e = workload[i++ % workload.size()];
    benchmark::DoNotOptimize(graph.QueryEdge(e.u, e.v));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ShardedQueryEdge)->Arg(100'000);

void BM_WeightedAdd(benchmark::State& state) {
  WeightedCuckooGraph graph;
  SplitMix64 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph.AddEdge(rng.NextBelow(1'000), rng.NextBelow(10'000)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_WeightedAdd);

}  // namespace
}  // namespace cuckoograph

BENCHMARK_MAIN();
