// Table III: time/space complexity comparison. Prints the paper's analytic
// table, then verifies it empirically: amortized per-op insert and query
// time for every scheme at growing |E| (a scheme with O(1) ops stays flat;
// O(log |E|) and O(deg) schemes drift upward).
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/store_factory.h"
#include "bench_util.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/timer.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  const Flags flags(argc, argv);
  const size_t max_edges =
      static_cast<size_t>(flags.GetInt("max_edges", 400'000));
  bench::MaybeOpenCsvFromFlags(flags);

  std::printf("== table3: analytic complexity (paper Table III) ==\n");
  std::printf("%-14s%20s%20s%16s\n", "Algorithm", "Insert <u,v>",
              "Query <u,v>", "Space");
  std::printf("%-14s%20s%20s%16s\n", "LiveGraph", "O(1)", "O(deg(v))",
              "O(|E|)");
  std::printf("%-14s%20s%20s%16s\n", "Spruce", "O(|E|/|V|)", "O(log|E|/|V|)",
              "O(|E|)");
  std::printf("%-14s%20s%20s%16s\n", "Sortledton", "O(log|E|)", "O(log|E|)",
              "O(|E|)");
  std::printf("%-14s%20s%20s%16s\n", "WBI", "O(1)", "O(|E|/K^2)",
              "O(K^2+|E|)");
  std::printf("%-14s%20s%20s%16s\n", "CuckooGraph", "O(1)", "O(1)",
              "O(|E|)");

  // Empirical check: ns/op at |E| in {N/4, N/2, N}. A power-law workload
  // (hub node u=0) exposes the O(deg) query terms.
  bench::PrintHeader("table3", "empirical ns/op at growing |E|",
                     {"|E|", "insert ns", "query ns", "bytes/edge"});
  for (const std::string& scheme : AllSchemeNames()) {
    std::printf("-- %s --\n", scheme.c_str());
    for (size_t edges : {max_edges / 4, max_edges / 2, max_edges}) {
      auto store = MakeStoreByName(scheme);
      SplitMix64 rng(42);
      std::vector<Edge> workload;
      workload.reserve(edges);
      for (size_t i = 0; i < edges; ++i) {
        // 1/8 of edges attach to the hub; the rest are power-law-ish.
        const NodeId u = (i % 8 == 0) ? 0 : rng.NextBelow(edges / 4 + 1);
        const NodeId v = rng.NextBelow(edges) + 1;
        workload.push_back(Edge{u, v});
      }
      WallTimer timer;
      for (const Edge& e : workload) store->InsertEdge(e.u, e.v);
      const double insert_ns =
          timer.ElapsedSeconds() * 1e9 / static_cast<double>(edges);
      timer.Reset();
      size_t hits = 0;
      for (const Edge& e : workload) hits += store->QueryEdge(e.u, e.v);
      const double query_ns =
          timer.ElapsedSeconds() * 1e9 / static_cast<double>(edges);
      (void)hits;
      const double bytes_per_edge =
          static_cast<double>(store->MemoryBytes()) /
          static_cast<double>(store->NumEdges());
      char insert_buf[32], query_buf[32], bpe_buf[32];
      std::snprintf(insert_buf, sizeof(insert_buf), "%.0f", insert_ns);
      std::snprintf(query_buf, sizeof(query_buf), "%.0f", query_ns);
      std::snprintf(bpe_buf, sizeof(bpe_buf), "%.1f", bytes_per_edge);
      bench::PrintRow("table3", {scheme + "@" + std::to_string(edges),
                                 insert_buf, query_buf, bpe_buf});
    }
  }
  bench::CloseCsv();
  return 0;
}
