// Figure 7: query throughput (Mops) of all schemes on the seven datasets
// (Section V-D methodology step 2: query every edge of the stream).
#include "baselines/store_factory.h"
#include "bench_util.h"
#include "common/flags.h"
#include "datasets/datasets.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  const Flags flags(argc, argv);
  const double user_scale = flags.GetDouble("scale", 1.0);
  bench::MaybeOpenCsvFromFlags(flags);

  bench::PrintHeader("fig7", "Query throughput (Mops, higher is better)",
                     AllSchemeNames());
  for (const std::string& dataset_name : datasets::AllDatasetNames()) {
    const datasets::Dataset dataset =
        bench::MakeBenchDataset(dataset_name, user_scale);
    std::vector<std::string> row{dataset_name};
    for (const std::string& scheme : AllSchemeNames()) {
      auto store = MakeStoreByName(scheme);
      const bench::BasicTaskResult result =
          bench::RunBasicTasks(*store, dataset, bench::BasicPhase::kQuery);
      row.push_back(bench::FmtMops(result.query_mops));
    }
    bench::PrintRow("fig7", row);
  }
  bench::CloseCsv();
  return 0;
}
