// Table II: the transformation rule of the S-CHT chain lengths (R = 3).
// Grows one node's neighbourhood edge by edge and prints every distinct
// (1st, 2nd, 3rd) length state the live chain passes through, which should
// match the paper's sequence n | n,n/2 | n,n/2,n/2 | 2n,n | 2n,n,n |
// 4n,2n | ... (lengths printed in buckets; n = s_initial_buckets).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/cuckoo_graph.h"

int main(int, char**) {
  using namespace cuckoograph;
  Config config;
  config.s_initial_buckets = 2;  // "n" in Table II
  CuckooGraph graph(config);

  bench::PrintHeader(
      "table2",
      "S-CHT transformation states (n = " +
          std::to_string(config.s_initial_buckets) + " buckets)",
      {"1st", "2nd", "3rd", "#neighbours"});

  std::vector<size_t> last;
  size_t rows = 0;
  for (NodeId v = 0; v < 4'000'000 && rows < 10; ++v) {
    graph.InsertEdge(1, v + 100);
    const std::vector<size_t> lengths = graph.SChainLengths(1);
    if (lengths.empty() || lengths == last) continue;
    last = lengths;
    ++rows;
    std::vector<std::string> row{"#" + std::to_string(rows)};
    for (size_t i = 0; i < 3; ++i) {
      row.push_back(i < lengths.size() ? std::to_string(lengths[i])
                                       : "null");
    }
    row.push_back(std::to_string(graph.OutDegree(1)));
    bench::PrintRow("table2", row);
  }
  std::printf("(expected, Table II with n=2: 2 | 2,1 | 2,1,1 | 4,2 | 4,2,2 "
              "| 8,4 | 8,4,4 | 16,8 | ...)\n");
  return 0;
}
