// Thread-scalability sweep of the concurrent sharded front-end: aggregate
// insert / query / delete throughput and a disjoint-range mixed churn at
// 1..hardware_concurrency threads, against the single-threaded CuckooGraph
// as the no-locks baseline. Every phase self-checks its final state
// against expected counts and the binary exits non-zero on disagreement,
// so the CI smoke run is a correctness gate too.
//
// Flags: --scale (stream size multiplier), --shards (Config::num_shards),
// --threads (sweep ceiling, default hardware_concurrency), --csv <path>.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/timer.h"
#include "common/types.h"
#include "core/config.h"
#include "core/cuckoo_graph.h"
#include "core/internal/simd_probe.h"
#include "core/sharded_cuckoo_graph.h"

namespace cuckoograph {
namespace {

// The default synthetic stream: the bench_micro_ops shape (sources from a
// skewed 1/8 range so chains and inline slots both appear).
std::vector<Edge> MakeStream(size_t ops) {
  SplitMix64 rng(2025);
  std::vector<Edge> stream;
  stream.reserve(ops);
  for (size_t i = 0; i < ops; ++i) {
    stream.push_back(
        Edge{rng.NextBelow(ops / 8 + 1), rng.NextBelow(ops) + 1});
  }
  return stream;
}

// Runs fn(t) on `threads` worker threads and returns the wall time of the
// whole phase (spawn to last join — the aggregate-throughput denominator).
template <typename Fn>
double TimePhase(int threads, Fn fn) {
  WallTimer timer;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) workers.emplace_back(fn, t);
  for (std::thread& w : workers) w.join();
  return timer.ElapsedSeconds();
}

// The thread's slice of [0, n): contiguous chunks, remainder to the last.
std::pair<size_t, size_t> Chunk(size_t n, int threads, int t) {
  const size_t per = n / static_cast<size_t>(threads);
  const size_t begin = per * static_cast<size_t>(t);
  const size_t end =
      t == threads - 1 ? n : begin + per;
  return {begin, end};
}

struct SweepResult {
  double insert_mops = 0;
  double query_mops = 0;
  double delete_mops = 0;
  double mixed_mops = 0;
  bool ok = true;
};

// Disjoint-range mixed churn: thread t inserts/deletes/queries inside its
// own source range, so a single-threaded replay of each range is the
// oracle for the shared store's final state.
constexpr NodeId kChurnBase = 0x40000000;
constexpr NodeId kChurnRange = 512;
constexpr size_t kChurnOpsPerThread = 1 << 15;

size_t ChurnOracleEdges(int threads) {
  size_t total = 0;
  for (int t = 0; t < threads; ++t) {
    SplitMix64 rng(9000 + static_cast<uint64_t>(t));
    std::unordered_set<uint64_t> live;
    for (size_t i = 0; i < kChurnOpsPerThread; ++i) {
      const NodeId u = kChurnBase +
                       static_cast<NodeId>(t) * 10 * kChurnRange +
                       rng.NextBelow(kChurnRange);
      const NodeId v = rng.NextBelow(256);
      const uint64_t kind = rng.NextBelow64(4);
      if (kind == 0) {
        live.erase(EdgeKey(Edge{u, v}));
      } else if (kind == 1) {
        // Query: consumes no oracle state, matches the store-side stream.
      } else {
        live.insert(EdgeKey(Edge{u, v}));
      }
    }
    total += live.size();
  }
  return total;
}

SweepResult RunSweep(GraphStore& store, const std::vector<Edge>& stream,
                     size_t distinct, int threads) {
  SweepResult result;
  const size_t n = stream.size();

  // Phase 1: concurrent insertion of the whole stream.
  const double insert_s = TimePhase(threads, [&](int t) {
    const auto [begin, end] = Chunk(n, threads, t);
    for (size_t i = begin; i < end; ++i) {
      store.InsertEdge(stream[i].u, stream[i].v);
    }
  });
  result.insert_mops = Mops(n, insert_s);
  if (store.NumEdges() != distinct) {
    std::fprintf(stderr,
                 "FAIL: %d-thread insert left %zu edges, expected %zu\n",
                 threads, store.NumEdges(), distinct);
    result.ok = false;
  }

  // Phase 2: concurrent point queries of every stream edge (all hits).
  std::atomic<size_t> found{0};
  const double query_s = TimePhase(threads, [&](int t) {
    const auto [begin, end] = Chunk(n, threads, t);
    size_t hits = 0;
    for (size_t i = begin; i < end; ++i) {
      hits += store.QueryEdge(stream[i].u, stream[i].v) ? 1 : 0;
    }
    found += hits;
  });
  result.query_mops = Mops(n, query_s);
  if (found.load() != n) {
    std::fprintf(stderr, "FAIL: %d-thread query found %zu of %zu edges\n",
                 threads, found.load(), n);
    result.ok = false;
  }

  // Phase 3: disjoint-range mixed churn on top of the loaded store.
  const double mixed_s = TimePhase(threads, [&](int t) {
    SplitMix64 rng(9000 + static_cast<uint64_t>(t));
    for (size_t i = 0; i < kChurnOpsPerThread; ++i) {
      const NodeId u = kChurnBase +
                       static_cast<NodeId>(t) * 10 * kChurnRange +
                       rng.NextBelow(kChurnRange);
      const NodeId v = rng.NextBelow(256);
      const uint64_t kind = rng.NextBelow64(4);
      if (kind == 0) {
        store.DeleteEdge(u, v);
      } else if (kind == 1) {
        store.QueryEdge(u, v);
      } else {
        store.InsertEdge(u, v);
      }
    }
  });
  result.mixed_mops =
      Mops(kChurnOpsPerThread * static_cast<size_t>(threads), mixed_s);
  const size_t churn_expected = distinct + ChurnOracleEdges(threads);
  if (store.NumEdges() != churn_expected) {
    std::fprintf(stderr,
                 "FAIL: %d-thread mixed churn left %zu edges, expected "
                 "%zu\n",
                 threads, store.NumEdges(), churn_expected);
    result.ok = false;
  }

  // Phase 4: concurrent deletion of the stream (duplicates miss).
  std::atomic<size_t> removed{0};
  const double delete_s = TimePhase(threads, [&](int t) {
    const auto [begin, end] = Chunk(n, threads, t);
    size_t hits = 0;
    for (size_t i = begin; i < end; ++i) {
      hits += store.DeleteEdge(stream[i].u, stream[i].v) ? 1 : 0;
    }
    removed += hits;
  });
  result.delete_mops = Mops(n, delete_s);
  if (removed.load() != distinct) {
    std::fprintf(stderr,
                 "FAIL: %d-thread delete removed %zu edges, expected %zu\n",
                 threads, removed.load(), distinct);
    result.ok = false;
  }
  return result;
}

std::string FmtX(double x) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2fx", x);
  return buffer;
}

// ---- Read-path scaling: stripe-locked vs optimistic (seqlock) reads ----
//
// The same loaded store is swept twice per thread count — once with
// Config::optimistic_reads off (every read takes the shard's reader
// lock) and once with it on (seqlock-validated lock-free probes) — over
// two phases:
//  - query-only: every thread walks the whole stream (all hits) with no
//    writer anywhere, so optimistic validation succeeds first try and
//    the gap between the rows is pure locking overhead;
//  - read-mostly (95/5): each thread interleaves 19 point queries with
//    one insert-or-delete in a thread-private source range, so readers
//    race real seqlock writers on shared shards. A single-threaded
//    replay of each thread's mutation stream is the oracle for the
//    final edge count, and every query targets a loaded stream edge
//    (the churn sources are disjoint), so every probe must hit.

constexpr NodeId kReadChurnBase = 0x60000000;  // disjoint from the rest
constexpr size_t kReadMostlyOpsPerThread = 1 << 15;

size_t ReadMostlyOracleEdges(int threads) {
  size_t total = 0;
  for (int t = 0; t < threads; ++t) {
    SplitMix64 rng(4400 + static_cast<uint64_t>(t));
    std::unordered_set<uint64_t> live;
    for (size_t i = 0; i < kReadMostlyOpsPerThread; ++i) {
      if (i % 20 == 19) {
        const NodeId u = kReadChurnBase +
                         static_cast<NodeId>(t) * 10 * kChurnRange +
                         rng.NextBelow(kChurnRange);
        const NodeId v = rng.NextBelow(256);
        if (rng.NextBelow64(2) == 0) {
          live.insert(EdgeKey(Edge{u, v}));
        } else {
          live.erase(EdgeKey(Edge{u, v}));
        }
      } else {
        rng.NextBelow64(1);  // the query's index draw, replayed exactly
      }
    }
    total += live.size();
  }
  return total;
}

struct ReadScaleResult {
  double query_mops = 0;
  double read_mostly_mops = 0;
  bool ok = true;
};

ReadScaleResult RunReadScaling(const Config& base, bool optimistic,
                               const std::vector<Edge>& stream,
                               size_t distinct, int threads) {
  Config config = base;
  config.optimistic_reads = optimistic;
  ShardedCuckooGraph store(config);
  for (const Edge& e : stream) store.InsertEdge(e.u, e.v);

  ReadScaleResult result;
  const size_t n = stream.size();
  const char* mode = optimistic ? "optimistic" : "locked";
  if (store.NumEdges() != distinct) {
    std::fprintf(stderr, "FAIL: %s/%d load left %zu edges, expected %zu\n",
                 mode, threads, store.NumEdges(), distinct);
    result.ok = false;
  }

  // Phase 1: query-only (each thread walks the whole stream, offset so
  // the threads do not probe the same shard in lockstep).
  std::atomic<size_t> found{0};
  const double query_s = TimePhase(threads, [&](int t) {
    const size_t start =
        (n / static_cast<size_t>(threads)) * static_cast<size_t>(t);
    size_t hits = 0;
    for (size_t i = 0; i < n; ++i) {
      const size_t j = start + i;
      const Edge& e = stream[j < n ? j : j - n];
      hits += store.QueryEdge(e.u, e.v) ? 1 : 0;
    }
    found += hits;
  });
  result.query_mops = Mops(n * static_cast<size_t>(threads), query_s);
  if (found.load() != n * static_cast<size_t>(threads)) {
    std::fprintf(stderr,
                 "FAIL: %s/%d query-only found %zu of %zu probes\n", mode,
                 threads, found.load(), n * static_cast<size_t>(threads));
    result.ok = false;
  }
  // The knob must decide which path actually served the reads: with no
  // writer racing, optimistic mode validates first try every time.
  const auto rp = store.read_path_stats();
  if (optimistic ? rp.optimistic == 0 : rp.optimistic != 0) {
    std::fprintf(stderr,
                 "FAIL: %s/%d read-path stats disagree with the knob "
                 "(optimistic=%llu locked=%llu)\n",
                 mode, threads,
                 static_cast<unsigned long long>(rp.optimistic),
                 static_cast<unsigned long long>(rp.locked));
    result.ok = false;
  }

  // Phase 2: 95/5 read-mostly mix.
  std::atomic<size_t> issued{0};
  std::atomic<size_t> hit{0};
  const double mixed_s = TimePhase(threads, [&](int t) {
    SplitMix64 rng(4400 + static_cast<uint64_t>(t));
    const NodeId churn_base =
        kReadChurnBase + static_cast<NodeId>(t) * 10 * kChurnRange;
    size_t queries = 0;
    size_t hits = 0;
    for (size_t i = 0; i < kReadMostlyOpsPerThread; ++i) {
      if (i % 20 == 19) {
        const NodeId u = churn_base + rng.NextBelow(kChurnRange);
        const NodeId v = rng.NextBelow(256);
        if (rng.NextBelow64(2) == 0) {
          store.InsertEdge(u, v);
        } else {
          store.DeleteEdge(u, v);
        }
      } else {
        const Edge& e = stream[rng.NextBelow64(n)];
        ++queries;
        hits += store.QueryEdge(e.u, e.v) ? 1 : 0;
      }
    }
    issued += queries;
    hit += hits;
  });
  result.read_mostly_mops = Mops(
      kReadMostlyOpsPerThread * static_cast<size_t>(threads), mixed_s);
  if (hit.load() != issued.load()) {
    std::fprintf(stderr,
                 "FAIL: %s/%d read-mostly hit %zu of %zu pinned probes\n",
                 mode, threads, hit.load(), issued.load());
    result.ok = false;
  }
  const size_t expected = distinct + ReadMostlyOracleEdges(threads);
  if (store.NumEdges() != expected) {
    std::fprintf(stderr,
                 "FAIL: %s/%d read-mostly left %zu edges, expected %zu\n",
                 mode, threads, store.NumEdges(), expected);
    result.ok = false;
  }
  return result;
}

}  // namespace
}  // namespace cuckoograph

int main(int argc, char** argv) {
  using namespace cuckoograph;
  const Flags flags(argc, argv);
  const double user_scale = flags.GetDouble("scale", 1.0);
  const int max_threads = static_cast<int>(flags.GetInt(
      "threads",
      std::max(1u, std::thread::hardware_concurrency())));
  Config config;
  config.num_shards = static_cast<size_t>(
      flags.GetInt("shards", static_cast<long long>(config.num_shards)));
  bench::MaybeOpenCsvFromFlags(flags);

  const size_t ops =
      std::max<size_t>(20'000, static_cast<size_t>(600'000 * user_scale));
  const std::vector<Edge> stream = MakeStream(ops);
  std::unordered_set<uint64_t> dedup;
  dedup.reserve(stream.size());
  for (const Edge& e : stream) dedup.insert(EdgeKey(e));
  const size_t distinct = dedup.size();

  // Data columns only: PrintHeader injects the leading label column
  // (each row's label is "store/threads").
  bench::PrintHeader(
      "scalability",
      "Thread sweep, aggregate Mops (probe backend: " +
          std::string(internal::ProbeBackendName()) + ")",
      {"insert", "query", "delete", "mixed(disjoint)", "agg speedup"});

  bool ok = true;
  const auto report = [&ok](const std::string& label,
                            const SweepResult& r, double baseline_agg) {
    const double agg = r.insert_mops + r.query_mops;
    bench::PrintRow("scalability",
                    {label, bench::FmtMops(r.insert_mops),
                     bench::FmtMops(r.query_mops),
                     bench::FmtMops(r.delete_mops),
                     bench::FmtMops(r.mixed_mops),
                     baseline_agg > 0 ? FmtX(agg / baseline_agg) : "-"});
    ok = ok && r.ok;
    return agg;
  };

  // Baseline: the unsharded, lock-free-by-exclusivity core at one thread.
  {
    CuckooGraph core(config);
    const SweepResult r = RunSweep(core, stream, distinct, 1);
    report("CuckooGraph/1", r, 0);
  }

  double sharded_1t_agg = 0;
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    ShardedCuckooGraph store(config);
    const SweepResult r = RunSweep(store, stream, distinct, threads);
    if (threads == 1) sharded_1t_agg = r.insert_mops + r.query_mops;
    report("cuckoo-sharded/" + std::to_string(threads), r, sharded_1t_agg);
    // Keep the ceiling in the sweep even when it is not a power of two.
    if (threads < max_threads && threads * 2 > max_threads) {
      ShardedCuckooGraph last(config);
      const SweepResult rl = RunSweep(last, stream, distinct, max_threads);
      report("cuckoo-sharded/" + std::to_string(max_threads), rl,
             sharded_1t_agg);
      break;
    }
  }

  // Read-path scaling: two rows per thread count — optimistic_reads off
  // (stripe-locked reads) vs on (seqlock + epoch lock-free reads).
  bench::PrintHeader(
      "read-scaling",
      "Read-path sweep, aggregate Mops: stripe-locked vs optimistic "
      "(seqlock+epoch) reads",
      {"query-only", "read-mostly(95/5)"});
  const auto read_scale_row = [&](int threads) {
    for (const bool optimistic : {false, true}) {
      const ReadScaleResult r =
          RunReadScaling(config, optimistic, stream, distinct, threads);
      bench::PrintRow(
          "read-scaling",
          {std::string(optimistic ? "optimistic/" : "locked/") +
               std::to_string(threads),
           bench::FmtMops(r.query_mops),
           bench::FmtMops(r.read_mostly_mops)});
      ok = ok && r.ok;
    }
  };
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    read_scale_row(threads);
    if (threads < max_threads && threads * 2 > max_threads) {
      read_scale_row(max_threads);  // keep the non-power-of-two ceiling
      break;
    }
  }

  bench::CloseCsv();
  if (!ok) {
    std::fprintf(stderr, "scalability: self-check FAILED\n");
    return 1;
  }
  return 0;
}
