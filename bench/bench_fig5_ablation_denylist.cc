// Figure 5: DENYLIST ablation (Section V-C). "Ours (DL)" is the default
// configuration; "Ours (DL-free)" disables the denylists, so every
// insertion failure immediately expands the affected chain instead (the
// grow-on-failure baseline described in the ablation methodology).
#include "param_sweep_util.h"

int main(int argc, char** argv) {
  using namespace cuckoograph;
  Config with_dl;
  Config without_dl;
  without_dl.enable_deny_list = false;
  const std::vector<bench::ParamVariant> variants{
      {"Ours(DL)", with_dl}, {"Ours(DL-free)", without_dl}};
  return bench::RunParamSweep(argc, argv, "fig5", "DENYLIST ablation",
                              variants);
}
